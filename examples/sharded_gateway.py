"""Sharded-gateway scenario: a camera fleet behind a pool of shard processes.

``serving_gateway.py`` shows one thread-based gateway; this example scales
the same story out to a *pool* — the deployment shape the ROADMAP's
"production-scale traffic" north star asks for:

1. **shard pool** — a :class:`repro.serve.ShardedCompressionServer` spawns
   worker processes (each with its own model weights, codec tables and plan
   caches) behind the exact ``submit_bytes``/``PendingResult`` API the
   threaded server exposes;
2. **adaptive batch-wait** — the batch policy runs in ``"adaptive"`` mode,
   so idle shards serve singles instantly while loaded shards converge to
   full batches without hand-tuning ``max_wait_ms``;
3. **static-scene result cache** — the fleet re-sends one unchanged frame
   (a parked camera at night) and the digest-keyed cross-request cache
   resolves the repeats without touching any shard;
4. **M/D/c congestion check** — the fleet's Poisson arrivals are replayed
   against the live pool and the observed queueing delay is printed next to
   the M/D/c prediction (Erlang-C with the Cosmetatos deterministic-service
   correction) that :mod:`repro.edge.fleet` computes analytically;
5. **zero-copy responses** — the pool runs with the shared-memory response
   ring (the default), so reconstructed pixels come back without the
   per-response ``tobytes``/queue-pickle copies; the transport split is
   printed from telemetry;
6. **shard health watchdog + restart** — one shard is restarted in place
   mid-traffic, then another is killed outright and the watchdog replaces
   it automatically (restart counts come from the same telemetry snapshot).
"""

from __future__ import annotations

import numpy as np

from repro.core import EaszEncoder, pack_package
from repro.datasets import KodakDataset
from repro.edge import CameraNode, FleetSimulation, WIFI_TCP
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import psnr
from repro.serve import BatchPolicy, PoissonLoadGenerator, ShardedCompressionServer


def fleet_containers(config, num_cameras=3, height=96, width=144):
    """Per-camera frames, encoded and packed exactly as the edge would."""
    dataset = KodakDataset(num_images=num_cameras, height=height, width=width)
    encoder = EaszEncoder(config, seed=0)
    mask = encoder.generate_mask()
    frames = [dataset[index] for index in range(num_cameras)]
    packages = encoder.encode_batch(frames, mask=mask)
    containers = [pack_package(package) for package in packages]
    return frames, packages, containers


def pool_roundtrip(server, frames, containers):
    pendings = [server.submit_bytes(blob) for blob in containers]
    responses = [pending.result(timeout=120.0) for pending in pendings]
    rows = []
    for index, response in enumerate(responses):
        rows.append([
            f"camera-{index}",
            response.worker,
            f"{psnr(frames[index], response.image):.2f}",
            response.batch_size,
            f"{response.latency_s * 1e3:.1f}",
        ])
    print(format_table(
        ["node", "served by", "psnr (dB)", "batch size", "latency (ms)"],
        rows, title="Pool round-trip (submitted as raw EASZ containers)"))


def static_scene_cache(model, config, containers):
    """Re-send one unchanged frame: repeats resolve from the result cache.

    Runs on its own small pool so the cache's short-circuiting does not mask
    the queueing behaviour the congestion replay measures on the main pool.
    """
    with ShardedCompressionServer(model=model, config=config, num_shards=1,
                                  result_cache_size=16) as server:
        repeats = [server.submit_bytes(containers[0]).result(timeout=120.0)
                   for _ in range(5)]
        stats = server.stats.snapshot()["result_cache"]
    cached = sum(response.cached for response in repeats)
    print(f"\nStatic scene: 5 sends of one unchanged frame -> {cached} served from "
          f"the digest-keyed result cache (hits {stats['hits']}, misses "
          f"{stats['misses']}); only the first send touched a shard.")


def congestion_replay(server, packages):
    fleet = FleetSimulation(WIFI_TCP, [
        CameraNode(f"camera-{index}", images_per_hour=360.0)
        for index in range(len(packages))
    ])
    generator = PoissonLoadGenerator(server, rng=np.random.default_rng(7))
    report = generator.replay_fleet(fleet, packages, num_requests=20, speedup=80.0)
    print(f"\nPoisson replay of the fleet against the live {report.servers}-shard pool:")
    print("  " + report.headline())


def restart_demo(server, containers):
    server.restart_shard(0)
    response = server.submit_bytes(containers[0]).result(timeout=120.0)
    print(f"\nShard 0 restarted in place; next frame served by {response.worker} "
          "with the rest of the pool undisturbed.")


def watchdog_demo(server, containers):
    """Kill a shard outright and let the health watchdog replace it."""
    import time

    victim = server._shards[1]
    old_pid = victim.process.pid
    victim.process.kill()
    deadline = time.perf_counter() + 60.0
    while time.perf_counter() < deadline:
        current = server._shards[1]
        if current.is_alive() and current.process.pid != old_pid:
            break
        time.sleep(0.05)
    response = server.submit_bytes(containers[0]).result(timeout=120.0)
    watchdog = server.stats.snapshot()["watchdog"]
    print(f"\nShard 1 (pid {old_pid}) was killed; the watchdog restarted it "
          f"(pool restarts so far: {watchdog['restarts_total']}) and the next "
          f"frame was served by {response.worker}.")


def main():
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    frames, packages, containers = fleet_containers(config)
    print("Sharded-gateway example\n")
    server = ShardedCompressionServer(
        model=model, config=config, num_shards=2,
        batch_policy=BatchPolicy(max_batch_size=4, max_wait_ms=4.0, mode="adaptive"),
        watchdog_interval_s=0.25,
    )
    with server:
        pool_roundtrip(server, frames, containers)
        congestion_replay(server, packages)
        restart_demo(server, containers)
        watchdog_demo(server, containers)
        snapshot = server.stats.snapshot()
    transports = ", ".join(f"{name}={count}" for name, count
                           in sorted(snapshot["response_transport"].items()))
    print(f"\nPool stats: {snapshot['completed']} images across "
          f"{snapshot['num_shards']} shards, p50 {snapshot['latency_p50_ms']:.1f} ms, "
          f"mean batch {snapshot['mean_batch_size']:.1f}, "
          f"batch histogram {snapshot['batch_size_histogram']}, "
          f"response transport [{transports}]")
    static_scene_cache(model, config, containers)
    print("\nEach shard owns its model weights and caches, so the pool scales "
          "with cores instead of fighting one GIL; consistent routing keeps a "
          "camera's mask/geometry on the same warm shard (mask affinity keeps "
          "multi-geometry fleets together), responses come back through the "
          "zero-copy shared-memory ring, the watchdog replaces crashed shards "
          "with no lost responses, and the M/D/c line shows the queueing model "
          "tracking a c-server pool.")


if __name__ == "__main__":
    main()
