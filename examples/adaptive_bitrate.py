"""Adaptive-bitrate scenario: fine-grained, model-free compression-level control.

The paper's central "agility" claim is that Easz changes compression level by
changing a sampler parameter (the erase ratio), with one reconstruction model
serving every level — unlike NN codecs, which must load different weights per
quality level (0.3–11.6 s per switch on a Jetson TX2, Fig. 1).

This example sweeps the erase ratio on a fixed image, prints the resulting
rate/quality trade-off curve, and compares the cost of switching levels for
Easz against the simulated model-swap cost of the MBT and Cheng codecs.
"""

from __future__ import annotations

from repro.codecs import ChengCodec, JpegCodec, MbtCodec
from repro.core import EaszCodec, EaszConfig
from repro.datasets import KodakDataset
from repro.edge import EdgeServerTestbed
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import ms_ssim, psnr


def main():
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    image = KodakDataset(num_images=1, height=96, width=144)[0]
    base = JpegCodec(quality=80)

    rows = []
    for erase_per_row in range(0, config.grid_size):
        # the intra-row spacing constraint cannot hold at the densest levels;
        # relax it there, exactly as the edge encoder would
        delta = config.intra_row_min_distance
        if erase_per_row * (delta + 1) > config.grid_size:
            delta = 0
        level_config = EaszConfig(**{**config.__dict__, "erase_per_row": erase_per_row,
                                     "intra_row_min_distance": delta})
        codec = EaszCodec(config=level_config, base_codec=base, model=model, seed=0)
        reconstruction, compressed = codec.roundtrip(image)
        rows.append([f"{level_config.erase_ratio:.0%}", round(compressed.bpp(), 3),
                     round(psnr(image, reconstruction), 2),
                     round(ms_ssim(image, reconstruction), 3)])
    print(format_table(["erase ratio", "bpp", "psnr_db", "ms_ssim"], rows,
                       title="Easz compression levels from a single model (JPEG q80 base)"))

    testbed = EdgeServerTestbed()
    switch_rows = [
        ["easz (any ratio)", 0.0],
        ["mbt (per-quality weights)",
         round(testbed.compression_level_switch_ms(MbtCodec(4)), 1)],
        ["cheng (per-quality weights)",
         round(testbed.compression_level_switch_ms(ChengCodec(4)), 1)],
    ]
    print()
    print(format_table(["codec", "level-switch cost (ms)"], switch_rows,
                       title="Cost of changing compression level on the edge device"))
    print("\nEasz reaches any of the above operating points without touching the model, "
          "which is what makes per-image rate adaptation practical on the edge.")


if __name__ == "__main__":
    main()
