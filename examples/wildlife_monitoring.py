"""Wildlife-camera scenario: battery-constrained edge device, bursty uplink.

The paper motivates Easz with IoT deployments such as wildlife observation
systems: a camera trap must push many images over a thin wireless link with a
tiny energy budget, and the acceptable compression level changes with the
backlog (e.g. when many animals trigger the camera at once).

This example simulates a day's worth of captures on a Jetson-TX2-class camera
node and compares three strategies:

* send JPEG as-is;
* run a neural codec (MBT) on the edge;
* run Easz (erase-and-squeeze + JPEG) and reconstruct at the base station,
  stepping the erase ratio up whenever the backlog grows.
"""

from __future__ import annotations

import numpy as np

from repro.codecs import JpegCodec, MbtCodec
from repro.core import EaszCodec, EaszConfig
from repro.datasets import SyntheticImageGenerator
from repro.edge import EdgeServerTestbed
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import psnr


def simulate_day(num_captures=6):
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    generator = SyntheticImageGenerator(96, 144, color=True, texture_strength=1.2)
    testbed = EdgeServerTestbed()
    captures = [generator.generate(1000 + index) for index in range(num_captures)]

    strategies = {
        "jpeg-only": lambda backlog: JpegCodec(quality=70),
        "mbt-on-edge": lambda backlog: MbtCodec(quality=4),
        "easz-adaptive": lambda backlog: EaszCodec(
            config=EaszConfig(**{**config.__dict__,
                                 "erase_per_row": 1 if backlog < 3 else 2}),
            base_codec=JpegCodec(quality=70), model=model, seed=0),
    }

    rows = []
    for name, make_codec in strategies.items():
        total_bytes = 0
        total_latency_ms = 0.0
        total_energy_j = 0.0
        psnrs = []
        for backlog, image in enumerate(captures):
            codec = make_codec(backlog)
            reconstruction, compressed = codec.roundtrip(image)
            report = testbed.run(codec, shape=image.shape, payload_bytes=compressed.num_bytes,
                                 include_load=False)
            edge_time_s = (report.timing.erase_squeeze_ms + report.timing.encode_ms) / 1e3
            total_bytes += compressed.num_bytes
            total_latency_ms += report.timing.total_ms
            total_energy_j += report.edge_total_power_w * edge_time_s
            psnrs.append(psnr(image, reconstruction))
        rows.append([name, total_bytes, round(total_latency_ms / len(captures), 1),
                     round(total_energy_j, 3), round(float(np.mean(psnrs)), 2)])
    return rows


def main():
    rows = simulate_day()
    print(format_table(
        ["strategy", "total_bytes", "avg_latency_ms", "edge_energy_J", "avg_psnr_db"], rows,
        title="Wildlife camera node — one burst of 6 captures (simulated TX2 testbed)"))
    print("\nEasz keeps edge energy near the JPEG-only floor while cutting transmitted "
          "bytes, and it changes compression level without swapping models.")


if __name__ == "__main__":
    main()
