"""Serving-gateway scenario: a camera fleet behind one micro-batching server.

A fleet of wildlife cameras ships ``EASZ`` transport containers to a shared
reconstruction gateway.  This example wires the pieces end to end:

1. **fleet → wire** — every camera frame is encoded with a shared erase mask
   and flattened into the ``EASZ`` container it would store-and-forward;
2. **gateway** — a :class:`repro.serve.CompressionServer` receives the raw
   container bytes, micro-batches requests that share a mask and geometry,
   and reconstructs them on a small worker pool with per-worker caches;
3. **congestion check** — the same fleet's Poisson arrival process is
   replayed against the live server and the observed queueing delay is
   printed next to the M/D/1 prediction that :mod:`repro.edge.fleet`
   computes analytically;
4. **backpressure** — the queue bound is then shrunk until admission control
   starts rejecting, showing overload as an explicit signal instead of
   unbounded latency.
"""

from __future__ import annotations

import numpy as np

from repro.core import EaszEncoder, pack_package
from repro.datasets import KodakDataset
from repro.edge import CameraNode, FleetSimulation, WIFI_TCP
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import psnr
from repro.serve import (
    BatchPolicy,
    CompressionServer,
    PoissonLoadGenerator,
    ServerOverloadedError,
)


def fleet_containers(config, num_cameras=3, height=96, width=144):
    """Per-camera frames, encoded and packed exactly as the edge would."""
    dataset = KodakDataset(num_images=num_cameras, height=height, width=width)
    encoder = EaszEncoder(config, seed=0)
    mask = encoder.generate_mask()
    frames = [dataset[index] for index in range(num_cameras)]
    packages = encoder.encode_batch(frames, mask=mask)
    containers = [pack_package(package) for package in packages]
    return frames, packages, containers


def gateway_roundtrip(server, frames, containers):
    pendings = [server.submit_bytes(blob) for blob in containers]
    responses = [pending.result(timeout=60.0) for pending in pendings]
    rows = []
    for index, response in enumerate(responses):
        rows.append([
            f"camera-{index}",
            response.config_summary.get("base_codec", "?"),
            f"{psnr(frames[index], response.image):.2f}",
            response.batch_size,
            f"{response.latency_s * 1e3:.1f}",
        ])
    print(format_table(
        ["node", "codec (echoed)", "psnr (dB)", "batch size", "latency (ms)"],
        rows, title="Gateway round-trip (submitted as raw EASZ containers)"))


def congestion_replay(server, packages):
    fleet = FleetSimulation(WIFI_TCP, [
        CameraNode(f"camera-{index}", images_per_hour=360.0)
        for index in range(len(packages))
    ])
    generator = PoissonLoadGenerator(server, rng=np.random.default_rng(7))
    # 360 frames/h/camera is one frame every 10 s (0.3 rps fleet-wide);
    # replay 80x faster (~24 rps) so the example finishes in about a second
    # while keeping the server below saturation
    report = generator.replay_fleet(fleet, packages, num_requests=20, speedup=80.0)
    print("\nPoisson replay of the fleet against the live server:")
    print("  " + report.headline())


def backpressure_demo(model, config, packages):
    tiny = CompressionServer(model=model, config=config, num_workers=1, queue_depth=2,
                             batch_policy=BatchPolicy(max_batch_size=2, max_wait_ms=1.0))
    rejected = 0
    with tiny:
        pendings = []
        for _ in range(8):
            for package in packages:
                try:
                    pendings.append(tiny.submit(package))
                except ServerOverloadedError:
                    rejected += 1
        for pending in pendings:
            pending.result(timeout=60.0)
    print(f"\nBackpressure: queue bound 2 admitted {len(pendings)} of "
          f"{len(pendings) + rejected} burst submissions and rejected {rejected} "
          "with an explicit ServerOverloadedError.")


def main():
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    frames, packages, containers = fleet_containers(config)
    print("Serving-gateway example\n")
    server = CompressionServer(model=model, config=config, num_workers=2,
                               batch_policy=BatchPolicy(max_batch_size=4, max_wait_ms=4.0))
    with server:
        gateway_roundtrip(server, frames, containers)
        congestion_replay(server, packages)
        snapshot = server.stats.snapshot()
    print(f"\nServer stats: {snapshot['completed']} images, "
          f"p50 {snapshot['latency_p50_ms']:.1f} ms, p99 {snapshot['latency_p99_ms']:.1f} ms, "
          f"mean batch {snapshot['mean_batch_size']:.1f}, "
          f"batch histogram {snapshot['batch_size_histogram']}")
    backpressure_demo(model, config, packages)
    print("\nOne shared mask per fleet keeps every frame batchable: the gateway fuses "
          "concurrent requests into single transformer calls, and admission control "
          "turns overload into dropped frames at the edge rather than unbounded "
          "server-side latency.")


if __name__ == "__main__":
    main()
