"""Industrial-inspection scenario: enhance an existing codec fleet with Easz.

A factory camera network already standardises on a codec (JPEG or BPG in the
inspection station firmware, a learned codec in newer gateways).  Easz is
"compatible with all existing image compression algorithms": the edge only
adds the erase-and-squeeze step in front of whatever codec is deployed, and
the inspection server adds the reconstruction model.

This example wraps four deployed codecs with Easz and reports the Table-II
style before/after comparison on synthetic inspection imagery (high-texture
surfaces where defects hide in fine detail).
"""

from __future__ import annotations

from repro.codecs import BpgCodec, ChengCodec, JpegCodec, MbtCodec
from repro.datasets import SyntheticImageGenerator
from repro.experiments import (
    default_benchmark_config,
    evaluate_codec_on_dataset,
    format_table,
    pretrained_model,
)
from repro.core import EaszCodec


class _InspectionSet:
    """A small set of high-texture synthetic inspection images."""

    def __init__(self, count=2, height=96, width=128):
        generator = SyntheticImageGenerator(height, width, color=True,
                                            texture_strength=1.5, edge_density=1.4)
        self._images = [generator.generate(7000 + index) for index in range(count)]

    def __len__(self):
        return len(self._images)

    def __getitem__(self, index):
        return self._images[index]


def main():
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    dataset = _InspectionSet()

    deployed = {
        "jpeg": JpegCodec(quality=35),
        "bpg": BpgCodec(qp=36),
        "mbt": MbtCodec(quality=3),
        "cheng": ChengCodec(quality=3),
    }

    rows = []
    for name, codec in deployed.items():
        original = evaluate_codec_on_dataset(codec, dataset, no_reference=("brisque", "tres"),
                                             full_reference=("psnr",))
        enhanced_codec = EaszCodec(config=config, base_codec=codec, model=model, seed=0)
        enhanced = evaluate_codec_on_dataset(enhanced_codec, dataset,
                                             no_reference=("brisque", "tres"),
                                             full_reference=("psnr",))
        rows.append([name, "org", round(original.bpp, 3),
                     round(original.scores["brisque"], 1),
                     round(original.scores["tres"], 1),
                     round(original.scores["psnr"], 2)])
        rows.append([name, "+easz", round(enhanced.bpp, 3),
                     round(enhanced.scores["brisque"], 1),
                     round(enhanced.scores["tres"], 1),
                     round(enhanced.scores["psnr"], 2)])

    print(format_table(["deployed codec", "variant", "bpp", "brisque", "tres", "psnr_db"], rows,
                       title="Inspection fleet — existing codecs with and without Easz"))
    print("\nThe same reconstruction model serves every deployed codec; only the "
          "erase-and-squeeze front-end is added to the camera firmware.")


if __name__ == "__main__":
    main()
