"""Autonomous-driving scenario: latency deadlines and region-of-interest coding.

The paper's introduction lists autonomous driving among the applications that
push high-resolution imagery off the vehicle.  Two properties matter there
that a plain fixed-ratio codec does not give you:

1. **frame deadlines** — a perception frame is useless if it arrives late, so
   the compression level must track the (changing) uplink budget;
2. **regions of interest** — the road ahead matters more than the sky, so the
   erase budget should be spent where content is expendable.

This example runs both controllers from :mod:`repro.core`:

* the :class:`BandwidthAdaptiveController` picks the erase ratio per frame so
  the transfer meets a 250 ms deadline as the simulated link degrades;
* the :class:`RoiEaszCodec` allocates per-patch erase levels from a saliency
  map and is compared against the uniform-mask pipeline at a matched rate.
"""

from __future__ import annotations

import numpy as np

from repro.codecs import JpegCodec
from repro.core import (
    BandwidthAdaptiveController,
    EaszCodec,
    EaszConfig,
    RoiEaszCodec,
    saliency_map,
)
from repro.datasets import SyntheticImageGenerator
from repro.edge import WirelessChannel
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import psnr


FRAME_DEADLINE_MS = 120.0


def drive_scene(seed):
    """A synthetic driving frame: textured lower half (road), smooth upper half (sky)."""
    generator = SyntheticImageGenerator(96, 160, color=True, texture_strength=1.3)
    frame = generator.generate(seed)
    sky = np.linspace(0.75, 0.55, frame.shape[0] // 2)[:, None, None]
    frame[: frame.shape[0] // 2] = 0.8 * sky + 0.2 * frame[: frame.shape[0] // 2]
    return np.clip(frame, 0.0, 1.0)


def deadline_adaptation(config):
    """Per-frame erase-ratio selection as the uplink bandwidth drops."""
    frames = [drive_scene(200 + index) for index in range(4)]
    bandwidths_mbps = [6.0, 0.3, 0.15, 0.08]
    rows = []
    for frame, bandwidth in zip(frames, bandwidths_mbps):
        channel = WirelessChannel(bandwidth_mbps=bandwidth, per_transfer_overhead_ms=40.0)
        controller = BandwidthAdaptiveController(channel, config, JpegCodec(quality=80))
        decision = controller.select(frame, deadline_ms=FRAME_DEADLINE_MS)
        transmit_ms = channel.transmit_latency_ms(decision.num_bytes)
        rows.append([bandwidth, decision.erase_per_row, f"{decision.erase_ratio:.0%}",
                     round(decision.achieved_bpp, 3), round(transmit_ms, 1),
                     "yes" if transmit_ms <= FRAME_DEADLINE_MS else "no"])
    print(format_table(
        ["uplink (Mbps)", "erase/row", "erase ratio", "bpp", "transmit (ms)",
         f"meets {FRAME_DEADLINE_MS:.0f} ms"],
        rows, title="Deadline-driven erase-ratio adaptation (no model switch needed)"))


def roi_coding(config, model):
    """Spend the erase budget on the sky, protect the road."""
    frame = drive_scene(300)
    saliency = saliency_map(frame, config.patch_size)
    uniform = EaszCodec(config=config, base_codec=JpegCodec(quality=80), model=model, seed=0)
    roi = RoiEaszCodec(config=config, base_codec=JpegCodec(quality=80), model=model,
                       target_ratio=config.erase_ratio, seed=0)
    rows = []
    road = slice(frame.shape[0] // 2, None)
    for label, codec in (("uniform erase", uniform), ("roi erase (sky first)", roi)):
        reconstruction, compressed = codec.roundtrip(frame)
        rows.append([label, round(compressed.bpp(), 3),
                     round(psnr(frame, reconstruction), 2),
                     round(psnr(frame[road], reconstruction[road]), 2)])
    print()
    print(format_table(["strategy", "bpp", "frame psnr (dB)", "road-half psnr (dB)"], rows,
                       title="Region-of-interest coding on a driving frame"))
    print(f"\nsaliency map ({saliency.shape[0]}x{saliency.shape[1]} patches): "
          f"sky mean {saliency[:saliency.shape[0] // 2].mean():.2f}, "
          f"road mean {saliency[saliency.shape[0] // 2:].mean():.2f}")


def main():
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    print("Autonomous-driving example — deadline adaptation and ROI coding\n")
    deadline_adaptation(EaszConfig(**{**config.__dict__}))
    print()
    roi_coding(config, model)
    print("\nThe erase ratio is the only knob that changes between frames: the same "
          "8-bit mask/seed side channel and the same server-side model serve every "
          "operating point, which is what makes per-frame adaptation viable on a vehicle.")


if __name__ == "__main__":
    main()
