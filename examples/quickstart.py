"""Quickstart: compress and reconstruct one image with Easz.

Run with::

    python examples/quickstart.py

The script walks the full pipeline on a synthetic Kodak-like image:

1. pre-train (or load from cache) the lightweight transformer reconstructor;
2. erase-and-squeeze the image on the "edge" and compress it with JPEG;
3. decompress and reconstruct on the "server";
4. report rate (BPP) and quality (PSNR / MS-SSIM) against plain JPEG.
"""

from __future__ import annotations

from repro.codecs import JpegCodec
from repro.core import EaszCodec
from repro.datasets import KodakDataset
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import ms_ssim, psnr


def main():
    config = default_benchmark_config()
    print("Easz configuration:")
    print(f"  patch size n={config.patch_size}, erase block b={config.subpatch_size}, "
          f"erase ratio {config.erase_ratio:.0%}")

    print("loading / pre-training the reconstruction model (cached after the first run)...")
    model = pretrained_model(config, steps=600, batch_size=32, verbose=True)
    print(f"  model parameters: {model.num_parameters():,} "
          f"({model.model_size_bytes() / 2 ** 20:.2f} MB; the paper's full-scale model is 8.7 MB)")

    image = KodakDataset(num_images=1, height=96, width=144)[0]
    base = JpegCodec(quality=80)
    easz = EaszCodec(config=config, base_codec=base, model=model, seed=0)

    plain_reconstruction, plain_compressed = base.roundtrip(image)
    easz_reconstruction, easz_compressed = easz.roundtrip(image)

    rows = [
        ["jpeg-q80", round(plain_compressed.bpp(), 3),
         round(psnr(image, plain_reconstruction), 2),
         round(ms_ssim(image, plain_reconstruction), 3)],
        ["jpeg-q80 + easz", round(easz_compressed.bpp(), 3),
         round(psnr(image, easz_reconstruction), 2),
         round(ms_ssim(image, easz_reconstruction), 3)],
    ]
    print()
    print(format_table(["codec", "bpp", "psnr_db", "ms_ssim"], rows,
                       title="Quickstart result (96x144 Kodak-like image)"))
    saving = 1 - easz_compressed.num_bytes / plain_compressed.num_bytes
    print(f"\nEasz transmitted {saving:.0%} fewer bytes "
          f"(mask side information: {easz_compressed.extra_bytes} bytes).")


if __name__ == "__main__":
    main()
