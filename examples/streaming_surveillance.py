"""Streaming surveillance scenario: frame sequences, lossy links and mask policy.

A fixed surveillance camera streams a slowly changing scene over an unreliable
uplink.  Three stream-level decisions are explored with the library's
sequence, transport and fault-injection modules:

1. **mask refresh policy** — refresh the erase mask every frame vs hold one
   mask for the whole stream; the report shows the rate / flicker trade-off;
2. **store-and-forward containers** — every frame is flattened into the
   ``EASZ`` transport container (what the camera would buffer on flash when
   the uplink drops) and decoded from the container bytes on the server;
3. **damaged transfers** — the base-codec payload is corrupted and truncated
   to show that the decoders reject damage cleanly instead of crashing.
"""

from __future__ import annotations

import numpy as np

from repro.codecs import JpegCodec
from repro.core import (
    EaszStreamDecoder,
    EaszStreamEncoder,
    encode_decode_stream,
    pack_package,
    unpack_package,
)
from repro.datasets import SyntheticImageGenerator
from repro.edge import FaultInjector, check_decoder_robustness
from repro.experiments import default_benchmark_config, format_table, pretrained_model
from repro.metrics import psnr


def surveillance_frames(num_frames=6, height=96, width=144):
    """A static scene with a small moving object (the interesting content)."""
    generator = SyntheticImageGenerator(height, width, color=False, texture_strength=0.9)
    background = generator.generate(500)
    frames = []
    for index in range(num_frames):
        frame = background.copy()
        x = 10 + 18 * index
        frame[40:56, x:x + 16] = np.clip(frame[40:56, x:x + 16] + 0.35, 0.0, 1.0)
        frames.append(frame)
    return frames


def mask_policy_comparison(frames, config, model):
    rows = []
    for label, interval in (("refresh every frame", 1), ("hold one mask", 0)):
        _, report = encode_decode_stream(frames, config=config,
                                         base_codec=JpegCodec(quality=80), model=model,
                                         mask_refresh_interval=interval, seed=0)
        rows.append([label, report.mask_refreshes, report.mask_bytes_total,
                     round(report.mean_bpp, 3), round(report.mean_psnr_db, 2),
                     round(report.flicker * 1e3, 3)])
    print(format_table(
        ["mask policy", "mask refreshes", "mask bytes", "mean bpp", "mean psnr (dB)",
         "flicker (x1e-3)"],
        rows, title=f"Mask refresh policy over {len(frames)} frames"))


def store_and_forward(frames, config, model):
    encoder = EaszStreamEncoder(config=config, base_codec=JpegCodec(quality=80), seed=0)
    decoder = EaszStreamDecoder(model=model, config=config, base_codec=JpegCodec(quality=80))
    containers = [pack_package(encoder.encode(frame)) for frame in frames]
    decoded = [decoder.decode(unpack_package(blob)) for blob in containers]
    total_bytes = sum(len(blob) for blob in containers)
    mean_psnr = float(np.mean([psnr(a, b) for a, b in zip(frames, decoded)]))
    print(f"\nStore-and-forward: {len(containers)} EASZ containers, "
          f"{total_bytes} bytes total, mean PSNR after the container round-trip "
          f"{mean_psnr:.2f} dB")


def damaged_transfers(frames):
    codec = JpegCodec(quality=80)
    faults = [
        ("clean", FaultInjector()),
        ("64 bit flips", FaultInjector(bit_flips=64, seed=1)),
        ("30% tail lost", FaultInjector(truncate_to=0.7, seed=2)),
        ("20% packets zeroed", FaultInjector(packet_loss_rate=0.2, packet_bytes=256, seed=3)),
    ]
    rows = []
    for label, injector in faults:
        result = check_decoder_robustness(codec, frames[0], injector, metric=psnr,
                                          description=label)
        quality = f"{result.quality_db:.1f} dB" if result.outcome == "decoded" else "-"
        rows.append([label, result.outcome, result.error_type or "-", quality])
    print()
    print(format_table(["fault", "decoder outcome", "error type", "quality"], rows,
                       title="Damaged-transfer behaviour (JPEG payloads)"))


def main():
    config = default_benchmark_config()
    model = pretrained_model(config, steps=600, batch_size=32)
    frames = surveillance_frames()
    print("Streaming surveillance example\n")
    mask_policy_comparison(frames, config, model)
    store_and_forward(frames, config, model)
    damaged_transfers(frames)
    print("\nHolding one mask amortises the side channel but concentrates erasure on the "
          "same blocks every frame; refreshing the mask spreads the loss and the "
          "reconstruction flicker stays within the content's own motion.")


if __name__ == "__main__":
    main()
