"""Setuptools entry point.

``pip install -e .`` must give the same surface as the in-tree
``PYTHONPATH=src python -m repro`` workflow: the ``repro`` package from
``src/`` plus a ``repro`` console script wrapping the CLI.  CI's 3.12 leg
installs the package and runs tier-1 against it, so drift between the two
fails there.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Easz: an agile transformer-based image compression framework for "
        "resource-constrained IoTs (DAC 2025) — full numpy reproduction"
    ),
    long_description=(
        "Reproduction of the Easz erase-and-squeeze codec (DAC 2025) grown "
        "into a serving system: vectorized codec fast paths, micro-batching "
        "compression servers (threaded and process-sharded with a zero-copy "
        "shared-memory response ring), edge-fleet simulation and the paper's "
        "experiment suite — pure numpy/scipy, no GPU required."
    ),
    long_description_content_type="text/plain",
    author="Easz reproduction maintainers",
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Operating System :: POSIX :: Linux",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Multimedia :: Graphics :: Graphics Conversion",
        "Topic :: System :: Distributed Computing",
    ],
    keywords="image-compression transformer edge-computing serving",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest>=7", "hypothesis>=6"]},
    entry_points={
        "console_scripts": [
            "repro = repro.experiments.cli:main",
            "repro-lint = repro.analysis.cli:main",
        ]
    },
)
