"""Setuptools entry point (kept for legacy editable installs without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Easz: an agile transformer-based image compression framework for "
        "resource-constrained IoTs (DAC 2025) — full numpy reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro = repro.experiments.cli:main"]},
)
