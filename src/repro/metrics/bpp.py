"""Bits-per-pixel accounting helpers."""

from __future__ import annotations

from ..image import image_num_pixels

__all__ = ["bits_per_pixel", "file_saving_ratio"]


def bits_per_pixel(num_bytes, image_or_shape):
    """BPP of a payload of ``num_bytes`` for the given image or shape."""
    return 8.0 * num_bytes / image_num_pixels(image_or_shape)


def file_saving_ratio(baseline_bytes, reduced_bytes):
    """Fractional file-size saving of ``reduced_bytes`` vs ``baseline_bytes``.

    This is the quantity plotted in the paper's Fig. 3a ("file saving
    ratio"): 0.1 means the erased-and-squeezed file is 10 % smaller than
    compressing the full image with the same codec settings.
    """
    if baseline_bytes <= 0:
        raise ValueError("baseline_bytes must be positive")
    return float(1.0 - reduced_bytes / baseline_bytes)
