"""BRISQUE proxy (no-reference spatial quality score, lower is better).

Mittal et al. (2012) extract 36 NSS features at two scales and regress a
quality score with an SVR trained on the LIVE database.  The SVR weights are
not available offline, so this proxy maps the Mahalanobis distance of the
same feature family from a pristine-image model onto the familiar 0–100
BRISQUE range.  The mapping constants were chosen so that typical values
match the paper's Table II regime: lightly-compressed natural images score
around 15–30 and heavily-artifacted JPEG output scores around 40–70.
"""

from __future__ import annotations

import numpy as np

from .naturalness import default_model

__all__ = ["brisque"]

# Distance-to-score mapping: score = _SCALE * sqrt(distance), clipped to [0, 100].
_SCALE = 14.0


def brisque(image, model=None):
    """BRISQUE-style score of ``image`` (lower = more natural = better)."""
    model = model or default_model()
    distance = model.distance(image)
    return float(np.clip(_SCALE * np.sqrt(distance), 0.0, 100.0))
