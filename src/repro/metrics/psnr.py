"""Peak signal-to-noise ratio."""

from __future__ import annotations

import numpy as np

from .mse import mse

__all__ = ["psnr"]


def psnr(reference, test, data_range=1.0):
    """PSNR in dB between two images in ``[0, data_range]``.

    Returns ``inf`` for identical images.
    """
    error = mse(reference, test)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(data_range ** 2 / error))
