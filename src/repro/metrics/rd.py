"""Rate/quality curve containers used by the experiment harness.

A :class:`RateQualityCurve` collects the ``(bpp, quality)`` operating points
of one codec (one curve of the paper's Fig. 7a-b / Fig. 8a-c), provides
monotone interpolation between them, locates crossover points between two
curves ("where does JPEG+Easz overtake MBT?"), extracts the Pareto front, and
averages several per-image curves into a dataset-level curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RateQualityCurve", "average_curves", "pareto_front"]


@dataclass
class RateQualityCurve:
    """An ordered set of (rate, quality) operating points for one codec."""

    label: str
    metric: str = "quality"
    higher_is_better: bool = True
    points: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def add(self, bpp, quality, **parameters):
        """Append one operating point (keeps the curve sorted by rate)."""
        self.points.append({"bpp": float(bpp), "quality": float(quality),
                            "parameters": parameters})
        self.points.sort(key=lambda p: p["bpp"])
        return self

    def __len__(self):
        return len(self.points)

    @property
    def rates(self):
        """BPP values in ascending order."""
        return np.array([p["bpp"] for p in self.points])

    @property
    def qualities(self):
        """Quality values aligned with :attr:`rates`."""
        return np.array([p["quality"] for p in self.points])

    # ------------------------------------------------------------------ #
    def quality_at(self, bpp):
        """Quality at a given rate via linear interpolation (clamped at the ends)."""
        if not self.points:
            raise ValueError(f"curve {self.label!r} has no points")
        rates, qualities = self.rates, self.qualities
        return float(np.interp(bpp, rates, qualities))

    def rate_at(self, quality):
        """Rate needed to reach ``quality`` (requires monotone quality)."""
        if not self.points:
            raise ValueError(f"curve {self.label!r} has no points")
        rates, qualities = self.rates, self.qualities
        order = np.argsort(qualities)
        return float(np.interp(quality, qualities[order], rates[order]))

    def crossover(self, other, samples=256):
        """Rate at which this curve overtakes ``other`` (None if it never does).

        "Overtakes" respects :attr:`higher_is_better`: for BRISQUE-style
        lower-is-better metrics the crossover is where this curve drops below
        the other.
        """
        low = max(self.rates.min(), other.rates.min())
        high = min(self.rates.max(), other.rates.max())
        if high <= low:
            return None
        grid = np.linspace(low, high, samples)
        mine = np.array([self.quality_at(x) for x in grid])
        theirs = np.array([other.quality_at(x) for x in grid])
        advantage = (mine - theirs) if self.higher_is_better else (theirs - mine)
        winning = advantage > 0
        if not winning.any():
            return None
        return float(grid[np.argmax(winning)])

    def dominates_at(self, other, bpp):
        """Whether this curve is better than ``other`` at a specific rate."""
        mine, theirs = self.quality_at(bpp), other.quality_at(bpp)
        return mine > theirs if self.higher_is_better else mine < theirs

    # ------------------------------------------------------------------ #
    def as_series(self):
        """Convert to an ``repro.experiments.Series`` for table rendering."""
        from ..experiments.figures import Series

        return Series(label=self.label, xs=list(self.rates), ys=list(self.qualities),
                      metadata={"metric": self.metric})


def pareto_front(curve):
    """Operating points of ``curve`` not dominated by any other point.

    A point dominates another when it has both lower rate and better quality.
    Returns a new :class:`RateQualityCurve` containing only the front.
    """
    front = RateQualityCurve(label=f"{curve.label} (pareto)", metric=curve.metric,
                             higher_is_better=curve.higher_is_better)
    sign = 1.0 if curve.higher_is_better else -1.0
    best = -np.inf
    # Walk from the cheapest rate upwards; a point joins the front only if it
    # improves on every cheaper point.
    for point in sorted(curve.points, key=lambda p: p["bpp"]):
        score = sign * point["quality"]
        if score > best:
            front.points.append(dict(point))
            best = score
    return front


def average_curves(curves, label=None, samples=16):
    """Average several per-image curves into one dataset-level curve.

    The curves are resampled on the common overlapping rate range and the
    qualities averaged pointwise (the way the paper averages Kodak images at
    a fixed codec setting).
    """
    curves = list(curves)
    if not curves:
        raise ValueError("average_curves needs at least one curve")
    low = max(c.rates.min() for c in curves)
    high = min(c.rates.max() for c in curves)
    if high <= low:
        raise ValueError("curves have no overlapping rate range to average over")
    grid = np.linspace(low, high, samples)
    averaged = RateQualityCurve(
        label=label or f"mean({curves[0].label})",
        metric=curves[0].metric,
        higher_is_better=curves[0].higher_is_better,
    )
    for bpp in grid:
        averaged.add(bpp, float(np.mean([c.quality_at(bpp) for c in curves])))
    return averaged
