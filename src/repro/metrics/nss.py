"""Natural scene statistics (NSS) feature extraction.

BRISQUE, NIQE and the PI metric are all built on the same observation:
pristine natural images have characteristic mean-subtracted contrast-
normalised (MSCN) coefficient statistics, and distortions (blocking, blur,
ringing, noise) perturb them in measurable ways.  This module implements:

* MSCN coefficient computation with a Gaussian local mean/variance window;
* asymmetric generalised Gaussian distribution (AGGD) moment-matching fits;
* the 18-feature-per-scale vector used by BRISQUE/NIQE (2 GGD parameters for
  the MSCN coefficients plus 4×4 AGGD parameters for the pairwise products).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter
from scipy.special import gamma as gamma_fn

from ..image import ensure_gray, to_float

__all__ = [
    "mscn_coefficients",
    "fit_ggd",
    "fit_aggd",
    "nss_features",
    "multiscale_nss_features",
]

_GAMMA_GRID = np.arange(0.2, 10.001, 0.001)
_GGD_RHO = (gamma_fn(1.0 / _GAMMA_GRID) * gamma_fn(3.0 / _GAMMA_GRID)) / (gamma_fn(2.0 / _GAMMA_GRID) ** 2)


def mscn_coefficients(image, sigma=7.0 / 6.0, c=1.0 / 255.0):
    """Mean-subtracted contrast-normalised coefficients of a grayscale image.

    Parameters
    ----------
    image:
        Image in ``[0, 1]``; RGB inputs are converted to luma.
    sigma:
        Standard deviation of the Gaussian window used for local statistics
        (the BRISQUE reference uses a 7×7 window ≈ σ of 7/6).
    c:
        Saturation constant preventing division by zero in flat regions.
    """
    gray = ensure_gray(to_float(image))
    mu = gaussian_filter(gray, sigma, mode="nearest")
    sigma_map = np.sqrt(np.abs(gaussian_filter(gray * gray, sigma, mode="nearest") - mu * mu))
    return (gray - mu) / (sigma_map + c)


def fit_ggd(values):
    """Fit a zero-mean generalised Gaussian via the moment-matching method.

    Returns ``(alpha, sigma)`` — the shape and scale parameters.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    sigma_sq = np.mean(values ** 2)
    mean_abs = np.mean(np.abs(values))
    if mean_abs < 1e-12 or sigma_sq < 1e-12:
        return 10.0, float(np.sqrt(max(sigma_sq, 1e-12)))
    rho = sigma_sq / (mean_abs ** 2)
    alpha = float(_GAMMA_GRID[np.argmin(np.abs(_GGD_RHO - rho))])
    return alpha, float(np.sqrt(sigma_sq))


def fit_aggd(values):
    """Fit an asymmetric generalised Gaussian distribution.

    Returns ``(alpha, mean, left_std, right_std)`` following the BRISQUE
    feature convention.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    left = values[values < 0]
    right = values[values >= 0]
    left_std = np.sqrt(np.mean(left ** 2)) if left.size else 1e-6
    right_std = np.sqrt(np.mean(right ** 2)) if right.size else 1e-6
    gamma_hat = left_std / max(right_std, 1e-12)
    mean_abs = np.mean(np.abs(values))
    sigma_sq = np.mean(values ** 2)
    if mean_abs < 1e-12:
        return 10.0, 0.0, float(left_std), float(right_std)
    r_hat = (mean_abs ** 2) / sigma_sq
    r_hat_norm = r_hat * (gamma_hat ** 3 + 1) * (gamma_hat + 1) / ((gamma_hat ** 2 + 1) ** 2)
    alpha = float(_GAMMA_GRID[np.argmin(np.abs(1.0 / _GGD_RHO - r_hat_norm))])
    constant = np.sqrt(gamma_fn(1.0 / alpha) / gamma_fn(3.0 / alpha))
    mean = (right_std - left_std) * (gamma_fn(2.0 / alpha) / gamma_fn(1.0 / alpha)) * constant
    return alpha, float(mean), float(left_std), float(right_std)


def _paired_products(mscn):
    """Horizontal, vertical and two diagonal neighbouring products."""
    return {
        "horizontal": mscn[:, :-1] * mscn[:, 1:],
        "vertical": mscn[:-1, :] * mscn[1:, :],
        "main_diagonal": mscn[:-1, :-1] * mscn[1:, 1:],
        "secondary_diagonal": mscn[1:, :-1] * mscn[:-1, 1:],
    }


def nss_features(image):
    """18-dimensional NSS feature vector at a single scale.

    Features: GGD (alpha, sigma²) of the MSCN coefficients, then AGGD
    (alpha, mean, left σ², right σ²) of the four orientation products.
    """
    mscn = mscn_coefficients(image)
    alpha, sigma = fit_ggd(mscn)
    features = [alpha, sigma ** 2]
    for product in _paired_products(mscn).values():
        p_alpha, p_mean, p_left, p_right = fit_aggd(product)
        features.extend([p_alpha, p_mean, p_left ** 2, p_right ** 2])
    return np.asarray(features, dtype=np.float64)


def multiscale_nss_features(image, scales=2):
    """Concatenate :func:`nss_features` over ``scales`` dyadic scales."""
    gray = ensure_gray(to_float(image))
    features = []
    for scale in range(scales):
        features.append(nss_features(gray))
        if scale != scales - 1:
            height, width = gray.shape
            gray = gray[: height - height % 2, : width - width % 2]
            gray = 0.25 * (gray[0::2, 0::2] + gray[1::2, 0::2] + gray[0::2, 1::2] + gray[1::2, 1::2])
    return np.concatenate(features)
