"""Structural similarity (SSIM) and multi-scale SSIM (MS-SSIM).

Implementation follows Wang et al. (2004) with an 11×11 Gaussian window
(σ = 1.5) and the standard stability constants.  MS-SSIM uses the usual
five-scale weighting from Wang, Simoncelli & Bovik (2003).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve

from ..image import ensure_gray, to_float

__all__ = ["ssim", "ms_ssim"]

_MS_SSIM_WEIGHTS = np.array([0.0448, 0.2856, 0.3001, 0.2363, 0.1333])


def _gaussian_window(size=11, sigma=1.5):
    """Normalised 2-D Gaussian window."""
    half = size // 2
    coords = np.arange(-half, half + 1)
    one_d = np.exp(-(coords ** 2) / (2 * sigma ** 2))
    window = np.outer(one_d, one_d)
    return window / window.sum()


def _ssim_components(reference, test, data_range, window):
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    mu_x = convolve(reference, window, mode="reflect")
    mu_y = convolve(test, window, mode="reflect")
    mu_x2, mu_y2, mu_xy = mu_x ** 2, mu_y ** 2, mu_x * mu_y
    sigma_x2 = convolve(reference ** 2, window, mode="reflect") - mu_x2
    sigma_y2 = convolve(test ** 2, window, mode="reflect") - mu_y2
    sigma_xy = convolve(reference * test, window, mode="reflect") - mu_xy
    luminance = (2 * mu_xy + c1) / (mu_x2 + mu_y2 + c1)
    contrast_structure = (2 * sigma_xy + c2) / (sigma_x2 + sigma_y2 + c2)
    return luminance, contrast_structure


def ssim(reference, test, data_range=1.0, window_size=11, sigma=1.5):
    """Mean SSIM index between two images (luma channel for RGB inputs)."""
    reference = ensure_gray(to_float(reference))
    test = ensure_gray(to_float(test))
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    window = _gaussian_window(window_size, sigma)
    luminance, contrast_structure = _ssim_components(reference, test, data_range, window)
    return float(np.mean(luminance * contrast_structure))


def _downsample(image):
    height, width = image.shape
    image = image[: height - height % 2, : width - width % 2]
    return 0.25 * (image[0::2, 0::2] + image[1::2, 0::2] + image[0::2, 1::2] + image[1::2, 1::2])


def ms_ssim(reference, test, data_range=1.0, weights=None):
    """Multi-scale SSIM.

    The number of scales adapts to the image size (each scale requires at
    least a 16-pixel side); weights are renormalised accordingly.
    """
    reference = ensure_gray(to_float(reference))
    test = ensure_gray(to_float(test))
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    weights = np.asarray(weights if weights is not None else _MS_SSIM_WEIGHTS, dtype=np.float64)
    max_scales = int(np.log2(min(reference.shape) / 16)) + 1 if min(reference.shape) >= 16 else 1
    scales = int(np.clip(max_scales, 1, len(weights)))
    weights = weights[:scales]
    weights = weights / weights.sum()
    window = _gaussian_window()
    values = []
    for scale in range(scales):
        luminance, contrast_structure = _ssim_components(reference, test, data_range, window)
        if scale == scales - 1:
            values.append(np.mean(np.clip(luminance * contrast_structure, 0, None)))
        else:
            values.append(np.mean(np.clip(contrast_structure, 0, None)))
            reference = _downsample(reference)
            test = _downsample(test)
    values = np.asarray(values)
    return float(np.prod(values ** weights))
