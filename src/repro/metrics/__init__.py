"""``repro.metrics`` — image-quality metrics used throughout the evaluation.

Full-reference: MSE/RMSE/MAE, PSNR, SSIM, MS-SSIM, LPIPS-proxy.
No-reference (perceptual): BRISQUE, NIQE, PI and TReS proxies built on a
shared natural-scene-statistics model.  Rate accounting: bits-per-pixel and
file-saving ratio.
"""

from .bd import bd_quality, bd_rate
from .bpp import bits_per_pixel, file_saving_ratio
from .brisque import brisque
from .gmsd import gmsd, gradient_magnitude_similarity
from .lpips import PerceptualLoss, lpips
from .rd import RateQualityCurve, average_curves, pareto_front
from .mse import mae, mse, rmse
from .naturalness import NaturalnessModel, default_model, generate_pristine_image
from .niqe import niqe
from .nss import fit_aggd, fit_ggd, mscn_coefficients, multiscale_nss_features, nss_features
from .pi import pi
from .psnr import psnr
from .ssim import ms_ssim, ssim
from .tres import tres

__all__ = [
    "mse",
    "rmse",
    "mae",
    "psnr",
    "ssim",
    "ms_ssim",
    "lpips",
    "PerceptualLoss",
    "brisque",
    "niqe",
    "pi",
    "tres",
    "NaturalnessModel",
    "default_model",
    "generate_pristine_image",
    "mscn_coefficients",
    "nss_features",
    "multiscale_nss_features",
    "fit_ggd",
    "fit_aggd",
    "bits_per_pixel",
    "file_saving_ratio",
    "bd_rate",
    "bd_quality",
    "gmsd",
    "gradient_magnitude_similarity",
    "RateQualityCurve",
    "average_curves",
    "pareto_front",
]
