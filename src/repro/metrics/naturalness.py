"""Shared pristine-statistics model for the no-reference metrics.

BRISQUE, NIQE, PI and TReS (as used in the paper) are all *no-reference*
perceptual metrics: they judge an image by how far its natural-scene
statistics deviate from those of undistorted images.  The original metrics
rely on models trained on the LIVE database (an SVR for BRISQUE, a
multivariate Gaussian for NIQE, a deep transformer for TReS) — none of which
can be downloaded offline.  :class:`NaturalnessModel` reproduces the common
mechanism: fit a multivariate Gaussian over multi-scale NSS features of
pristine images and score test images by Mahalanobis distance.

The default model is fit once (and cached) on a small corpus of procedurally
generated pristine images whose statistics mimic natural photographs
(multi-scale smoothed noise with natural 1/f-like spectra plus edges).  The
absolute scores therefore differ from the published implementations, but the
*monotone response to distortion strength* — which is all the paper's
comparisons use — is preserved.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from .nss import multiscale_nss_features

__all__ = ["NaturalnessModel", "default_model", "generate_pristine_image"]

_DEFAULT_MODEL = None


def generate_pristine_image(rng, size=160):
    """Generate one pristine natural-looking grayscale image in ``[0, 1]``.

    The construction sums band-limited noise octaves (giving a natural
    power-law spectrum), adds a smooth illumination gradient and a few sharp
    edges, which together produce MSCN statistics close to photographic
    content.
    """
    image = np.zeros((size, size))
    amplitude = 1.0
    for octave_sigma in (32, 16, 8, 4, 2, 1):
        noise = rng.standard_normal((size, size))
        image += amplitude * gaussian_filter(noise, octave_sigma, mode="reflect")
        amplitude *= 0.55
    # smooth illumination gradient
    yy, xx = np.mgrid[0:size, 0:size] / size
    image += 0.6 * (xx * rng.uniform(-1, 1) + yy * rng.uniform(-1, 1))
    # a few sharp occlusion edges
    for _ in range(rng.integers(2, 5)):
        cx, cy = rng.uniform(0.2, 0.8, 2) * size
        radius = rng.uniform(0.1, 0.3) * size
        mask = ((np.mgrid[0:size, 0:size][0] - cy) ** 2 +
                (np.mgrid[0:size, 0:size][1] - cx) ** 2) < radius ** 2
        image[mask] += rng.uniform(-0.5, 0.5)
    image -= image.min()
    image /= max(image.max(), 1e-9)
    return image


class NaturalnessModel:
    """Multivariate Gaussian over NSS features of pristine images."""

    def __init__(self, scales=2, regularisation=1e-3):
        self.scales = scales
        self.regularisation = regularisation
        self.mean = None
        self.precision = None

    def fit(self, images):
        """Fit the pristine-feature Gaussian from an iterable of images."""
        features = np.stack([multiscale_nss_features(img, self.scales) for img in images])
        self.mean = features.mean(axis=0)
        covariance = np.cov(features, rowvar=False)
        covariance += self.regularisation * np.eye(covariance.shape[0])
        self.precision = np.linalg.inv(covariance)
        return self

    @property
    def is_fit(self):
        """Whether :meth:`fit` has been called."""
        return self.mean is not None

    def distance(self, image):
        """Mahalanobis distance of ``image``'s NSS features from pristine."""
        if not self.is_fit:
            raise RuntimeError("NaturalnessModel must be fit before scoring")
        features = multiscale_nss_features(image, self.scales)
        delta = features - self.mean
        return float(np.sqrt(max(0.0, delta @ self.precision @ delta)))


def default_model(num_images=12, size=160, seed=2024):
    """Return the cached default :class:`NaturalnessModel`.

    The first call fits the model on procedurally generated pristine images;
    subsequent calls reuse it, so scoring stays fast.
    """
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        rng = np.random.default_rng(seed)
        images = [generate_pristine_image(rng, size) for _ in range(num_images)]
        _DEFAULT_MODEL = NaturalnessModel().fit(images)
    return _DEFAULT_MODEL
