"""LPIPS-style perceptual distance (reference metric + differentiable loss).

The paper trains Easz with ``L1 + 0.3 · LPIPS(VGG)`` (Zhang et al., 2018).
Pretrained VGG weights are not available offline, so this module implements a
perceptual distance over a *fixed, hand-designed multi-scale feature pyramid*:
oriented edge filters (Sobel pairs), a Laplacian and a local-average filter at
several dyadic scales, with channel-normalised feature differences exactly as
LPIPS computes them.  The filters are deterministic, so the metric is stable
across runs, and the whole computation is built from :mod:`repro.nn` ops so it
can be used as a differentiable training-loss term.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..image import ensure_gray, to_float

__all__ = ["PerceptualLoss", "lpips"]


def _fixed_filter_bank():
    """Return the fixed 6-filter bank used at every pyramid level."""
    sobel_x = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64) / 4.0
    sobel_y = sobel_x.T
    diag1 = np.array([[0, 1, 2], [-1, 0, 1], [-2, -1, 0]], dtype=np.float64) / 4.0
    diag2 = np.flip(diag1, axis=1).copy()
    laplacian = np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=np.float64) / 4.0
    average = np.ones((3, 3), dtype=np.float64) / 9.0
    return np.stack([sobel_x, sobel_y, diag1, diag2, laplacian, average])


class PerceptualLoss(nn.Module):
    """Differentiable LPIPS-style distance between image batches.

    Inputs are tensors (or arrays) of shape ``(batch, height, width)``; RGB
    inputs must be reduced to luma by the caller (the Easz training loop
    feeds per-channel patches).  The distance is the mean squared difference
    of unit-normalised feature maps, averaged over ``num_scales`` dyadic
    scales — the same aggregation LPIPS uses over VGG stages.
    """

    def __init__(self, num_scales=3):
        super().__init__()
        self.num_scales = num_scales
        bank = _fixed_filter_bank()
        self._conv = nn.Conv2d(1, bank.shape[0], 3, stride=1, padding=1, bias=False)
        self._conv.weight.data = bank[:, None, :, :]
        self._conv.weight.requires_grad = False
        self._pool = nn.AvgPool2d(2)

    def _features(self, x):
        """Feature maps at each scale for input ``(batch, 1, h, w)``."""
        features = []
        for scale in range(self.num_scales):
            response = self._conv(x)
            # unit-normalise across the channel dimension (LPIPS convention)
            norm = ((response * response).sum(axis=1, keepdims=True) + 1e-8) ** 0.5
            features.append(response * (norm ** -1.0))
            if scale != self.num_scales - 1:
                if x.shape[2] < 4 or x.shape[3] < 4:
                    break
                x = self._pool(x)
        return features

    def forward(self, prediction, target):
        """Perceptual distance between ``prediction`` and ``target`` batches."""
        prediction = nn.as_tensor(prediction)
        target = nn.as_tensor(target)
        if prediction.ndim == 3:
            prediction = prediction.reshape(prediction.shape[0], 1, prediction.shape[1], prediction.shape[2])
            target = target.reshape(target.shape[0], 1, target.shape[1], target.shape[2])
        pred_features = self._features(prediction)
        target_features = self._features(target)
        total = None
        for pred, ref in zip(pred_features, target_features):
            diff = pred - ref
            term = (diff * diff).mean()
            total = term if total is None else total + term
        return total * (1.0 / len(pred_features))


_DEFAULT_LOSS = None


def _default_loss():
    global _DEFAULT_LOSS
    if _DEFAULT_LOSS is None:
        _DEFAULT_LOSS = PerceptualLoss()
    return _DEFAULT_LOSS


def lpips(reference, test):
    """LPIPS-style perceptual distance between two images (lower is better)."""
    reference = ensure_gray(to_float(reference))
    test = ensure_gray(to_float(test))
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    loss = _default_loss()
    with nn.no_grad():
        value = loss(reference[None, ...], test[None, ...])
    return float(value.data)
