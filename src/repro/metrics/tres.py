"""TReS proxy (no-reference quality score, higher is better).

Golestaneh et al. (2022) predict quality with a CNN+transformer trained with
relative-ranking and self-consistency losses.  The trained network is not
available offline.  The proxy below keeps the two properties the paper's
comparisons rely on:

* **higher = better**, roughly in the 40–95 range for compressed natural
  images;
* it is *not* a pure monotone transform of BRISQUE — half of the score comes
  from a sharpness/local-contrast term, so images that keep fine detail
  (which is exactly what the Easz reconstruction targets) are rewarded even
  when their NSS distance is similar.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import laplace

from ..image import ensure_gray, to_float
from .naturalness import default_model

__all__ = ["tres"]

_NATURALNESS_WEIGHT = 0.6
_SHARPNESS_WEIGHT = 0.4


def _sharpness_index(image):
    """Laplacian-energy sharpness on a 0–1 scale (saturating)."""
    gray = ensure_gray(to_float(image))
    energy = float(np.mean(np.abs(laplace(gray))))
    # Natural sharp photographs land around 0.02–0.08; heavy blur below 0.01.
    return float(np.clip(energy / 0.06, 0.0, 1.0))


def tres(image, model=None):
    """TReS-style quality score of ``image`` (higher is better, ~0–100)."""
    model = model or default_model()
    distance = model.distance(image)
    naturalness = float(np.exp(-np.sqrt(distance) / 4.0))
    sharpness = _sharpness_index(image)
    score = 100.0 * (_NATURALNESS_WEIGHT * naturalness + _SHARPNESS_WEIGHT * sharpness)
    return float(np.clip(score, 0.0, 100.0))
