"""NIQE proxy (no-reference naturalness score, lower is better).

Mittal, Soundararajan & Bovik (2013) score an image by the Mahalanobis-like
distance between the multivariate-Gaussian fit of its patch NSS features and
a pristine-image Gaussian.  This proxy uses the shared
:class:`repro.metrics.naturalness.NaturalnessModel` and rescales the distance
into NIQE's typical 2–10 range.
"""

from __future__ import annotations

import numpy as np

from .naturalness import default_model

__all__ = ["niqe"]

_SCALE = 1.1
_OFFSET = 2.0


def niqe(image, model=None):
    """NIQE-style naturalness score of ``image`` (lower is better)."""
    model = model or default_model()
    distance = model.distance(image)
    return float(_OFFSET + _SCALE * np.sqrt(distance))
