"""Gradient Magnitude Similarity Deviation (Xue et al., 2014).

GMSD is a fast full-reference perceptual metric: the per-pixel similarity of
gradient magnitudes between the reference and the distorted image is pooled
by its standard deviation.  Lower is better (0 means identical gradients).
It complements PSNR/SSIM in the extra ablation benches because it is very
sensitive to the structural artefacts (seams, smears) that erase-and-
reconstruct pipelines can introduce.
"""

from __future__ import annotations

import numpy as np

from ..image import ensure_gray, to_float

__all__ = ["gmsd", "gradient_magnitude_similarity"]

_PREWITT_X = np.array([[1.0, 0.0, -1.0],
                       [1.0, 0.0, -1.0],
                       [1.0, 0.0, -1.0]]) / 3.0
_PREWITT_Y = _PREWITT_X.T
_DEFAULT_C = 0.0026  # stability constant from the reference implementation (for [0,1] images)


def _convolve2d_same(image, kernel):
    """2-D 'same' convolution with edge padding (small fixed 3×3 kernels)."""
    pad = kernel.shape[0] // 2
    padded = np.pad(image, pad, mode="edge")
    height, width = image.shape
    out = np.zeros_like(image)
    for dy in range(kernel.shape[0]):
        for dx in range(kernel.shape[1]):
            out += kernel[dy, dx] * padded[dy:dy + height, dx:dx + width]
    return out


def _gradient_magnitude(image):
    gx = _convolve2d_same(image, _PREWITT_X)
    gy = _convolve2d_same(image, _PREWITT_Y)
    return np.sqrt(gx * gx + gy * gy)


def gradient_magnitude_similarity(reference, distorted, c=_DEFAULT_C, downsample=True):
    """Per-pixel gradient-magnitude similarity map in ``[0, 1]``."""
    reference = ensure_gray(to_float(reference))
    distorted = ensure_gray(to_float(distorted))
    if reference.shape != distorted.shape:
        raise ValueError(
            f"reference {reference.shape} and distorted {distorted.shape} shapes differ"
        )
    if downsample and min(reference.shape) >= 4:
        # Standard GMSD pre-processing: 2× average-pool both images.
        height, width = (reference.shape[0] // 2) * 2, (reference.shape[1] // 2) * 2
        reference = reference[:height, :width].reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))
        distorted = distorted[:height, :width].reshape(height // 2, 2, width // 2, 2).mean(axis=(1, 3))
    gm_ref = _gradient_magnitude(reference)
    gm_dis = _gradient_magnitude(distorted)
    return (2.0 * gm_ref * gm_dis + c) / (gm_ref ** 2 + gm_dis ** 2 + c)


def gmsd(reference, distorted, c=_DEFAULT_C, downsample=True):
    """Gradient Magnitude Similarity Deviation (lower is better)."""
    similarity = gradient_magnitude_similarity(reference, distorted, c=c, downsample=downsample)
    return float(similarity.std())
