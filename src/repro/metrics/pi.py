"""Perceptual Index (PI) proxy, lower is better.

The 2018 PIRM challenge defines ``PI = 0.5 * ((10 − Ma) + NIQE)`` where Ma is
a learned full-range quality predictor.  The Ma model is unavailable offline,
so this proxy substitutes a BRISQUE-derived pseudo-Ma score
(``Ma ≈ 10 − BRISQUE/10``), which keeps PI a monotone combination of the two
NSS-based scores with the same 2–9 operating range the paper reports.
"""

from __future__ import annotations

from .brisque import brisque
from .niqe import niqe

__all__ = ["pi"]


def pi(image, model=None):
    """Perceptual-index style score of ``image`` (lower is better)."""
    brisque_score = brisque(image, model=model)
    niqe_score = niqe(image, model=model)
    pseudo_ma = 10.0 - brisque_score / 10.0
    return float(0.5 * ((10.0 - pseudo_ma) + niqe_score))
