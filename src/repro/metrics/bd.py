"""Bjøntegaard-delta metrics for comparing rate/quality curves.

The paper reports point comparisons ("+Easz improves Brisque at ~equal BPP");
the codec-evaluation community summarises the same information as a single
number via the Bjøntegaard delta: the average vertical (quality) or
horizontal (rate) gap between two rate-distortion curves, computed from a
cubic polynomial fit in the log-rate domain (Bjøntegaard, VCEG-M33, 2001).

``bd_quality`` returns the average quality difference (test − anchor) at equal
rate; ``bd_rate`` returns the average *percentage* rate difference (test vs
anchor) at equal quality — negative means the test codec needs fewer bits.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bd_quality", "bd_rate"]


def _validate_curve(rates, qualities, name):
    rates = np.asarray(rates, dtype=np.float64)
    qualities = np.asarray(qualities, dtype=np.float64)
    if rates.shape != qualities.shape or rates.ndim != 1:
        raise ValueError(f"{name}: rates and qualities must be 1-D arrays of equal length")
    if rates.size < 4:
        raise ValueError(f"{name}: at least 4 rate/quality points are required for the cubic fit")
    if np.any(rates <= 0):
        raise ValueError(f"{name}: rates must be strictly positive")
    order = np.argsort(rates)
    return rates[order], qualities[order]


def _poly_integral(coefficients, low, high):
    """Definite integral of a polynomial given by ``np.polyfit`` coefficients."""
    integral = np.polyint(coefficients)
    return np.polyval(integral, high) - np.polyval(integral, low)


def bd_quality(anchor_rates, anchor_qualities, test_rates, test_qualities):
    """Average quality gain of the test codec over the anchor at equal rate.

    Positive values mean the test codec achieves higher quality (for
    higher-is-better metrics) over the overlapping rate range.
    """
    anchor_rates, anchor_qualities = _validate_curve(anchor_rates, anchor_qualities, "anchor")
    test_rates, test_qualities = _validate_curve(test_rates, test_qualities, "test")
    log_anchor = np.log10(anchor_rates)
    log_test = np.log10(test_rates)
    fit_anchor = np.polyfit(log_anchor, anchor_qualities, 3)
    fit_test = np.polyfit(log_test, test_qualities, 3)
    low = max(log_anchor.min(), log_test.min())
    high = min(log_anchor.max(), log_test.max())
    if high <= low:
        raise ValueError("rate ranges of the two curves do not overlap")
    area_anchor = _poly_integral(fit_anchor, low, high)
    area_test = _poly_integral(fit_test, low, high)
    return float((area_test - area_anchor) / (high - low))


def bd_rate(anchor_rates, anchor_qualities, test_rates, test_qualities):
    """Average percentage rate change of the test codec at equal quality.

    Negative values mean the test codec needs fewer bits for the same quality
    (e.g. ``-25.0`` → 25 % bitrate saving over the anchor).
    """
    anchor_rates, anchor_qualities = _validate_curve(anchor_rates, anchor_qualities, "anchor")
    test_rates, test_qualities = _validate_curve(test_rates, test_qualities, "test")
    for name, qualities in (("anchor", anchor_qualities), ("test", test_qualities)):
        if np.any(np.diff(np.sort(qualities)) <= 0) and np.unique(qualities).size != qualities.size:
            raise ValueError(f"{name}: quality values must be distinct for the rate fit")
    log_anchor = np.log10(anchor_rates)
    log_test = np.log10(test_rates)
    fit_anchor = np.polyfit(anchor_qualities, log_anchor, 3)
    fit_test = np.polyfit(test_qualities, log_test, 3)
    low = max(anchor_qualities.min(), test_qualities.min())
    high = min(anchor_qualities.max(), test_qualities.max())
    if high <= low:
        raise ValueError("quality ranges of the two curves do not overlap")
    area_anchor = _poly_integral(fit_anchor, low, high)
    area_test = _poly_integral(fit_test, low, high)
    average_log_ratio = (area_test - area_anchor) / (high - low)
    return float((10.0 ** average_log_ratio - 1.0) * 100.0)
