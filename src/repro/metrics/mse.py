"""Mean-squared-error style pixel fidelity metrics."""

from __future__ import annotations

import numpy as np

from ..image import to_float

__all__ = ["mse", "rmse", "mae"]


def mse(reference, test):
    """Mean squared error between two images (float, ``[0, 1]`` range)."""
    reference = to_float(reference)
    test = to_float(test)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    return float(np.mean((reference - test) ** 2))


def rmse(reference, test):
    """Root mean squared error."""
    return float(np.sqrt(mse(reference, test)))


def mae(reference, test):
    """Mean absolute error."""
    reference = to_float(reference)
    test = to_float(test)
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {test.shape}")
    return float(np.mean(np.abs(reference - test)))
