"""MBT baseline: Minnen, Ballé & Toderici (NeurIPS 2018) stand-in.

The paper uses the CompressAI ``mbt2018`` model ("joint autoregressive and
hierarchical priors").  This proxy configures
:class:`repro.codecs.neural.LearnedTransformCodec` with the hyperprior
entropy model and the published computational footprint of the original
network (≈226 GMACs for a 512×768 image → ≈575 kMAC/pixel, ~98 MB of fp32
weights), so both the rate/quality ordering and the edge-cost simulation
match the role MBT plays in the paper's comparisons.
"""

from __future__ import annotations

from .neural import LearnedTransformCodec

__all__ = ["MbtCodec"]


class MbtCodec(LearnedTransformCodec):
    """Minnen et al. 2018 ("MBT") proxy codec.

    Parameters
    ----------
    quality:
        CompressAI-style quality index in ``[1, 8]``.
    """

    def __init__(self, quality=4, rng=None):
        super().__init__(
            quality=quality,
            entropy_model="hyperprior",
            base_step=88.0,
            macs_per_pixel=575_000.0,
            model_bytes=98 * 2 ** 20,
            name="mbt",
            rng=rng,
        )
