"""Cheng-anchor baseline: Cheng et al. (CVPR 2020) stand-in.

The paper uses the CompressAI ``cheng2020-anchor`` model (discretized
Gaussian-mixture likelihoods with attention modules).  This proxy configures
:class:`repro.codecs.neural.LearnedTransformCodec` with the causal-context
entropy model (the richer probability model is what gives Cheng its edge over
MBT), a slightly finer base quantisation step, and a compute / model-size
footprint (≈620 kMAC/pixel, ~120 MB fp32 weights) calibrated so that encoding
a 512×768 image on the simulated Jetson TX2 lands near the ≈18 s the paper
measures (the real model's cost is dominated by its serial context model, not
raw MACs), preserving the edge-cost behaviour in Fig. 1 / Fig. 6.
"""

from __future__ import annotations

from .neural import LearnedTransformCodec

__all__ = ["ChengCodec"]


class ChengCodec(LearnedTransformCodec):
    """Cheng et al. 2020 ("Cheng-anchor") proxy codec.

    Parameters
    ----------
    quality:
        CompressAI-style quality index in ``[1, 8]``.
    """

    def __init__(self, quality=4, rng=None):
        super().__init__(
            quality=quality,
            entropy_model="context",
            base_step=80.0,
            macs_per_pixel=620_000.0,
            model_bytes=120 * 2 ** 20,
            name="cheng",
            rng=rng,
        )
