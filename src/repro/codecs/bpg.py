"""BPG-proxy codec: block intra-prediction + DCT + adaptive arithmetic coding.

BPG (Bellard, 2014) wraps HEVC intra coding.  The real reference encoder is
not available offline, so this module implements the three ingredients that
give HEVC-intra its advantage over JPEG and therefore preserve the ordering
the paper relies on (BPG better than JPEG at equal BPP):

* per-block intra prediction (DC / horizontal / vertical / planar modes,
  chosen by minimum residual energy) so only residuals are transformed;
* 8×8 residual DCT with a flat quantisation step controlled by a ``qp``
  parameter (as in HEVC, step grows exponentially with qp);
* context-adaptive arithmetic coding of the quantised coefficients instead
  of static Huffman tables.
"""

from __future__ import annotations

import numpy as np

from ..entropy.arithmetic import (
    FORMAT_LEGACY,
    FORMAT_RANGE,
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
)
from ..entropy.range_coder import RangeDecoder, RangeEncoder
from ..image import (
    image_num_pixels,
    is_color,
    pad_to_multiple,
    resize_bilinear,
    rgb_to_ycbcr,
    to_float,
    ycbcr_to_rgb,
)
from .base import Codec, ComplexityProfile, CompressedImage
from .jpeg import dct2, idct2
from .jpeg_tables import ZIGZAG_ORDER

__all__ = ["BpgCodec"]

_MAGIC = b"RBPG"
_BLOCK = 8
_MODES = ("dc", "horizontal", "vertical", "planar")
# Coefficient magnitudes are clamped into [-_COEF_CLAMP, _COEF_CLAMP] for the
# arithmetic coder alphabet; an escape symbol codes the rare overflow values.
_COEF_CLAMP = 255


def _quant_step(qp):
    """HEVC-style quantisation step: doubles every 6 qp."""
    return 0.625 * (2.0 ** ((qp - 4) / 6.0))


def _predict_block(reconstructed, row, col, mode):
    """Intra-predict an 8×8 block from already-reconstructed neighbours."""
    block = np.zeros((_BLOCK, _BLOCK))
    top = reconstructed[row - 1, col:col + _BLOCK] if row > 0 else None
    left = reconstructed[row:row + _BLOCK, col - 1] if col > 0 else None
    if mode == "dc":
        values = []
        if top is not None:
            values.append(top.mean())
        if left is not None:
            values.append(left.mean())
        block[:] = np.mean(values) if values else 0.5
    elif mode == "horizontal":
        if left is None:
            block[:] = top.mean() if top is not None else 0.5
        else:
            block[:] = left.reshape(-1, 1)
    elif mode == "vertical":
        if top is None:
            block[:] = left.mean() if left is not None else 0.5
        else:
            block[:] = top.reshape(1, -1)
    elif mode == "planar":
        if top is None and left is None:
            block[:] = 0.5
        elif top is None:
            block[:] = left.reshape(-1, 1)
        elif left is None:
            block[:] = top.reshape(1, -1)
        else:
            horizontal = np.tile(left.reshape(-1, 1), (1, _BLOCK))
            vertical = np.tile(top.reshape(1, -1), (_BLOCK, 1))
            block = 0.5 * (horizontal + vertical)
    else:
        raise ValueError(f"unknown intra mode {mode!r}")
    return block


class BpgCodec(Codec):
    """BPG/HEVC-intra proxy codec.

    Parameters
    ----------
    qp:
        Quantisation parameter in ``[1, 51]`` (HEVC convention); larger means
        coarser quantisation and fewer bits.
    subsample_chroma:
        Apply 4:2:0 chroma subsampling for RGB inputs.
    legacy_entropy:
        Entropy-code with the seed bit-at-a-time arithmetic coder instead of
        the byte-oriented range coder.  The container header tags which
        backend wrote the stream, so decoding picks the right one per
        payload regardless of this flag.
    """

    is_neural = False

    def __init__(self, qp=32, subsample_chroma=True, legacy_entropy=False):
        self.qp = int(qp)
        self.subsample_chroma = bool(subsample_chroma)
        self.legacy_entropy = bool(legacy_entropy)
        self.name = f"bpg-qp{self.qp}"
        self._step = _quant_step(self.qp)

    # ------------------------------------------------------------------ #
    def _encode_channel(self, channel, encoder, mode_model, coef_model, sign_model,
                        legacy=False):
        padded, original_shape = pad_to_multiple(channel, _BLOCK)
        height, width = padded.shape
        reconstructed = np.zeros_like(padded)
        for row in range(0, height, _BLOCK):
            for col in range(0, width, _BLOCK):
                target = padded[row:row + _BLOCK, col:col + _BLOCK]
                best_mode = 0
                best_residual = None
                best_cost = np.inf
                for mode_index, mode in enumerate(_MODES):
                    prediction = _predict_block(reconstructed, row, col, mode)
                    residual = target - prediction
                    cost = float(np.abs(residual).sum())
                    if cost < best_cost:
                        best_cost = cost
                        best_mode = mode_index
                        best_residual = residual
                        best_prediction = prediction
                encoder.encode(mode_model, best_mode)
                coefficients = dct2(best_residual * 255.0)
                quantised = np.round(coefficients / self._step).astype(np.int64)
                flat = quantised.reshape(-1)[ZIGZAG_ORDER]
                clamped = np.clip(flat, -_COEF_CLAMP, _COEF_CLAMP)
                if legacy:
                    # seed symbol order: magnitude, then its sign, per coefficient
                    for value in flat:
                        magnitude = min(abs(int(value)), _COEF_CLAMP)
                        encoder.encode(coef_model, magnitude)
                        if magnitude:
                            encoder.encode(sign_model, 0 if value > 0 else 1)
                else:
                    # range format: the whole 64-coefficient magnitude scan as
                    # one array call, then the signs of the nonzeros
                    magnitudes = np.abs(clamped)
                    encoder.encode_array(coef_model, magnitudes)
                    nonzero = clamped[magnitudes > 0]
                    if nonzero.size:
                        encoder.encode_array(sign_model,
                                             (nonzero < 0).astype(np.int64))
                dequantised = np.zeros(64)
                dequantised[ZIGZAG_ORDER] = clamped
                rec_block = idct2(dequantised.reshape(_BLOCK, _BLOCK) * self._step) / 255.0
                reconstructed[row:row + _BLOCK, col:col + _BLOCK] = np.clip(
                    best_prediction + rec_block, 0.0, 1.0
                )
        meta = {
            "padded_shape": padded.shape,
            "original_shape": (original_shape[0], original_shape[1]),
        }
        return meta

    def _decode_channel(self, decoder, meta, mode_model, coef_model, sign_model,
                        legacy=False):
        height, width = meta["padded_shape"]
        reconstructed = np.zeros((height, width))
        for row in range(0, height, _BLOCK):
            for col in range(0, width, _BLOCK):
                mode_index = decoder.decode(mode_model)
                prediction = _predict_block(reconstructed, row, col, _MODES[mode_index])
                if legacy:
                    flat = np.zeros(64, dtype=np.int64)
                    for i in range(64):
                        magnitude = decoder.decode(coef_model)
                        if magnitude:
                            sign = decoder.decode(sign_model)
                            flat[i] = -magnitude if sign else magnitude
                else:
                    flat = np.asarray(decoder.decode_array(coef_model, 64),
                                      dtype=np.int64)
                    nonzero = np.flatnonzero(flat)
                    if nonzero.size:
                        signs = np.asarray(
                            decoder.decode_array(sign_model, nonzero.size),
                            dtype=np.int64)
                        flat[nonzero[signs == 1]] *= -1
                dequantised = np.zeros(64)
                dequantised[ZIGZAG_ORDER] = flat
                rec_block = idct2(dequantised.reshape(_BLOCK, _BLOCK) * self._step) / 255.0
                reconstructed[row:row + _BLOCK, col:col + _BLOCK] = np.clip(
                    prediction + rec_block, 0.0, 1.0
                )
        oh, ow = meta["original_shape"]
        return reconstructed[:oh, :ow]

    # ------------------------------------------------------------------ #
    def compress(self, image):
        """Encode a float image into a BPG-proxy bitstream."""
        image = to_float(image)
        color = is_color(image)
        if color:
            ycbcr = rgb_to_ycbcr(image)
            channels = [ycbcr[..., 0], ycbcr[..., 1], ycbcr[..., 2]]
        else:
            channels = [image]
        legacy = self.legacy_entropy
        encoder = ArithmeticEncoder() if legacy else RangeEncoder()
        mode_model = AdaptiveModel(len(_MODES))
        coef_model = AdaptiveModel(_COEF_CLAMP + 1)
        sign_model = AdaptiveModel(2)
        channel_meta = []
        for channel_index, channel in enumerate(channels):
            if channel_index > 0 and self.subsample_chroma:
                channel = resize_bilinear(channel, max(1, channel.shape[0] // 2),
                                          max(1, channel.shape[1] // 2))
            channel_meta.append(self._encode_channel(channel, encoder, mode_model,
                                                     coef_model, sign_model,
                                                     legacy=legacy))
        header = bytearray()
        header += _MAGIC
        header += int(image.shape[0]).to_bytes(2, "big")
        header += int(image.shape[1]).to_bytes(2, "big")
        header.append(3 if color else 1)
        header.append(self.qp)
        header.append(FORMAT_LEGACY if legacy else FORMAT_RANGE)
        payload = bytes(header) + encoder.finish()
        return CompressedImage(
            payload=payload,
            original_shape=image.shape,
            codec_name=self.name,
            metadata={"channels": channel_meta, "color": color},
        )

    def decompress(self, compressed):
        """Decode a bitstream produced by :meth:`compress`."""
        payload = compressed.payload
        if payload[:4] != _MAGIC:
            raise ValueError("not a repro-BPG payload")
        height = int.from_bytes(payload[4:6], "big")
        width = int.from_bytes(payload[6:8], "big")
        num_channels = payload[8]
        entropy_format = payload[10]
        if entropy_format == FORMAT_LEGACY:
            legacy = True
            decoder = ArithmeticDecoder(payload[11:])
        elif entropy_format == FORMAT_RANGE:
            legacy = False
            decoder = RangeDecoder(payload[11:])
        else:
            raise ValueError(f"unknown BPG entropy format tag {entropy_format}")
        mode_model = AdaptiveModel(len(_MODES))
        coef_model = AdaptiveModel(_COEF_CLAMP + 1)
        sign_model = AdaptiveModel(2)
        channels = []
        for meta in compressed.metadata["channels"]:
            channel = self._decode_channel(decoder, meta, mode_model, coef_model,
                                           sign_model, legacy=legacy)
            if channel.shape != (height, width):
                channel = resize_bilinear(channel, height, width)
            channels.append(channel)
        if num_channels == 1:
            return channels[0]
        return ycbcr_to_rgb(np.stack(channels, axis=-1))

    # ------------------------------------------------------------------ #
    def encode_complexity(self, shape):
        """Intra-mode search + DCT + CABAC-like coding (CPU only)."""
        pixels = image_num_pixels(shape)
        channels = 3 if len(shape) == 3 else 1
        effective = pixels * (2.0 if channels == 3 and self.subsample_chroma else channels)
        # mode search (4 predictions) + transform + entropy ≈ 160 MACs/px
        return ComplexityProfile(macs=160.0 * effective, model_bytes=0.0,
                                 working_memory_bytes=16.0 * pixels * channels,
                                 uses_gpu=False)

    def decode_complexity(self, shape):
        """Single prediction + inverse transform per block."""
        pixels = image_num_pixels(shape)
        channels = 3 if len(shape) == 3 else 1
        effective = pixels * (2.0 if channels == 3 and self.subsample_chroma else channels)
        return ComplexityProfile(macs=80.0 * effective, model_bytes=0.0,
                                 working_memory_bytes=16.0 * pixels * channels,
                                 uses_gpu=False)
