"""Base-codec rate control: pick the quality setting that hits a target BPP.

The paper's Table II fixes an operating point per dataset ("we aimed for a
bit-per-pixel rate of approximately 0.4" on Kodak, ≈0.3 on CLIC) and compares
codecs there.  This module automates that step for any registered codec: it
walks the codec's quality grid (or a user-supplied one), measures the
compressed size on a probe image or dataset, and returns the setting whose
rate is closest to the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .registry import create_codec, quality_grid

__all__ = ["QualitySelection", "select_quality_for_bpp", "QualitySelector"]


@dataclass
class QualitySelection:
    """Outcome of one rate-control search over a codec's quality grid."""

    codec_name: str
    quality: object
    achieved_bpp: float
    target_bpp: float
    evaluations: int
    trace: list = field(default_factory=list)

    @property
    def error(self):
        """Absolute BPP error of the selected setting."""
        return abs(self.achieved_bpp - self.target_bpp)


def _measure_bpp(codec, images):
    """Average BPP of ``codec`` across ``images``."""
    bpps = [codec.compress(image).bpp() for image in images]
    return float(np.mean(bpps))


def select_quality_for_bpp(codec_name, images, target_bpp, qualities=None,
                           prefer="closest", codec_kwargs=None):
    """Pick the quality setting of ``codec_name`` that best matches ``target_bpp``.

    Parameters
    ----------
    codec_name:
        A registry name (``"jpeg"``, ``"bpg"``, ``"mbt"``, ``"cheng"`` ...).
    images:
        A single image or an iterable of images to probe with.
    target_bpp:
        The bits-per-pixel operating point to hit.
    qualities:
        Candidate settings (defaults to the registry's grid for the codec).
    prefer:
        ``"closest"`` picks the minimum |bpp − target|; ``"under"`` picks the
        highest-quality setting whose rate does not exceed the target
        (falling back to the cheapest setting if all exceed it).
    """
    if target_bpp <= 0:
        raise ValueError("target_bpp must be positive")
    if prefer not in ("closest", "under"):
        raise ValueError("prefer must be 'closest' or 'under'")
    if qualities is None:
        qualities = quality_grid(codec_name)
    if isinstance(images, np.ndarray):
        images = [images]
    images = list(images)
    if not images:
        raise ValueError("at least one probe image is required")
    codec_kwargs = codec_kwargs or {}

    trace = []
    for quality in qualities:
        codec = create_codec(codec_name, quality=quality, **codec_kwargs)
        bpp = _measure_bpp(codec, images)
        trace.append((quality, bpp))

    if prefer == "under":
        under = [(q, b) for q, b in trace if b <= target_bpp]
        chosen = max(under, key=lambda qb: qb[1]) if under else min(trace, key=lambda qb: qb[1])
    else:
        chosen = min(trace, key=lambda qb: abs(qb[1] - target_bpp))
    quality, bpp = chosen
    return QualitySelection(
        codec_name=codec_name,
        quality=quality,
        achieved_bpp=bpp,
        target_bpp=float(target_bpp),
        evaluations=len(trace),
        trace=trace,
    )


class QualitySelector:
    """Caches rate-control searches per (codec, target) pair.

    The Table II benchmark evaluates four codecs on two datasets at fixed
    operating points; the selector memoises the probe sweeps so repeated
    calls (e.g. across benchmark rounds) do not redo the compressions.
    """

    def __init__(self, probe_images, prefer="closest"):
        if isinstance(probe_images, np.ndarray):
            probe_images = [probe_images]
        self.probe_images = list(probe_images)
        self.prefer = prefer
        self._cache = {}

    def select(self, codec_name, target_bpp, qualities=None):
        """Cached :func:`select_quality_for_bpp` for this selector's probes."""
        key = (codec_name, round(float(target_bpp), 4), tuple(qualities) if qualities else None)
        if key not in self._cache:
            self._cache[key] = select_quality_for_bpp(
                codec_name, self.probe_images, target_bpp,
                qualities=qualities, prefer=self.prefer,
            )
        return self._cache[key]

    def codec_for(self, codec_name, target_bpp, qualities=None, **codec_kwargs):
        """Instantiate the codec at the selected quality."""
        selection = self.select(codec_name, target_bpp, qualities)
        return create_codec(codec_name, quality=selection.quality, **codec_kwargs), selection
