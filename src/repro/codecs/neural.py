"""Learned transform codec used to stand in for the neural baselines.

The paper compares against two CompressAI models: MBT (Minnen, Ballé &
Toderici, NeurIPS 2018 — joint autoregressive and hierarchical priors) and
Cheng-anchor (Cheng et al., CVPR 2020 — Gaussian-mixture likelihoods with
attention).  Neither PyTorch nor the pretrained weights are available
offline, so :class:`LearnedTransformCodec` implements the same *architecture
family* at block scale:

* a learnable analysis transform ``W_a`` mapping an 8×8 pixel block to a
  64-dimensional latent (initialised to the DCT basis so the codec is useful
  without lengthy training, exactly as a pretrained model would be);
* per-channel learnable quantisation steps shaped by a perceptually-motivated
  frequency weighting, scaled by a global ``quality`` parameter;
* an entropy model: either a *factorized* prior (independent adaptive models
  per latent channel) or a *hyperprior/context* model that first transmits a
  coarse per-block scale class and conditions the coefficient models on it —
  the mechanism that gives MBT/Cheng their rate advantage;
* a learnable synthesis transform ``W_s`` (initialised to the inverse DCT).

The class supports end-to-end rate–distortion fine-tuning with
:mod:`repro.nn` (see :meth:`train_steps`), and carries the published compute
cost and model size of the original models as metadata so the edge testbed
simulation reproduces Fig. 1 and Fig. 6.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..entropy.arithmetic import (
    FORMAT_LEGACY,
    FORMAT_RANGE,
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
)
from ..entropy.range_coder import RangeDecoder, RangeEncoder
from ..image import (
    image_num_pixels,
    is_color,
    pad_to_multiple,
    resize_bilinear,
    rgb_to_ycbcr,
    to_float,
    ycbcr_to_rgb,
)
from .base import Codec, ComplexityProfile, CompressedImage
from .jpeg import dct_matrix
from .jpeg_tables import LUMINANCE_QUANT_TABLE, ZIGZAG_ORDER

__all__ = ["LearnedTransformCodec"]

_MAGIC = b"RNNC"
_BLOCK = 8
_COEF_CLAMP = 255
_NUM_SCALE_CLASSES = 8


def _dct_basis_2d():
    """Return the 64×64 separable DCT basis used to initialise the transforms."""
    d = dct_matrix(_BLOCK)
    return np.kron(d, d)


def _frequency_weights():
    """Perceptual frequency weighting derived from the JPEG luminance table."""
    table = LUMINANCE_QUANT_TABLE.reshape(-1)
    return table / table.min()


class LearnedTransformCodec(Codec):
    """Block-based learned image codec (MBT / Cheng-anchor stand-in).

    Parameters
    ----------
    quality:
        Integer in ``[1, 8]`` mirroring CompressAI quality indices; higher
        means finer quantisation (more bits, better quality).
    entropy_model:
        ``"factorized"`` — independent per-channel probability models
        (Ballé 2017 style); ``"hyperprior"`` — per-block scale classes are
        transmitted first and condition the coefficient models (Minnen 2018
        style); ``"context"`` — hyperprior plus conditioning on the previous
        block's class (causal context, Cheng 2020 style).
    base_step:
        Quantisation step at quality 1 for the DC-like channel.
    macs_per_pixel, model_bytes:
        Published computational footprint of the original network; used only
        by the testbed simulator, not by the numerics here.
    """

    is_neural = True

    def __init__(self, quality=4, entropy_model="hyperprior", base_step=96.0,
                 macs_per_pixel=300_000.0, model_bytes=100 * 2 ** 20,
                 name="learned", deblock=True, rng=None, legacy_entropy=False):
        if entropy_model not in ("factorized", "hyperprior", "context"):
            raise ValueError(f"unknown entropy model {entropy_model!r}")
        self.quality = int(np.clip(quality, 1, 8))
        self.entropy_model = entropy_model
        self.legacy_entropy = bool(legacy_entropy)
        self.deblock = bool(deblock)
        self.base_step = float(base_step)
        self.macs_per_pixel = float(macs_per_pixel)
        self.model_bytes = float(model_bytes)
        self.name = f"{name}-q{self.quality}"
        rng = rng or np.random.default_rng(7)

        basis = _dct_basis_2d()
        self.analysis = nn.Parameter(basis.copy())
        self.synthesis = nn.Parameter(basis.T.copy())
        # Per-channel quantisation steps: frequency-weighted, shrinking with quality.
        scale = self.base_step * (0.6 ** (self.quality - 1)) / 255.0
        self.log_steps = nn.Parameter(np.log(scale * _frequency_weights()))

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def _steps(self):
        return np.exp(self.log_steps.data)

    def _analyse(self, channel):
        padded, original_shape = pad_to_multiple(channel, _BLOCK)
        height, width = padded.shape
        blocks = padded.reshape(height // _BLOCK, _BLOCK, width // _BLOCK, _BLOCK)
        blocks = blocks.transpose(0, 2, 1, 3).reshape(-1, _BLOCK * _BLOCK)
        latents = (blocks - 0.5) @ self.analysis.data.T
        return latents, padded.shape, original_shape

    def _synthesise(self, latents, padded_shape, original_shape):
        blocks = latents @ self.synthesis.data.T + 0.5
        height, width = padded_shape
        grid = blocks.reshape(height // _BLOCK, width // _BLOCK, _BLOCK, _BLOCK)
        channel = grid.transpose(0, 2, 1, 3).reshape(height, width)
        if self.deblock:
            channel = self._deblock(channel)
        return np.clip(channel[: original_shape[0], : original_shape[1]], 0.0, 1.0)

    @staticmethod
    def _deblock(channel):
        """Smooth the two pixels either side of every block boundary.

        Neural synthesis transforms produce outputs without block-edge
        discontinuities; this light [1 2 1]/4 filter across boundaries keeps
        the proxy's outputs perceptually block-free too (it matters for the
        no-reference metrics, not for PSNR).
        """
        smoothed = channel.copy()
        height, width = channel.shape
        for boundary in range(_BLOCK, width, _BLOCK):
            left, right = boundary - 1, boundary
            a = channel[:, max(left - 1, 0)]
            b = channel[:, left]
            c = channel[:, right]
            d = channel[:, min(right + 1, width - 1)]
            smoothed[:, left] = 0.25 * a + 0.5 * b + 0.25 * c
            smoothed[:, right] = 0.25 * b + 0.5 * c + 0.25 * d
        channel = smoothed
        smoothed = channel.copy()
        for boundary in range(_BLOCK, height, _BLOCK):
            top, bottom = boundary - 1, boundary
            a = channel[max(top - 1, 0), :]
            b = channel[top, :]
            c = channel[bottom, :]
            d = channel[min(bottom + 1, height - 1), :]
            smoothed[top, :] = 0.25 * a + 0.5 * b + 0.25 * c
            smoothed[bottom, :] = 0.25 * b + 0.5 * c + 0.25 * d
        return smoothed

    def _scale_class(self, quantised_block):
        """Coarse activity class of a block (the hyperprior side information)."""
        energy = np.log1p(np.abs(quantised_block).sum())
        return int(np.clip(energy / 1.2, 0, _NUM_SCALE_CLASSES - 1))

    # ------------------------------------------------------------------ #
    # entropy coding
    # ------------------------------------------------------------------ #
    def _make_models(self):
        if self.entropy_model == "factorized":
            contexts = 1
        else:
            contexts = _NUM_SCALE_CLASSES
        coef_models = [[AdaptiveModel(_COEF_CLAMP + 1) for _ in range(_BLOCK * _BLOCK)]
                       for _ in range(contexts)]
        sign_model = AdaptiveModel(2)
        class_model = AdaptiveModel(_NUM_SCALE_CLASSES)
        # "significance" model: index of the last non-zero latent channel per
        # block (0 = all channels zero).  Learned codecs skip inactive
        # channels through their entropy model; this plays the same role.
        significance_model = AdaptiveModel(_BLOCK * _BLOCK + 1)
        return coef_models, sign_model, class_model, significance_model

    def _encode_latents(self, encoder, quantised, models):
        coef_models, sign_model, class_model, significance_model = models
        previous_class = 0
        for block in quantised:
            if self.entropy_model == "factorized":
                context = 0
            else:
                scale_class = self._scale_class(block)
                if self.entropy_model == "context":
                    # condition the transmitted class on the previous block's class
                    encoder.encode(class_model, (scale_class + previous_class) % _NUM_SCALE_CLASSES)
                    previous_class = scale_class
                else:
                    encoder.encode(class_model, scale_class)
                context = scale_class
            # scan channels in zig-zag (low → high frequency) order so the
            # "last significant channel" bound is tight for smooth blocks
            scanned = block[ZIGZAG_ORDER]
            nonzero = np.flatnonzero(scanned)
            significant = int(nonzero[-1]) + 1 if nonzero.size else 0
            encoder.encode(significance_model, significant)
            for channel_index in range(significant):
                value = scanned[channel_index]
                magnitude = min(abs(int(value)), _COEF_CLAMP)
                encoder.encode(coef_models[context][channel_index], magnitude)
                if magnitude:
                    encoder.encode(sign_model, 0 if value > 0 else 1)

    def _decode_latents(self, decoder, num_blocks, models):
        coef_models, sign_model, class_model, significance_model = models
        quantised = np.zeros((num_blocks, _BLOCK * _BLOCK), dtype=np.int64)
        previous_class = 0
        for block_index in range(num_blocks):
            if self.entropy_model == "factorized":
                context = 0
            else:
                symbol = decoder.decode(class_model)
                if self.entropy_model == "context":
                    # the encoder transmitted (class + previous_class) mod N
                    context = (symbol - previous_class) % _NUM_SCALE_CLASSES
                    previous_class = context
                else:
                    context = symbol
            significant = decoder.decode(significance_model)
            scanned = np.zeros(_BLOCK * _BLOCK, dtype=np.int64)
            for channel_index in range(significant):
                magnitude = decoder.decode(coef_models[context][channel_index])
                if magnitude:
                    sign = decoder.decode(sign_model)
                    scanned[channel_index] = -magnitude if sign else magnitude
            quantised[block_index, ZIGZAG_ORDER] = scanned
        return quantised

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compress(self, image):
        """Encode a float image into a learned-codec bitstream."""
        image = to_float(image)
        color = is_color(image)
        if color:
            ycbcr = rgb_to_ycbcr(image)
            channels = [ycbcr[..., 0],
                        resize_bilinear(ycbcr[..., 1], max(1, image.shape[0] // 2),
                                        max(1, image.shape[1] // 2)),
                        resize_bilinear(ycbcr[..., 2], max(1, image.shape[0] // 2),
                                        max(1, image.shape[1] // 2))]
        else:
            channels = [image]
        steps = self._steps()
        encoder = ArithmeticEncoder() if self.legacy_entropy else RangeEncoder()
        models = self._make_models()
        channel_meta = []
        for channel in channels:
            latents, padded_shape, original_shape = self._analyse(channel)
            quantised = np.clip(np.round(latents / steps), -_COEF_CLAMP, _COEF_CLAMP).astype(np.int64)
            self._encode_latents(encoder, quantised, models)
            channel_meta.append({
                "padded_shape": padded_shape,
                "original_shape": (original_shape[0], original_shape[1]),
                "num_blocks": quantised.shape[0],
            })
        header = bytearray()
        header += _MAGIC
        header += int(image.shape[0]).to_bytes(2, "big")
        header += int(image.shape[1]).to_bytes(2, "big")
        header.append(3 if color else 1)
        header.append(self.quality)
        header.append(FORMAT_LEGACY if self.legacy_entropy else FORMAT_RANGE)
        payload = bytes(header) + encoder.finish()
        return CompressedImage(
            payload=payload,
            original_shape=image.shape,
            codec_name=self.name,
            metadata={"channels": channel_meta, "color": color},
        )

    def decompress(self, compressed):
        """Decode a bitstream produced by :meth:`compress`."""
        payload = compressed.payload
        if payload[:4] != _MAGIC:
            raise ValueError("not a repro learned-codec payload")
        height = int.from_bytes(payload[4:6], "big")
        width = int.from_bytes(payload[6:8], "big")
        num_channels = payload[8]
        entropy_format = payload[10]
        if entropy_format == FORMAT_LEGACY:
            decoder = ArithmeticDecoder(payload[11:])
        elif entropy_format == FORMAT_RANGE:
            decoder = RangeDecoder(payload[11:])
        else:
            raise ValueError(f"unknown learned-codec entropy format tag {entropy_format}")
        steps = self._steps()
        models = self._make_models()
        channels = []
        for meta in compressed.metadata["channels"]:
            quantised = self._decode_latents(decoder, meta["num_blocks"], models)
            latents = quantised.astype(np.float64) * steps
            channel = self._synthesise(latents, meta["padded_shape"], meta["original_shape"])
            if channel.shape != (height, width):
                channel = resize_bilinear(channel, height, width)
            channels.append(channel)
        if num_channels == 1:
            return channels[0]
        return ycbcr_to_rgb(np.stack(channels, axis=-1))

    # ------------------------------------------------------------------ #
    # rate-distortion fine-tuning (used by tests and the training example)
    # ------------------------------------------------------------------ #
    def train_steps(self, patches, steps=50, lr=1e-3, rate_weight=0.01):
        """Fine-tune the analysis/synthesis transforms on grayscale patches.

        ``patches`` is an array of shape ``(count, 8, 8)`` in ``[0, 1]``.  The
        objective is MSE distortion plus a differentiable rate proxy (mean
        absolute quantised-latent magnitude).  Returns the list of per-step
        losses (useful to check convergence in tests).
        """
        patches = np.asarray(patches, dtype=np.float64).reshape(-1, _BLOCK * _BLOCK)
        optimizer = nn.Adam([self.analysis, self.synthesis, self.log_steps], lr=lr)
        losses = []
        noise_rng = np.random.default_rng(0)
        for _ in range(steps):
            optimizer.zero_grad()
            x = nn.Tensor(patches - 0.5)
            latents = x @ self.analysis.transpose()
            steps_tensor = self.log_steps.exp()
            scaled = latents * (steps_tensor ** -1.0)
            # additive-uniform-noise relaxation of quantisation (Ballé 2017)
            noise = nn.Tensor(noise_rng.uniform(-0.5, 0.5, scaled.shape))
            noisy = scaled + noise
            dequantised = noisy * steps_tensor
            reconstruction = dequantised @ self.synthesis.transpose()
            distortion = nn.functional.mse_loss(reconstruction, x)
            rate = noisy.abs().mean()
            loss = distortion + rate_weight * rate
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        return losses

    # ------------------------------------------------------------------ #
    def encode_complexity(self, shape):
        """Published-scale cost of the analysis transform + entropy model (GPU)."""
        pixels = image_num_pixels(shape)
        return ComplexityProfile(
            macs=self.macs_per_pixel * pixels,
            model_bytes=self.model_bytes,
            working_memory_bytes=48.0 * pixels,
            uses_gpu=True,
        )

    def decode_complexity(self, shape):
        """Synthesis transform cost (roughly symmetric for these models)."""
        pixels = image_num_pixels(shape)
        return ComplexityProfile(
            macs=self.macs_per_pixel * pixels,
            model_bytes=self.model_bytes,
            working_memory_bytes=48.0 * pixels,
            uses_gpu=True,
        )
