"""``repro.codecs`` — image compressors used as Easz substrates and baselines.

Contains a from-scratch baseline JPEG, a BPG/HEVC-intra proxy, learned-codec
proxies for the MBT (Minnen 2018) and Cheng-anchor (Cheng 2020) baselines, a
lossless PNG-style codec, and a registry for building codecs by name.
"""

from .balle import BalleFactorizedCodec, BalleHyperpriorCodec
from .base import Codec, ComplexityProfile, CompressedImage, RateDistortionPoint
from .bpg import BpgCodec
from .cheng import ChengCodec
from .jpeg import JpegCodec
from .mbt import MbtCodec
from .neural import LearnedTransformCodec
from .png import PngCodec
from .rate_control import QualitySelection, QualitySelector, select_quality_for_bpp
from .registry import (
    CODEC_CLASSES,
    QUALITY_GRIDS,
    available_codecs,
    create_codec,
    quality_grid,
)

__all__ = [
    "Codec",
    "CompressedImage",
    "ComplexityProfile",
    "RateDistortionPoint",
    "JpegCodec",
    "BpgCodec",
    "MbtCodec",
    "ChengCodec",
    "BalleFactorizedCodec",
    "BalleHyperpriorCodec",
    "LearnedTransformCodec",
    "PngCodec",
    "QualitySelection",
    "QualitySelector",
    "select_quality_for_bpp",
    "CODEC_CLASSES",
    "QUALITY_GRIDS",
    "available_codecs",
    "create_codec",
    "quality_grid",
]
