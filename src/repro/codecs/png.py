"""Lossless PNG-style codec (Paeth filtering + DEFLATE).

Serves as the lossless reference point in the benchmark harness and as the
transport format for raw (uncompressed-quality) transmission experiments.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..image import image_num_pixels, to_float, to_uint8
from .base import Codec, ComplexityProfile, CompressedImage

__all__ = ["PngCodec"]

_MAGIC = b"RPNG"


def _paeth(a, b, c):
    """Paeth predictor used by PNG filter type 4 (vectorised)."""
    p = a.astype(np.int32) + b.astype(np.int32) - c.astype(np.int32)
    pa = np.abs(p - a)
    pb = np.abs(p - b)
    pc = np.abs(p - c)
    out = np.where((pa <= pb) & (pa <= pc), a, np.where(pb <= pc, b, c))
    return out.astype(np.uint8)


class PngCodec(Codec):
    """Lossless codec: per-row Paeth prediction followed by zlib DEFLATE."""

    is_neural = False

    def __init__(self, compression_level=6):
        self.compression_level = int(compression_level)
        self.name = "png"

    def compress(self, image):
        """Losslessly encode a float image (quantised to 8-bit first)."""
        image = to_uint8(to_float(image))
        if image.ndim == 2:
            image = image[..., None]
        height, width, channels = image.shape
        filtered = np.zeros_like(image)
        previous_row = np.zeros((width, channels), dtype=np.uint8)
        for row in range(height):
            current = image[row]
            left = np.zeros_like(current)
            left[1:] = current[:-1]
            upper_left = np.zeros_like(previous_row)
            upper_left[1:] = previous_row[:-1]
            prediction = _paeth(left, previous_row, upper_left)
            filtered[row] = current - prediction
            previous_row = current
        payload = zlib.compress(filtered.tobytes(), self.compression_level)
        header = _MAGIC + height.to_bytes(2, "big") + width.to_bytes(2, "big") + bytes([channels])
        return CompressedImage(
            payload=header + payload,
            original_shape=image.shape if channels > 1 else (height, width),
            codec_name=self.name,
            metadata={"channels": channels},
        )

    def decompress(self, compressed):
        """Exactly recover the 8-bit image encoded by :meth:`compress`."""
        payload = compressed.payload
        if payload[:4] != _MAGIC:
            raise ValueError("not a repro-PNG payload")
        height = int.from_bytes(payload[4:6], "big")
        width = int.from_bytes(payload[6:8], "big")
        channels = payload[8]
        try:
            raw = zlib.decompress(payload[9:])
        except zlib.error as error:
            raise ValueError(f"corrupt PNG payload: {error}") from error
        filtered = np.frombuffer(raw, dtype=np.uint8)
        if filtered.size != height * width * channels:
            raise ValueError(
                f"corrupt PNG payload: expected {height * width * channels} samples, "
                f"got {filtered.size}"
            )
        filtered = filtered.reshape(height, width, channels).astype(np.int32)
        image = np.zeros((height, width, channels), dtype=np.uint8)
        previous_row = np.zeros((width, channels), dtype=np.uint8)
        for row in range(height):
            current = np.zeros((width, channels), dtype=np.uint8)
            for col in range(width):
                left = current[col - 1] if col > 0 else np.zeros(channels, dtype=np.uint8)
                upper_left = previous_row[col - 1] if col > 0 else np.zeros(channels, dtype=np.uint8)
                prediction = _paeth(left, previous_row[col], upper_left)
                current[col] = (filtered[row, col] + prediction).astype(np.uint8)
            image[row] = current
            previous_row = current
        result = image.astype(np.float64) / 255.0
        if channels == 1:
            return result[..., 0]
        return result

    def encode_complexity(self, shape):
        """Filtering + DEFLATE cost (cheap, CPU only)."""
        pixels = image_num_pixels(shape)
        return ComplexityProfile(macs=20.0 * pixels, uses_gpu=False)

    def decode_complexity(self, shape):
        """Inverse filtering cost."""
        pixels = image_num_pixels(shape)
        return ComplexityProfile(macs=20.0 * pixels, uses_gpu=False)
