"""Common codec interface used by every compressor in the reproduction.

A codec turns a float image in ``[0, 1]`` into a :class:`CompressedImage`
(payload bytes + metadata) and back.  Each codec also exposes a
:class:`ComplexityProfile` describing its computational cost, which the
edge/server testbed simulation (:mod:`repro.edge`) uses to estimate latency,
power and memory on a given device — this is how the paper's Fig. 1 / Fig. 6
hardware measurements are reproduced without the physical Jetson TX2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..image import image_num_pixels

__all__ = ["CompressedImage", "ComplexityProfile", "Codec", "RateDistortionPoint"]


@dataclass
class CompressedImage:
    """The output of :meth:`Codec.compress`.

    Attributes
    ----------
    payload:
        The encoded bitstream.
    original_shape:
        Shape of the image fed to the encoder (used for BPP accounting and
        decoding).
    codec_name:
        Name of the codec that produced the payload.
    metadata:
        Codec-specific side information needed to decode (kept small; its
        size is included in :attr:`num_bytes` when ``count_metadata=True``).
    extra_bytes:
        Size of side information that must travel with the payload but is
        not part of ``payload`` itself (e.g. the Easz erase mask).
    """

    payload: bytes
    original_shape: tuple
    codec_name: str = "unknown"
    metadata: dict = field(default_factory=dict)
    extra_bytes: int = 0

    @property
    def num_bytes(self):
        """Total transmitted size in bytes (payload + declared side info)."""
        return len(self.payload) + self.extra_bytes

    @property
    def num_bits(self):
        """Total transmitted size in bits."""
        return 8 * self.num_bytes

    def bpp(self, reference_shape=None):
        """Bits per pixel relative to ``reference_shape`` (default: original).

        The Easz pipeline computes BPP against the *original* (pre-erase)
        image so that file-saving from erasing is visible, exactly as the
        paper reports it.
        """
        shape = reference_shape if reference_shape is not None else self.original_shape
        return self.num_bits / image_num_pixels(shape)


@dataclass
class ComplexityProfile:
    """Computational footprint of one codec stage on one image.

    All quantities are per-image for the shape passed to
    :meth:`Codec.complexity`.  ``macs`` counts multiply–accumulate
    operations; ``model_bytes`` is the size of weights that must be resident
    in memory; ``working_memory_bytes`` approximates peak activation /
    buffer memory; ``uses_gpu`` marks stages the paper runs on the GPU.
    """

    macs: float
    model_bytes: float = 0.0
    working_memory_bytes: float = 0.0
    uses_gpu: bool = False

    def scaled(self, factor):
        """Return a copy with ``macs`` and working memory scaled by ``factor``."""
        return ComplexityProfile(
            macs=self.macs * factor,
            model_bytes=self.model_bytes,
            working_memory_bytes=self.working_memory_bytes * factor,
            uses_gpu=self.uses_gpu,
        )


@dataclass
class RateDistortionPoint:
    """One point on a rate/quality curve produced by the experiment harness."""

    bpp: float
    quality: float
    metric: str
    codec_name: str
    parameters: dict = field(default_factory=dict)


class Codec(ABC):
    """Abstract base class for image compressors.

    Sub-classes implement :meth:`compress` / :meth:`decompress` and describe
    their computational cost via :meth:`encode_complexity` /
    :meth:`decode_complexity`.
    """

    #: Human-readable codec name used in tables and figures.
    name = "codec"
    #: Whether the codec is a learned (neural) compressor.
    is_neural = False

    @abstractmethod
    def compress(self, image):
        """Encode a float image in ``[0, 1]`` into a :class:`CompressedImage`."""

    @abstractmethod
    def decompress(self, compressed):
        """Decode a :class:`CompressedImage` back into a float image."""

    def roundtrip(self, image):
        """Compress then decompress; returns ``(reconstruction, compressed)``."""
        compressed = self.compress(image)
        return self.decompress(compressed), compressed

    # -- complexity metadata (overridden by concrete codecs) ------------- #
    def encode_complexity(self, shape):
        """:class:`ComplexityProfile` of encoding an image of ``shape``."""
        pixels = image_num_pixels(shape)
        return ComplexityProfile(macs=50.0 * pixels)

    def decode_complexity(self, shape):
        """:class:`ComplexityProfile` of decoding an image of ``shape``."""
        pixels = image_num_pixels(shape)
        return ComplexityProfile(macs=50.0 * pixels)

    # -- conveniences ----------------------------------------------------- #
    def rate_distortion(self, image, metric_fn, metric_name="psnr"):
        """Compress/decompress ``image`` and score it with ``metric_fn``.

        Returns a :class:`RateDistortionPoint` — the unit the benchmark
        harness aggregates into the paper's rate/perception curves.
        """
        reconstruction, compressed = self.roundtrip(image)
        return RateDistortionPoint(
            bpp=compressed.bpp(),
            quality=float(metric_fn(np.asarray(image), np.asarray(reconstruction))),
            metric=metric_name,
            codec_name=self.name,
        )

    def __repr__(self):
        return f"{self.__class__.__name__}(name={self.name!r})"
