"""Baseline JPEG codec implemented from scratch.

The pipeline follows ITU-T T.81 baseline sequential mode:

1. RGB → YCbCr colour conversion and optional 4:2:0 chroma subsampling;
2. 8×8 block DCT (type-II, orthonormal);
3. quantisation with the standard Annex K tables scaled by an IJG-style
   quality factor;
4. zig-zag scan, differential DC coding, (run, size) AC coding;
5. Huffman entropy coding using the standard Annex K Huffman tables.

The container is a small custom header rather than JFIF (there is no need for
interchange with external decoders in this reproduction), but the entropy-coded
payload is true baseline JPEG coding, so bits-per-pixel numbers carry the same
rate/quality trade-off as libjpeg output.
"""

from __future__ import annotations

import numpy as np

from ..entropy.bitio import BitReader, BitWriter
from ..image import (
    ensure_color,
    image_num_pixels,
    is_color,
    pad_to_multiple,
    resize_bilinear,
    rgb_to_ycbcr,
    to_float,
    ycbcr_to_rgb,
)
from .base import Codec, ComplexityProfile, CompressedImage
from .jpeg_tables import (
    CHROMINANCE_QUANT_TABLE,
    INVERSE_ZIGZAG_ORDER,
    LUMINANCE_QUANT_TABLE,
    STANDARD_AC_CHROMINANCE,
    STANDARD_AC_LUMINANCE,
    STANDARD_DC_CHROMINANCE,
    STANDARD_DC_LUMINANCE,
    ZIGZAG_ORDER,
    quality_scaled_table,
)

__all__ = ["JpegCodec", "dct2", "idct2", "dct_matrix"]

_MAGIC = b"RJPG"
_EOB = 0x00
_ZRL = 0xF0


def dct_matrix(n=8):
    """Orthonormal type-II DCT matrix of size ``n×n``."""
    k = np.arange(n).reshape(-1, 1)
    m = np.arange(n).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * m + 1) * k / (2 * n))
    matrix[0, :] *= np.sqrt(1.0 / n)
    matrix[1:, :] *= np.sqrt(2.0 / n)
    return matrix


_DCT8 = dct_matrix(8)


def dct2(blocks):
    """2-D DCT of a batch of 8×8 blocks with shape ``(..., 8, 8)``."""
    return _DCT8 @ blocks @ _DCT8.T


def idct2(coefficients):
    """Inverse 2-D DCT of a batch of 8×8 coefficient blocks."""
    return _DCT8.T @ coefficients @ _DCT8


def _build_code_table(spec):
    """Build ``symbol -> (code, length)`` from a JPEG (BITS, HUFFVAL) spec."""
    bits, values = spec
    codes = {}
    code = 0
    index = 0
    for length_minus_one, count in enumerate(bits):
        length = length_minus_one + 1
        for _ in range(count):
            codes[values[index]] = (code, length)
            code += 1
            index += 1
        code <<= 1
    return codes


def _invert_code_table(codes):
    return {(length, code): symbol for symbol, (code, length) in codes.items()}


_DC_LUMA_CODES = _build_code_table(STANDARD_DC_LUMINANCE)
_DC_CHROMA_CODES = _build_code_table(STANDARD_DC_CHROMINANCE)
_AC_LUMA_CODES = _build_code_table(STANDARD_AC_LUMINANCE)
_AC_CHROMA_CODES = _build_code_table(STANDARD_AC_CHROMINANCE)
_DC_LUMA_DECODE = _invert_code_table(_DC_LUMA_CODES)
_DC_CHROMA_DECODE = _invert_code_table(_DC_CHROMA_CODES)
_AC_LUMA_DECODE = _invert_code_table(_AC_LUMA_CODES)
_AC_CHROMA_DECODE = _invert_code_table(_AC_CHROMA_CODES)


def _magnitude_category(value):
    """JPEG size category: number of bits needed for |value|."""
    return int(abs(int(value))).bit_length()


def _magnitude_bits(value, size):
    """Amplitude bits for ``value`` within its size category."""
    value = int(value)
    if value >= 0:
        return value
    return value + (1 << size) - 1


def _magnitude_from_bits(bits, size):
    """Inverse of :func:`_magnitude_bits`."""
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


def _write_code(writer, codes, symbol):
    code, length = codes[symbol]
    writer.write_bits(code, length)


def _read_code(reader, decode_table):
    code = 0
    length = 0
    while True:
        code = (code << 1) | reader.read_bit()
        length += 1
        if (length, code) in decode_table:
            return decode_table[(length, code)]
        if length > 16:
            raise ValueError("corrupt JPEG stream: Huffman code longer than 16 bits")


def _image_to_blocks(channel):
    """Split a 2-D channel (multiple of 8 in both dims) into 8×8 blocks."""
    height, width = channel.shape
    blocks = channel.reshape(height // 8, 8, width // 8, 8).transpose(0, 2, 1, 3)
    return blocks.reshape(-1, 8, 8)


def _blocks_to_image(blocks, height, width):
    """Reassemble 8×8 blocks into a 2-D channel of ``height × width``."""
    grid = blocks.reshape(height // 8, width // 8, 8, 8).transpose(0, 2, 1, 3)
    return grid.reshape(height, width)


class JpegCodec(Codec):
    """Baseline JPEG encoder/decoder.

    Parameters
    ----------
    quality:
        IJG quality factor in ``[1, 100]``; higher is better quality / more
        bits.
    subsample_chroma:
        Apply 4:2:0 chroma subsampling (standard for photographic content).
    """

    is_neural = False

    def __init__(self, quality=75, subsample_chroma=True):
        self.quality = int(quality)
        self.subsample_chroma = bool(subsample_chroma)
        self.name = f"jpeg-q{self.quality}"
        self._luma_table = quality_scaled_table(LUMINANCE_QUANT_TABLE, self.quality)
        self._chroma_table = quality_scaled_table(CHROMINANCE_QUANT_TABLE, self.quality)

    # ------------------------------------------------------------------ #
    # channel-level coding
    # ------------------------------------------------------------------ #
    def _quantise_channel(self, channel, table):
        padded, original_shape = pad_to_multiple(channel, 8)
        blocks = _image_to_blocks(padded * 255.0 - 128.0)
        coefficients = dct2(blocks)
        quantised = np.round(coefficients / table).astype(np.int32)
        return quantised, padded.shape, original_shape

    def _dequantise_channel(self, quantised, table, padded_shape, original_shape):
        coefficients = quantised.astype(np.float64) * table
        blocks = idct2(coefficients)
        channel = _blocks_to_image(blocks, padded_shape[0], padded_shape[1])
        channel = (channel + 128.0) / 255.0
        return np.clip(channel[: original_shape[0], : original_shape[1]], 0.0, 1.0)

    def _encode_channel(self, writer, quantised, dc_codes, ac_codes):
        zigzagged = quantised.reshape(-1, 64)[:, ZIGZAG_ORDER]
        previous_dc = 0
        for block in zigzagged:
            dc = int(block[0])
            diff = dc - previous_dc
            previous_dc = dc
            size = _magnitude_category(diff)
            _write_code(writer, dc_codes, size)
            if size:
                writer.write_bits(_magnitude_bits(diff, size), size)
            run = 0
            last_nonzero = np.nonzero(block[1:])[0]
            last_index = last_nonzero[-1] + 1 if last_nonzero.size else 0
            for index in range(1, last_index + 1):
                value = int(block[index])
                if value == 0:
                    run += 1
                    continue
                while run > 15:
                    _write_code(writer, ac_codes, _ZRL)
                    run -= 16
                size = _magnitude_category(value)
                _write_code(writer, ac_codes, (run << 4) | size)
                writer.write_bits(_magnitude_bits(value, size), size)
                run = 0
            if last_index < 63:
                _write_code(writer, ac_codes, _EOB)

    def _decode_channel(self, reader, num_blocks, dc_decode, ac_decode):
        blocks = np.zeros((num_blocks, 64), dtype=np.int32)
        previous_dc = 0
        for block_index in range(num_blocks):
            size = _read_code(reader, dc_decode)
            diff = _magnitude_from_bits(reader.read_bits(size), size) if size else 0
            previous_dc += diff
            blocks[block_index, 0] = previous_dc
            index = 1
            while index < 64:
                symbol = _read_code(reader, ac_decode)
                if symbol == _EOB:
                    break
                if symbol == _ZRL:
                    index += 16
                    continue
                run = symbol >> 4
                size = symbol & 0x0F
                index += run
                if index >= 64:
                    raise ValueError("corrupt JPEG stream: AC index out of range")
                blocks[block_index, index] = _magnitude_from_bits(reader.read_bits(size), size)
                index += 1
        out = np.zeros((num_blocks, 64), dtype=np.int32)
        out[:, ZIGZAG_ORDER] = blocks
        return out.reshape(num_blocks, 8, 8)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def compress(self, image):
        """Encode a float image (grayscale or RGB) into a JPEG bitstream."""
        image = to_float(image)
        color = is_color(image)
        if color:
            ycbcr = rgb_to_ycbcr(image)
            channels = [ycbcr[..., 0], ycbcr[..., 1], ycbcr[..., 2]]
        else:
            channels = [image]

        writer = BitWriter()
        channel_meta = []
        for channel_index, channel in enumerate(channels):
            is_luma = channel_index == 0
            if not is_luma and self.subsample_chroma:
                new_h = max(1, channel.shape[0] // 2)
                new_w = max(1, channel.shape[1] // 2)
                channel = resize_bilinear(channel, new_h, new_w)
            table = self._luma_table if is_luma else self._chroma_table
            quantised, padded_shape, original_shape = self._quantise_channel(channel, table)
            dc_codes = _DC_LUMA_CODES if is_luma else _DC_CHROMA_CODES
            ac_codes = _AC_LUMA_CODES if is_luma else _AC_CHROMA_CODES
            self._encode_channel(writer, quantised, dc_codes, ac_codes)
            channel_meta.append({
                "padded_shape": padded_shape,
                "original_shape": (original_shape[0], original_shape[1]),
                "num_blocks": quantised.shape[0],
                "is_luma": is_luma,
            })

        header = bytearray()
        header += _MAGIC
        header += int(image.shape[0]).to_bytes(2, "big")
        header += int(image.shape[1]).to_bytes(2, "big")
        header.append(3 if color else 1)
        header.append(self.quality)
        header.append(1 if self.subsample_chroma else 0)
        payload = bytes(header) + writer.getvalue()
        return CompressedImage(
            payload=payload,
            original_shape=image.shape,
            codec_name=self.name,
            metadata={"channels": channel_meta, "color": color},
        )

    def decompress(self, compressed):
        """Decode a bitstream produced by :meth:`compress`."""
        payload = compressed.payload
        if payload[:4] != _MAGIC:
            raise ValueError("not a repro-JPEG payload")
        height = int.from_bytes(payload[4:6], "big")
        width = int.from_bytes(payload[6:8], "big")
        num_channels = payload[8]
        reader = BitReader(payload[11:])
        channels = []
        for meta in compressed.metadata["channels"]:
            is_luma = meta["is_luma"]
            table = self._luma_table if is_luma else self._chroma_table
            dc_decode = _DC_LUMA_DECODE if is_luma else _DC_CHROMA_DECODE
            ac_decode = _AC_LUMA_DECODE if is_luma else _AC_CHROMA_DECODE
            quantised = self._decode_channel(reader, meta["num_blocks"], dc_decode, ac_decode)
            channel = self._dequantise_channel(
                quantised, table, meta["padded_shape"], meta["original_shape"]
            )
            if channel.shape != (height, width):
                channel = resize_bilinear(channel, height, width)
            channels.append(channel)
        if num_channels == 1:
            return channels[0]
        ycbcr = np.stack(channels, axis=-1)
        return ycbcr_to_rgb(ycbcr)

    # ------------------------------------------------------------------ #
    # complexity model (per-pixel MAC estimates for the testbed simulator)
    # ------------------------------------------------------------------ #
    def encode_complexity(self, shape):
        """DCT + quantisation + entropy coding cost (CPU only, no model)."""
        pixels = image_num_pixels(shape)
        channels = 3 if len(shape) == 3 else 1
        # 2x 8-point DCT per pixel (~16 MACs) + quant + entropy ≈ 40 MACs/px.
        macs = 40.0 * pixels * (2.0 if channels == 3 and self.subsample_chroma else channels)
        return ComplexityProfile(macs=macs, model_bytes=0.0,
                                 working_memory_bytes=8.0 * pixels * channels,
                                 uses_gpu=False)

    def decode_complexity(self, shape):
        """Inverse DCT + dequantisation cost (mirror of encoding)."""
        return self.encode_complexity(shape)
