"""Baseline JPEG codec implemented from scratch.

The pipeline follows ITU-T T.81 baseline sequential mode:

1. RGB → YCbCr colour conversion and optional 4:2:0 chroma subsampling;
2. 8×8 block DCT (type-II, orthonormal);
3. quantisation with the standard Annex K tables scaled by an IJG-style
   quality factor;
4. zig-zag scan, differential DC coding, (run, size) AC coding;
5. Huffman entropy coding using the standard Annex K Huffman tables.

The container is a small custom header rather than JFIF (there is no need for
interchange with external decoders in this reproduction), but the entropy-coded
payload is true baseline JPEG coding, so bits-per-pixel numbers carry the same
rate/quality trade-off as libjpeg output.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..entropy.bitio import BitReader, BitWriter
from ..image import (
    image_num_pixels,
    is_color,
    pad_to_multiple,
    resize_bilinear,
    rgb_to_ycbcr,
    to_float,
    ycbcr_to_rgb,
)
from .base import Codec, ComplexityProfile, CompressedImage
from .jpeg_tables import (
    CHROMINANCE_QUANT_TABLE,
    LUMINANCE_QUANT_TABLE,
    STANDARD_AC_CHROMINANCE,
    STANDARD_AC_LUMINANCE,
    STANDARD_DC_CHROMINANCE,
    STANDARD_DC_LUMINANCE,
    ZIGZAG_ORDER,
    quality_scaled_table,
)

__all__ = ["JpegCodec", "dct2", "idct2", "dct2_batched", "idct2_batched",
           "dct_matrix", "set_dct_threads"]

_MAGIC = b"RJPG"
_EOB = 0x00
_ZRL = 0xF0


def dct_matrix(n=8):
    """Orthonormal type-II DCT matrix of size ``n×n``."""
    k = np.arange(n).reshape(-1, 1)
    m = np.arange(n).reshape(1, -1)
    matrix = np.cos(np.pi * (2 * m + 1) * k / (2 * n))
    matrix[0, :] *= np.sqrt(1.0 / n)
    matrix[1:, :] *= np.sqrt(2.0 / n)
    return matrix


_DCT8 = dct_matrix(8)
# Separable 2-D DCT as one 64x64 operator: out_flat = in_flat @ _KRON.T and
# idct_flat = coeff_flat @ _KRON, because kron(D, D).T == kron(D.T, D.T).
_KRON = np.kron(_DCT8, _DCT8)
_KRON_T = np.ascontiguousarray(_KRON.T)

# Opt-in thread pool for very large batched DCT calls (>~1 megapixel of
# blocks).  Off by default: numpy's GEMM is already the fastest option on a
# single core, and tier-1 must not spawn threads behind the caller's back.
_DCT_THREADS = 1
_DCT_POOL = None  # (executor, num_threads, owning pid)
_DCT_POOL_LOCK = threading.Lock()
_DCT_MT_MIN_BLOCKS = 16384  # 16384 blocks == 1 MiP of 8x8 pixels


def set_dct_threads(num_threads):
    """Size the opt-in DCT thread pool (1 disables it; returns the old value).

    With ``num_threads > 1``, :func:`dct2_batched` / :func:`idct2_batched`
    split batches of at least ``16384`` blocks (one megapixel) across a
    shared thread pool — worth it for >1MP single-image calls on multi-core
    hosts, a wash on one core.  The GEMM is row-partitioned so results are
    unchanged.
    """
    global _DCT_THREADS, _DCT_POOL
    num_threads = int(num_threads)
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    previous = _DCT_THREADS
    _DCT_THREADS = num_threads
    if num_threads == 1:
        with _DCT_POOL_LOCK:
            # drop the reference only: idle ThreadPoolExecutor workers exit
            # on their own once the executor is collected, and an explicit
            # shutdown here could race another thread's in-flight map()
            _DCT_POOL = None
    return previous


def _dct_pool(num_threads):
    """The shared executor, recreated on resize and never shared across
    ``fork`` (a child would inherit worker threads that do not exist)."""
    global _DCT_POOL
    with _DCT_POOL_LOCK:
        pool = _DCT_POOL
        if (pool is not None and pool[1] == num_threads
                and pool[2] == os.getpid()):
            return pool[0]
        from concurrent.futures import ThreadPoolExecutor

        executor = ThreadPoolExecutor(max_workers=num_threads,
                                      thread_name_prefix="repro-dct")
        _DCT_POOL = (executor, num_threads, os.getpid())
        return executor


def _gemm_blocks(blocks, operator):
    """Apply a 64×64 flat-DCT operator to ``(N, 8, 8)`` blocks as one GEMM."""
    count = blocks.shape[0]
    flat = np.ascontiguousarray(blocks).reshape(count, 64)
    num_threads = _DCT_THREADS
    if num_threads > 1 and count >= _DCT_MT_MIN_BLOCKS:
        executor = _dct_pool(num_threads)
        chunks = np.array_split(flat, num_threads)
        parts = list(executor.map(lambda chunk: chunk @ operator, chunks))
        return np.concatenate(parts).reshape(count, 8, 8)
    return (flat @ operator).reshape(count, 8, 8)


def dct2(blocks):
    """2-D DCT of a batch of 8×8 blocks with shape ``(..., 8, 8)``.

    The broadcast-matmul form; right for single blocks and small batches
    (the BPG per-block loop).  Large batches go through
    :func:`dct2_batched`.
    """
    return _DCT8 @ blocks @ _DCT8.T


def idct2(coefficients):
    """Inverse 2-D DCT of a batch of 8×8 coefficient blocks."""
    return _DCT8.T @ coefficients @ _DCT8


def dct2_batched(blocks):
    """2-D DCT of ``(N, 8, 8)`` blocks as one ``(N, 64) @ (64, 64)`` GEMM.

    One BLAS call over the whole batch instead of 2N broadcast 8×8 matmuls —
    ~2.5x faster at the block counts a 256² channel produces, and the entry
    point the JPEG pipeline feeds with *all* channels of *all* images of a
    micro-batch at once.  Numerics are the standard orthonormal DCT (the
    64×64 operator is the Kronecker square of the 8-point basis); summation
    order differs from :func:`dct2` by at most ~1e-13 on pixel-scale inputs.
    """
    return _gemm_blocks(blocks, _KRON_T)


def idct2_batched(coefficients):
    """Inverse of :func:`dct2_batched` (same single-GEMM formulation)."""
    return _gemm_blocks(coefficients, _KRON)


def _build_code_table(spec):
    """Build ``symbol -> (code, length)`` from a JPEG (BITS, HUFFVAL) spec."""
    bits, values = spec
    codes = {}
    code = 0
    index = 0
    for length_minus_one, count in enumerate(bits):
        length = length_minus_one + 1
        for _ in range(count):
            codes[values[index]] = (code, length)
            code += 1
            index += 1
        code <<= 1
    return codes


def _code_arrays(codes):
    """Table-driven encoder view: ``(code, length)`` arrays indexed by symbol."""
    code_arr = np.zeros(256, dtype=np.int64)
    len_arr = np.zeros(256, dtype=np.int64)
    for symbol, (code, length) in codes.items():
        code_arr[symbol] = code
        len_arr[symbol] = length
    return code_arr, len_arr


def _decode_lut(codes):
    """LUT-based decoder view: 16-bit window -> (symbol, code length).

    Every Huffman code is at most 16 bits, so the next 16 bits of the stream
    identify the symbol outright: code ``c`` of length ``l`` owns the window
    range ``[c << (16-l), (c+1) << (16-l))``.  Windows outside every range
    have length 0, which the decoder reports as stream corruption.  Plain
    Python lists index ~3x faster than numpy scalars in the decode loop.
    """
    symbols = np.zeros(1 << 16, dtype=np.int64)
    lengths = np.zeros(1 << 16, dtype=np.int64)
    for symbol, (code, length) in codes.items():
        lo = code << (16 - length)
        hi = (code + 1) << (16 - length)
        symbols[lo:hi] = symbol
        lengths[lo:hi] = length
    return symbols.tolist(), lengths.tolist()  # lint: allow RP004 - one-time LUT build; scan loop consumes python lists


def _ac_decode_lut(codes):
    """Fused AC decoder view: per 16-bit window, everything pass 1 needs.

    On top of the ``(symbol, code length)`` LUT the scan loop wants the
    decomposed ``(run, size)`` fields and the fused ``step`` (code length +
    amplitude size) so one window fetch advances the bit cursor past the whole
    token.  ``step`` is 0 for invalid windows, which doubles as the
    corruption check.
    """
    symbols, lengths = _decode_lut(codes)
    sym = np.asarray(symbols, dtype=np.int64)
    length = np.asarray(lengths, dtype=np.int64)
    size = sym & 15
    run = sym >> 4
    step = np.where(length > 0, length + size, 0)
    return (symbols, lengths, size.tolist(), run.tolist(), step.tolist())  # lint: allow RP004 - one-time LUT build


_DC_LUMA_CODES = _build_code_table(STANDARD_DC_LUMINANCE)
_DC_CHROMA_CODES = _build_code_table(STANDARD_DC_CHROMINANCE)
_AC_LUMA_CODES = _build_code_table(STANDARD_AC_LUMINANCE)
_AC_CHROMA_CODES = _build_code_table(STANDARD_AC_CHROMINANCE)
_DC_LUMA_ENCODE = _code_arrays(_DC_LUMA_CODES)
_DC_CHROMA_ENCODE = _code_arrays(_DC_CHROMA_CODES)
_AC_LUMA_ENCODE = _code_arrays(_AC_LUMA_CODES)
_AC_CHROMA_ENCODE = _code_arrays(_AC_CHROMA_CODES)
_DC_LUMA_DECODE = _decode_lut(_DC_LUMA_CODES)
_DC_CHROMA_DECODE = _decode_lut(_DC_CHROMA_CODES)
_AC_LUMA_DECODE = _ac_decode_lut(_AC_LUMA_CODES)
_AC_CHROMA_DECODE = _ac_decode_lut(_AC_CHROMA_CODES)


def _magnitude_category(value):
    """JPEG size category: number of bits needed for |value|."""
    return int(abs(int(value))).bit_length()


def _magnitude_categories(values):
    """Vectorized :func:`_magnitude_category` (exact for |v| < 2**53)."""
    _, exponents = np.frexp(np.abs(values).astype(np.float64))
    return exponents.astype(np.int64)


def _magnitude_bits(value, size):
    """Amplitude bits for ``value`` within its size category."""
    value = int(value)
    if value >= 0:
        return value
    return value + (1 << size) - 1


def _magnitude_from_bits(bits, size):
    """Inverse of :func:`_magnitude_bits`."""
    if size == 0:
        return 0
    if bits >> (size - 1):
        return bits
    return bits - (1 << size) + 1


def _image_to_blocks(channel):
    """Split a 2-D channel (multiple of 8 in both dims) into 8×8 blocks."""
    height, width = channel.shape
    blocks = channel.reshape(height // 8, 8, width // 8, 8).transpose(0, 2, 1, 3)
    return blocks.reshape(-1, 8, 8)


def _blocks_to_image(blocks, height, width):
    """Reassemble 8×8 blocks into a 2-D channel of ``height × width``."""
    grid = blocks.reshape(height // 8, width // 8, 8, 8).transpose(0, 2, 1, 3)
    return grid.reshape(height, width)


class JpegCodec(Codec):
    """Baseline JPEG encoder/decoder.

    Parameters
    ----------
    quality:
        IJG quality factor in ``[1, 100]``; higher is better quality / more
        bits.
    subsample_chroma:
        Apply 4:2:0 chroma subsampling (standard for photographic content).
    """

    is_neural = False

    def __init__(self, quality=75, subsample_chroma=True):
        self.quality = int(quality)
        self.subsample_chroma = bool(subsample_chroma)
        self.name = f"jpeg-q{self.quality}"
        self._luma_table = quality_scaled_table(LUMINANCE_QUANT_TABLE, self.quality)
        self._chroma_table = quality_scaled_table(CHROMINANCE_QUANT_TABLE, self.quality)

    # ------------------------------------------------------------------ #
    # channel-level coding
    # ------------------------------------------------------------------ #
    def _channel_entries(self, image, color, block_plan=None):
        """Pre-DCT blocks plus geometry for every channel of one image.

        With ``block_plan`` (a :class:`repro.core.erase_squeeze.
        BlockGatherPlan`) grayscale blocks are gathered straight from the
        *original* pixels — the squeezed image is never materialised, padded
        or re-blocked.  Colour images gather the squeezed RGB rows in one
        ``np.take`` (several times cheaper than the reshape/transpose
        squeeze) and then run the classic pipeline on it: the colour
        conversion and the chroma resample need the materialised squeezed
        frame anyway, and converting before squeezing would waste the
        conversion on every erased pixel.  Without a plan this is the
        classic pad→scale→block pipeline on an already-squeezed (or plain)
        image.  All paths are bit-identical.
        """
        if block_plan is not None and color:
            image = block_plan.squeeze_pixels(image)
            block_plan = None
        if color:
            ycbcr = rgb_to_ycbcr(image)
            raw_channels = [ycbcr[..., 0], ycbcr[..., 1], ycbcr[..., 2]]
        else:
            raw_channels = [image]
        entries = []
        for channel_index, channel in enumerate(raw_channels):
            is_luma = channel_index == 0
            if not is_luma and self.subsample_chroma:
                channel = resize_bilinear(channel, max(1, channel.shape[0] // 2),
                                          max(1, channel.shape[1] // 2))
            if block_plan is not None:
                blocks = block_plan.gather_blocks(channel) * 255.0 - 128.0
                padded_shape = tuple(block_plan.padded_squeezed_shape)
                original_shape = tuple(block_plan.squeezed_shape)
            else:
                padded, original_shape = pad_to_multiple(channel, 8)
                blocks = _image_to_blocks(padded * 255.0 - 128.0)
                padded_shape = padded.shape
                original_shape = (original_shape[0], original_shape[1])
            entries.append({"blocks": blocks, "padded_shape": padded_shape,
                            "original_shape": original_shape, "is_luma": is_luma})
        return entries

    def _package_entries(self, entries, image_shape, color):
        """One batched DCT over every channel's blocks, then entropy-code."""
        all_blocks = np.concatenate([entry["blocks"] for entry in entries])
        coefficients = dct2_batched(all_blocks)
        writer = BitWriter()
        channel_meta = []
        offset = 0
        for entry in entries:
            count = entry["blocks"].shape[0]
            is_luma = entry["is_luma"]
            table = self._luma_table if is_luma else self._chroma_table
            quantised = np.round(
                coefficients[offset:offset + count] / table).astype(np.int32)
            offset += count
            dc_encode = _DC_LUMA_ENCODE if is_luma else _DC_CHROMA_ENCODE
            ac_encode = _AC_LUMA_ENCODE if is_luma else _AC_CHROMA_ENCODE
            self._encode_channel(writer, quantised, dc_encode, ac_encode)
            channel_meta.append({
                "padded_shape": entry["padded_shape"],
                "original_shape": entry["original_shape"],
                "num_blocks": count,
                "is_luma": is_luma,
            })
        header = bytearray()
        header += _MAGIC
        header += int(image_shape[0]).to_bytes(2, "big")
        header += int(image_shape[1]).to_bytes(2, "big")
        header.append(3 if color else 1)
        header.append(self.quality)
        header.append(1 if self.subsample_chroma else 0)
        payload = bytes(header) + writer.getvalue()
        return CompressedImage(
            payload=payload,
            original_shape=tuple(image_shape),
            codec_name=self.name,
            metadata={"channels": channel_meta, "color": color},
        )

    def _encode_channel(self, writer, quantised, dc_encode, ac_encode):
        """Table-driven entropy encode: the whole channel's symbol stream is
        computed with vectorized numpy (zig-zag, DC differences, AC run
        lengths, size categories, amplitude bits), interleaved by a stable
        sort on (block, zig-zag slot) keys, and packed in one
        :meth:`BitWriter.write_tokens` call — no per-block Python loop.

        Every token fuses a Huffman code with its amplitude bits: DC tokens
        are at most 16+11 bits, AC tokens at most 16+10, so each fits a
        single ``(value, length)`` pair.
        """
        dc_code, dc_len = dc_encode
        ac_code, ac_len = ac_encode
        zigzagged = quantised.reshape(-1, 64)[:, ZIGZAG_ORDER].astype(np.int64)
        num_blocks = zigzagged.shape[0]
        # per-block slot keys: DC = 0, AC at zig-zag index p = 4p (preceded by
        # its ZRLs at 4p-1), EOB = 511; 512 slots per block keeps keys unique
        block_base = np.arange(num_blocks, dtype=np.int64) * 512

        # --- DC: differential code ------------------------------------ #
        diffs = np.diff(zigzagged[:, 0], prepend=0)
        dc_size = _magnitude_categories(diffs)
        dc_amp = np.where(diffs >= 0, diffs, diffs + (1 << dc_size) - 1)
        dc_values = (dc_code[dc_size] << dc_size) | (dc_amp & ((1 << dc_size) - 1))
        dc_lengths = dc_len[dc_size] + dc_size
        dc_keys = block_base

        # --- AC: (run, size) coding over the nonzero coefficients ------ #
        ac = zigzagged[:, 1:]
        nz_block, nz_pos = np.nonzero(ac)
        values = ac[nz_block, nz_pos]
        prev_pos = np.empty_like(nz_pos)
        prev_pos[1:] = nz_pos[:-1]
        first = np.ones(nz_block.size, dtype=bool)
        first[1:] = nz_block[1:] != nz_block[:-1]
        prev_pos[first] = -1
        run = nz_pos - prev_pos - 1
        num_zrl = run >> 4  # a run of 16+ zeros is split into ZRL symbols
        ac_size = _magnitude_categories(values)
        amp = np.where(values >= 0, values, values + (1 << ac_size) - 1)
        symbol = ((run & 15) << 4) | ac_size
        ac_values = (ac_code[symbol] << ac_size) | (amp & ((1 << ac_size) - 1))
        ac_lengths = ac_len[symbol] + ac_size
        ac_keys = nz_block * 512 + (nz_pos + 1) * 4

        zrl_owner = np.repeat(np.arange(nz_block.size), num_zrl)
        zrl_values = np.full(zrl_owner.size, ac_code[_ZRL], dtype=np.int64)
        zrl_lengths = np.full(zrl_owner.size, ac_len[_ZRL], dtype=np.int64)
        zrl_keys = ac_keys[zrl_owner] - 1

        # --- EOB for blocks whose last nonzero is before zig-zag 63 ---- #
        last_in_block = np.ones(nz_block.size, dtype=bool)
        last_in_block[:-1] = nz_block[1:] != nz_block[:-1]
        last_pos = np.full(num_blocks, -1, dtype=np.int64)
        last_pos[nz_block[last_in_block]] = nz_pos[last_in_block]
        eob_blocks = np.flatnonzero(last_pos < 62)
        eob_values = np.full(eob_blocks.size, ac_code[_EOB], dtype=np.int64)
        eob_lengths = np.full(eob_blocks.size, ac_len[_EOB], dtype=np.int64)
        eob_keys = eob_blocks * 512 + 511

        keys = np.concatenate([dc_keys, zrl_keys, ac_keys, eob_keys])
        token_values = np.concatenate([dc_values, zrl_values, ac_values, eob_values])
        token_lengths = np.concatenate([dc_lengths, zrl_lengths, ac_lengths, eob_lengths])
        order = np.argsort(keys, kind="stable")
        writer.write_tokens(token_values[order], token_lengths[order])

    def _decode_channel(self, reader, num_blocks, dc_decode, ac_decode):
        """Two-pass vectorized entropy decode.

        Pass 1 is a minimal sequential scan (the bit position of symbol
        ``k+1`` depends on symbol ``k``, so this part cannot be parallelised):
        each 16-bit window fetch resolves a whole Huffman token via the fused
        LUTs — code length, (run, size) and the combined bit step — and the
        loop only records *where* each amplitude field lives and *which*
        zig-zag slot it fills.  No numeric decoding happens per symbol.

        Pass 2 recovers all coefficient values with bulk numpy: one gather
        from the reader's 32-bit word array extracts every amplitude field,
        one ``where`` applies the sign convention, one ``cumsum`` undoes the
        differential DC coding, and one fancy-index scatter (plus the inverse
        zig-zag) builds the coefficient blocks.
        """
        dc_symbols, dc_lengths = dc_decode
        ac_symbols, ac_lengths, ac_sizes, ac_runs, ac_steps = ac_decode
        words, total_bits = reader.as_words32()
        pos = reader.position
        dc_positions = []
        dc_size_list = []
        ac_positions = []
        ac_size_list = []
        ac_slots = []
        dc_pos_append = dc_positions.append
        dc_size_append = dc_size_list.append
        ac_pos_append = ac_positions.append
        ac_size_append = ac_size_list.append
        ac_slot_append = ac_slots.append
        for block_index in range(num_blocks):
            if pos > total_bits:
                raise ValueError("corrupt JPEG stream: out of data")
            window = (words[pos >> 3] >> (16 - (pos & 7))) & 0xFFFF
            length = dc_lengths[window]
            if length == 0:
                raise ValueError("corrupt JPEG stream: invalid Huffman code")
            dc_pos_append(pos + length)
            dc_size_append(dc_symbols[window])
            pos += length + dc_symbols[window]
            index = 1
            base = block_index << 6
            while index < 64:
                if pos > total_bits:
                    raise ValueError("corrupt JPEG stream: out of data")
                window = (words[pos >> 3] >> (16 - (pos & 7))) & 0xFFFF
                step = ac_steps[window]
                if step == 0:
                    raise ValueError("corrupt JPEG stream: invalid Huffman code")
                size = ac_sizes[window]
                if size:
                    index += ac_runs[window]
                    if index >= 64:
                        raise ValueError("corrupt JPEG stream: AC index out of range")
                    ac_pos_append(pos + ac_lengths[window])
                    ac_size_append(size)
                    ac_slot_append(base + index)
                    index += 1
                    pos += step
                else:
                    pos += step
                    if ac_symbols[window] == _EOB:
                        break
                    index += 16  # ZRL
        reader.skip_bits(pos - reader.position)

        word_array = reader.as_word_array()
        one = np.int64(1)
        flat = np.zeros(num_blocks * 64, dtype=np.int64)
        dc_pos = np.asarray(dc_positions, dtype=np.int64)
        dc_size = np.asarray(dc_size_list, dtype=np.int64)
        amp = (word_array[dc_pos >> 3] >> (32 - dc_size - (dc_pos & 7))) & ((one << dc_size) - 1)
        negative = (amp >> np.maximum(dc_size - 1, 0)) == 0
        diffs = np.where(negative, amp - (one << dc_size) + 1, amp)
        flat[0::64] = np.cumsum(diffs)
        if ac_positions:
            ac_pos = np.asarray(ac_positions, dtype=np.int64)
            ac_size = np.asarray(ac_size_list, dtype=np.int64)
            amp = (word_array[ac_pos >> 3] >> (32 - ac_size - (ac_pos & 7))) & ((one << ac_size) - 1)
            values = np.where((amp >> (ac_size - 1)) > 0, amp, amp - (one << ac_size) + 1)
            flat[np.asarray(ac_slots, dtype=np.int64)] = values
        out = np.zeros((num_blocks, 64), dtype=np.int32)
        out[:, ZIGZAG_ORDER] = flat.reshape(num_blocks, 64)
        return out.reshape(num_blocks, 8, 8)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    supports_fused_squeeze = True

    def compress(self, image):
        """Encode a float image (grayscale or RGB) into a JPEG bitstream."""
        image = to_float(image)
        color = is_color(image)
        entries = self._channel_entries(image, color)
        return self._package_entries(entries, image.shape, color)

    def compress_squeezed(self, image, plan):
        """Squeeze-fused encode: compress ``plan.squeeze_image(image)[0]``
        through the plan's precomputed gather indices.

        Erased sub-patches are dropped at the gather, so they are never
        converted, padded, blocked or DCT'd; grayscale images go straight
        from original pixels to DCT-ready blocks without materialising the
        squeezed frame at all (colour materialises it with one cheap
        row-gather — see :meth:`_channel_entries`).  The payload, metadata
        and header are bit-identical to
        ``compress(plan.squeeze_image(image)[0])``.

        Returns ``(compressed, grid_shape, squeezed_shape)`` — the extra
        geometry the erase-and-squeeze container needs.
        """
        image = to_float(image)
        color = is_color(image)
        block_plan = plan.block_plan(image.shape[:2], block=8)
        entries = self._channel_entries(image, color, block_plan=block_plan)
        squeezed_shape = tuple(block_plan.squeezed_shape) + ((3,) if color else ())
        compressed = self._package_entries(entries, squeezed_shape, color)
        return compressed, block_plan.grid_shape, squeezed_shape

    def _entropy_decode(self, compressed):
        """Sequential half of decoding: Huffman streams → quantised blocks."""
        payload = compressed.payload
        if payload[:4] != _MAGIC:
            raise ValueError("not a repro-JPEG payload")
        reader = BitReader(payload[11:])
        channels = []
        for meta in compressed.metadata["channels"]:
            is_luma = meta["is_luma"]
            dc_decode = _DC_LUMA_DECODE if is_luma else _DC_CHROMA_DECODE
            ac_decode = _AC_LUMA_DECODE if is_luma else _AC_CHROMA_DECODE
            quantised = self._decode_channel(reader, meta["num_blocks"],
                                             dc_decode, ac_decode)
            channels.append((quantised, meta))
        return {
            "channels": channels,
            "height": int.from_bytes(payload[4:6], "big"),
            "width": int.from_bytes(payload[6:8], "big"),
            "num_channels": payload[8],
        }

    def _channel_coefficients(self, state):
        """Dequantised DCT coefficients per channel of one decode state."""
        return [quantised.astype(np.float64)
                * (self._luma_table if meta["is_luma"] else self._chroma_table)
                for quantised, meta in state["channels"]]

    def _assemble(self, state, blocks_per_channel):
        """Bulk half of decoding: IDCT'd blocks → assembled image."""
        height, width = state["height"], state["width"]
        channels = []
        for (_, meta), blocks in zip(state["channels"], blocks_per_channel):
            channel = _blocks_to_image(blocks, meta["padded_shape"][0],
                                       meta["padded_shape"][1])
            channel = (channel + 128.0) / 255.0
            channel = np.clip(
                channel[: meta["original_shape"][0], : meta["original_shape"][1]],
                0.0, 1.0)
            if channel.shape != (height, width):
                channel = resize_bilinear(channel, height, width)
            channels.append(channel)
        if state["num_channels"] == 1:
            return channels[0]
        return ycbcr_to_rgb(np.stack(channels, axis=-1))

    @staticmethod
    def _idct_states(states):
        """One fused IDCT over every channel of every decode state.

        Returns, per state, the list of per-channel ``(N, 8, 8)`` pixel
        blocks.  This is the batched entry point the serving worker drives
        with a whole micro-batch: all block counts are concatenated into a
        single GEMM.
        """
        arrays = []
        for state, codec in states:
            arrays.extend(codec._channel_coefficients(state))
        if not arrays:
            return []
        blocks = idct2_batched(np.concatenate(arrays))
        split_points = np.cumsum([a.shape[0] for a in arrays])[:-1]
        parts = np.split(blocks, split_points)
        grouped = []
        cursor = 0
        for state, _ in states:
            count = len(state["channels"])
            grouped.append(parts[cursor:cursor + count])
            cursor += count
        return grouped

    def decompress(self, compressed):
        """Decode a bitstream produced by :meth:`compress`."""
        state = self._entropy_decode(compressed)
        blocks = self._idct_states([(state, self)])[0]
        return self._assemble(state, blocks)

    def decompress_many(self, compressed_list, on_error="raise"):
        """Decode several payloads with one fused IDCT across the batch.

        Entropy decoding stays per-payload (the streams are sequential by
        nature, and with ``on_error="collect"`` a corrupt payload yields its
        exception in the result list instead of failing the batch); the
        IDCT — the bulk numeric cost — runs as a single GEMM over every
        block of every surviving payload.
        """
        if on_error not in ("raise", "collect"):
            raise ValueError("on_error must be 'raise' or 'collect'")
        states = [None] * len(compressed_list)
        results = [None] * len(compressed_list)
        for index, compressed in enumerate(compressed_list):
            try:
                states[index] = self._entropy_decode(compressed)
            except Exception as error:  # noqa: BLE001 - isolate per payload
                if on_error == "raise":
                    raise
                results[index] = error
        alive = [(state, self) for state in states if state is not None]
        grouped = self._idct_states(alive)
        cursor = 0
        for index, state in enumerate(states):
            if state is None:
                continue
            try:
                results[index] = self._assemble(state, grouped[cursor])
            except Exception as error:  # noqa: BLE001 - isolate per payload
                if on_error == "raise":
                    raise
                results[index] = error
            cursor += 1
        return results

    def decompress_unsqueezed(self, compressed, plan, original_spatial):
        """Fused decode for grayscale erase-and-squeeze payloads.

        Decodes the payload and scatters the pixels straight into the
        zero-filled unsqueezed frame (``fill="zero"`` semantics, cropped to
        ``original_spatial``) — the squeezed image is never assembled.
        Returns ``None`` when the payload is not eligible (colour, or a
        geometry that does not match the plan) so callers can fall back to
        the generic path.
        """
        state = self._entropy_decode(compressed)
        if state["num_channels"] != 1:
            return None
        block_plan = plan.block_plan(original_spatial, block=8)
        quantised, meta = state["channels"][0]
        if (tuple(meta["padded_shape"]) != tuple(block_plan.padded_squeezed_shape)
                or meta["num_blocks"] != block_plan.num_blocks
                or tuple(meta["original_shape"]) != tuple(block_plan.squeezed_shape)
                or (state["height"], state["width"]) != tuple(block_plan.squeezed_shape)):
            return None
        blocks = idct2_batched(quantised.astype(np.float64) * self._luma_table)
        values = np.clip((blocks + 128.0) / 255.0, 0.0, 1.0)
        return block_plan.scatter_blocks(values)

    # ------------------------------------------------------------------ #
    # complexity model (per-pixel MAC estimates for the testbed simulator)
    # ------------------------------------------------------------------ #
    def encode_complexity(self, shape):
        """DCT + quantisation + entropy coding cost (CPU only, no model)."""
        pixels = image_num_pixels(shape)
        channels = 3 if len(shape) == 3 else 1
        # 2x 8-point DCT per pixel (~16 MACs) + quant + entropy ≈ 40 MACs/px.
        macs = 40.0 * pixels * (2.0 if channels == 3 and self.subsample_chroma else channels)
        return ComplexityProfile(macs=macs, model_bytes=0.0,
                                 working_memory_bytes=8.0 * pixels * channels,
                                 uses_gpu=False)

    def decode_complexity(self, shape):
        """Inverse DCT + dequantisation cost (mirror of encoding)."""
        return self.encode_complexity(shape)
