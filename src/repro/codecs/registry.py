"""Codec registry: build codecs by name and map quality levels to parameters.

The benchmark harness sweeps bitrates by name (``"jpeg"``, ``"bpg"``,
``"mbt"``, ``"cheng"``) — this module centralises the name → class mapping
and the per-codec quality parameter grids used to hit the paper's target BPP
ranges (≈0.2–1.2 BPP on Kodak, ≈0.3 BPP on CLIC).
"""

from __future__ import annotations

from .balle import BalleFactorizedCodec, BalleHyperpriorCodec
from .bpg import BpgCodec
from .cheng import ChengCodec
from .jpeg import JpegCodec
from .mbt import MbtCodec
from .png import PngCodec

__all__ = ["CODEC_CLASSES", "QUALITY_GRIDS", "create_codec", "quality_grid", "available_codecs"]

CODEC_CLASSES = {
    "jpeg": JpegCodec,
    "bpg": BpgCodec,
    "mbt": MbtCodec,
    "cheng": ChengCodec,
    "balle-factorized": BalleFactorizedCodec,
    "balle-hyperprior": BalleHyperpriorCodec,
    "png": PngCodec,
}

#: Quality parameter sweeps used by the rate/perception benchmarks
#: (ordered from lowest to highest bitrate).
QUALITY_GRIDS = {
    "jpeg": [10, 20, 30, 50, 70, 85, 92],
    "bpg": [45, 40, 36, 32, 28, 24, 20],
    "mbt": [1, 2, 3, 4, 5, 6, 7],
    "cheng": [1, 2, 3, 4, 5, 6, 7],
    "balle-factorized": [1, 2, 3, 4, 5, 6, 7],
    "balle-hyperprior": [1, 2, 3, 4, 5, 6, 7],
}


def available_codecs():
    """Names of all registered codecs."""
    return sorted(CODEC_CLASSES)


def create_codec(name, quality=None, **kwargs):
    """Instantiate a codec by registry name.

    ``quality`` maps onto the codec's native parameter (``quality`` for JPEG
    and the learned codecs, ``qp`` for BPG); ``None`` uses the codec default.
    """
    key = name.lower()
    if key not in CODEC_CLASSES:
        raise KeyError(f"unknown codec {name!r}; available: {available_codecs()}")
    cls = CODEC_CLASSES[key]
    if quality is None:
        return cls(**kwargs)
    if key == "bpg":
        return cls(qp=quality, **kwargs)
    if key == "png":
        return cls(**kwargs)
    return cls(quality=quality, **kwargs)


def quality_grid(name):
    """Return the default quality sweep for a codec name."""
    key = name.lower()
    if key not in QUALITY_GRIDS:
        raise KeyError(f"no quality grid for codec {name!r}")
    return list(QUALITY_GRIDS[key])
