"""Ballé et al. baseline codecs (factorized prior and scale hyperprior).

The paper's Fig. 1 motivation lists two "Ballé et al." models alongside
Minnen (MBT) and Cheng: the factorized-prior model (Ballé 2017) and the
scale-hyperprior model (Ballé 2018).  Both are lighter than MBT/Cheng, which
is exactly the point of the figure — even the *small* learned codecs pay
hundreds of milliseconds of load and encode latency on the TX2.

These proxies configure :class:`repro.codecs.neural.LearnedTransformCodec`
with the corresponding entropy model and the published model size / compute
footprint so the edge testbed reproduces the Fig. 1 ordering
(Ballé-factorized < Ballé-hyperprior < MBT < Cheng).
"""

from __future__ import annotations

from .neural import LearnedTransformCodec

__all__ = ["BalleFactorizedCodec", "BalleHyperpriorCodec"]


class BalleFactorizedCodec(LearnedTransformCodec):
    """Ballé 2017 factorized-prior proxy (the smallest learned baseline).

    Parameters
    ----------
    quality:
        CompressAI-style quality index in ``[1, 8]``.
    """

    def __init__(self, quality=4, rng=None):
        super().__init__(
            quality=quality,
            entropy_model="factorized",
            base_step=104.0,
            macs_per_pixel=110_000.0,
            model_bytes=12 * 2 ** 20,
            name="balle-factorized",
            rng=rng,
        )


class BalleHyperpriorCodec(LearnedTransformCodec):
    """Ballé 2018 scale-hyperprior proxy (between factorized and MBT).

    Parameters
    ----------
    quality:
        CompressAI-style quality index in ``[1, 8]``.
    """

    def __init__(self, quality=4, rng=None):
        super().__init__(
            quality=quality,
            entropy_model="hyperprior",
            base_step=96.0,
            macs_per_pixel=180_000.0,
            model_bytes=24 * 2 ** 20,
            name="balle-hyperprior",
            rng=rng,
        )
