"""Run-length encoding helpers.

JPEG's AC coefficient coding is a (zero-run, value) scheme; the generic
functions here are also used by the mask serialiser (binary erase masks are
mostly smooth, so RLE plus Huffman compacts them well below the paper's
"128 bytes for a 32×32 mask" bound).
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_length_encode", "run_length_decode", "encode_binary_mask", "decode_binary_mask"]


def run_length_encode(values):
    """Encode an iterable of hashable values as ``[(value, run_length), ...]``."""
    runs = []
    current = None
    count = 0
    for value in values:
        if current is not None and value == current:
            count += 1
        else:
            if current is not None:
                runs.append((current, count))
            current = value
            count = 1
    if current is not None:
        runs.append((current, count))
    return runs


def run_length_decode(runs):
    """Inverse of :func:`run_length_encode`."""
    out = []
    for value, count in runs:
        out.extend([value] * count)
    return out


_MODE_RLE = 0
_MODE_PACKED = 1


def _encode_mask_rle(flat):
    """Varint run-length body for a flat 0/1 sequence."""
    runs = run_length_encode(flat.tolist())  # lint: allow RP004 - run_length_encode consumes a python sequence
    body = bytearray()
    body.append(int(runs[0][0]) if runs else 0)
    for _, count in runs:
        # varint: 7 bits per byte, MSB = continuation
        while True:
            byte = count & 0x7F
            count >>= 7
            if count:
                body.append(byte | 0x80)
            else:
                body.append(byte)
                break
    return bytes(body)


def encode_binary_mask(mask):
    """Serialise a binary mask into a compact byte string.

    Two encodings are tried and the smaller one is emitted (a mode byte in
    the header says which): run-length with varint counts (wins for
    structured masks) and plain bit packing (wins for fine-grained masks and
    bounds the size at ``ceil(H·W/8)`` bytes — the paper's "128 bytes for a
    32×32 mask" worst case).
    """
    mask = np.asarray(mask).astype(np.uint8)
    if mask.ndim != 2:
        raise ValueError("mask must be 2-D")
    flat = mask.reshape(-1)
    rle_body = _encode_mask_rle(flat)
    packed_body = np.packbits(flat).tobytes()
    mode, body = ((_MODE_RLE, rle_body) if len(rle_body) <= len(packed_body)
                  else (_MODE_PACKED, packed_body))
    header = bytearray()
    header += int(mask.shape[0]).to_bytes(2, "big")
    header += int(mask.shape[1]).to_bytes(2, "big")
    header.append(mode)
    return bytes(header) + body


def decode_binary_mask(payload):
    """Inverse of :func:`encode_binary_mask`; returns a uint8 2-D array."""
    height = int.from_bytes(payload[0:2], "big")
    width = int.from_bytes(payload[2:4], "big")
    mode = payload[4]
    body = payload[5:]
    if mode == _MODE_PACKED:
        flat = np.unpackbits(np.frombuffer(body, dtype=np.uint8))[: height * width]
        return flat.astype(np.uint8).reshape(height, width)
    value = body[0]
    pos = 1
    flat = []
    while pos < len(body) and len(flat) < height * width:
        count = 0
        shift = 0
        while True:
            byte = body[pos]
            pos += 1
            count |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                break
        flat.extend([value] * count)
        value = 1 - value
    flat = flat[: height * width]
    return np.asarray(flat, dtype=np.uint8).reshape(height, width)
