"""Bit-level I/O used by the Huffman and arithmetic coders.

The JPEG and BPG-proxy codecs serialise their symbol streams through
:class:`BitWriter` / :class:`BitReader`, which pack bits MSB-first into a
``bytes`` object.

Both classes operate on masked integer accumulators rather than per-bit
loops: :meth:`BitWriter.write_bits` shifts whole fields into a pending
integer and flushes complete bytes in bulk, :meth:`BitReader.read_bits`
extracts whole fields from a byte-slice in one ``int.from_bytes`` call, and
:meth:`BitWriter.write_tokens` packs an entire numpy ``(value, length)``
symbol stream in a handful of vectorized operations — the fast path the
table-driven JPEG entropy coder relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitWriter", "BitReader"]

# Flush the pending accumulator once it holds this many bits; keeps the
# Python ints small so shift/or stay O(1) amortised.
_FLUSH_BITS = 4096


class BitWriter:
    """Accumulates individual bits and bit-fields into a byte string."""

    def __init__(self):
        self._bytes = bytearray()
        self._acc = 0  # pending bits, oldest at the most-significant end
        self._nbits = 0

    def _flush(self):
        """Move all complete bytes from the accumulator into the buffer."""
        whole = self._nbits >> 3
        if whole:
            rem = self._nbits & 7
            self._bytes += (self._acc >> rem).to_bytes(whole, "big")
            self._acc &= (1 << rem) - 1
            self._nbits = rem

    def write_bit(self, bit):
        """Append a single bit (0 or 1)."""
        self._acc = (self._acc << 1) | (1 if bit else 0)
        self._nbits += 1
        if self._nbits >= _FLUSH_BITS:
            self._flush()

    def write_bits(self, value, num_bits):
        """Append ``num_bits`` bits of ``value``, most significant bit first."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        if num_bits == 0:
            return
        self._acc = (self._acc << num_bits) | (int(value) & ((1 << num_bits) - 1))
        self._nbits += num_bits
        if self._nbits >= _FLUSH_BITS:
            self._flush()

    def write_unary(self, value):
        """Append ``value`` in unary coding (``value`` ones then a zero)."""
        self.write_bits(((1 << value) - 1) << 1, value + 1)

    def write_tokens(self, values, lengths):
        """Append a whole stream of MSB-first bit-fields in one vectorized op.

        ``values`` and ``lengths`` are equal-length integer arrays; token ``i``
        contributes the low ``lengths[i]`` bits of ``values[i]``, exactly as a
        sequence of :meth:`write_bits` calls would.  Each length must be at
        most 64 (JPEG tokens never exceed 27 bits).
        """
        values = np.asarray(values, dtype=np.uint64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if values.size == 0:
            return
        total = int(lengths.sum())
        if total == 0:
            return
        ends = np.cumsum(lengths)
        starts = ends - lengths
        # expand every token into its bits: bit j of the stream belongs to
        # token ``owner[j]`` at (MSB-first) offset ``j - starts[owner[j]]``
        owner = np.repeat(np.arange(values.size, dtype=np.int64), lengths)
        offsets = np.arange(total, dtype=np.int64) - starts[owner]
        shifts = (lengths[owner] - 1 - offsets).astype(np.uint64)
        bits = ((values[owner] >> shifts) & np.uint64(1)).astype(np.uint8)
        if self._nbits:
            pending = np.frombuffer(
                self._acc.to_bytes((self._nbits + 7) >> 3, "big"), dtype=np.uint8
            )
            bits = np.concatenate([np.unpackbits(pending)[-self._nbits:], bits])
            total += self._nbits
        whole = total >> 3
        rem = total & 7
        if whole:
            self._bytes += np.packbits(bits[: whole * 8]).tobytes()
        if rem:
            self._acc = int(np.packbits(bits[whole * 8:])[0]) >> (8 - rem)
        else:
            self._acc = 0
        self._nbits = rem

    @property
    def bit_length(self):
        """Number of bits written so far (before padding)."""
        return len(self._bytes) * 8 + self._nbits

    def getvalue(self):
        """Return the bytes written so far, zero-padding the final byte."""
        data = bytearray(self._bytes)
        if self._nbits:
            nbytes = (self._nbits + 7) >> 3
            data += (self._acc << (nbytes * 8 - self._nbits)).to_bytes(nbytes, "big")
        return bytes(data)


class BitReader:
    """Reads bits MSB-first from a byte string produced by :class:`BitWriter`."""

    def __init__(self, data):
        self._data = bytes(data)
        self._total = len(self._data) * 8
        self._pos = 0  # bit position
        self._words = None  # lazy 32-bit window view (see as_words32)
        self._word_array = None  # lazy numpy view of the same words

    def read_bit(self):
        """Read one bit; returns 0 past the end of the buffer."""
        pos = self._pos
        if pos >= self._total:
            return 0
        bit = (self._data[pos >> 3] >> (7 - (pos & 7))) & 1
        self._pos = pos + 1
        return bit

    def _extract(self, pos, num_bits):
        """Field of ``num_bits`` bits starting at bit ``pos`` (zero-padded)."""
        end = pos + num_bits
        first = pos >> 3
        last = (end + 7) >> 3
        chunk = self._data[first:last]
        value = int.from_bytes(chunk, "big")
        span = (last - first) * 8
        short = span - len(chunk) * 8
        if short:
            value <<= short  # bits past the end read as zero
        return (value >> (span - (end - first * 8))) & ((1 << num_bits) - 1)

    def read_bits(self, num_bits):
        """Read ``num_bits`` bits as an unsigned integer (MSB first)."""
        if num_bits <= 0:
            return 0
        value = self._extract(self._pos, num_bits)
        end = self._pos + num_bits
        self._pos = end if end <= self._total else self._total
        return value

    def peek_bits(self, num_bits):
        """Like :meth:`read_bits` but without consuming any input."""
        if num_bits <= 0:
            return 0
        return self._extract(self._pos, num_bits)

    def skip_bits(self, num_bits):
        """Advance the read position by ``num_bits`` (clamped to the end)."""
        self._pos = min(self._pos + num_bits, self._total)

    def as_words32(self):
        """Random-access word view for LUT decoders: ``(words, total_bits)``.

        ``words[i]`` holds bits ``8i .. 8i+32`` of the stream as one integer
        (zero-padded past the end, with slack for a decoder to overrun by a
        few symbols before noticing exhaustion), so the 16-bit window at bit
        ``p`` is ``(words[p >> 3] >> (16 - (p & 7))) & 0xFFFF`` — no slicing
        or ``int.from_bytes`` in the per-symbol loop.  Built lazily once and
        cached.  Consumers track their own bit position and re-synchronise
        via :meth:`skip_bits`.

        Payloads up to a few megabytes are returned as a plain Python list
        (fastest scalar indexing); beyond that a signed numpy ``int64``
        array is returned directly — indexing is slightly slower but memory
        stays at 8 bytes per payload byte instead of ~40 for boxed Python
        ints (signed so that consumer arithmetic like ``amp - (1 << size)``
        cannot wrap).
        """
        if self._words is None:
            words = self.as_word_array()
            self._words = words.tolist() if len(self._data) <= (2 << 20) else words  # lint: allow RP004 - python ints beat numpy scalars in the bit loop
        return self._words, self._total

    def as_word_array(self):
        """The :meth:`as_words32` word view as a signed numpy ``int64`` array.

        Vectorized decoders (the two-pass JPEG entropy decoder) gather many
        amplitude fields from arbitrary bit positions at once; numpy fancy
        indexing needs the array form regardless of the payload size.  Built
        lazily once and shared with :meth:`as_words32`.
        """
        if self._word_array is None:
            if isinstance(self._words, np.ndarray):
                self._word_array = self._words
            else:
                padded = np.frombuffer(self._data + b"\x00" * 8, dtype=np.uint8)
                as32 = padded.astype(np.int64)
                self._word_array = (
                    (as32[:-3] << 24) | (as32[1:-2] << 16) | (as32[2:-1] << 8) | as32[3:]
                )
        return self._word_array

    def read_unary(self):
        """Read a unary-coded non-negative integer."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    @property
    def bits_remaining(self):
        """Number of unread bits left in the buffer."""
        return max(0, self._total - self._pos)

    @property
    def position(self):
        """Current bit position from the start of the buffer."""
        return self._pos
