"""Bit-level I/O used by the Huffman and arithmetic coders.

The JPEG and BPG-proxy codecs serialise their symbol streams through
:class:`BitWriter` / :class:`BitReader`, which pack bits MSB-first into a
``bytes`` object.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates individual bits and bit-fields into a byte string."""

    def __init__(self):
        self._bytes = bytearray()
        self._current = 0
        self._count = 0

    def write_bit(self, bit):
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (1 if bit else 0)
        self._count += 1
        if self._count == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._count = 0

    def write_bits(self, value, num_bits):
        """Append ``num_bits`` bits of ``value``, most significant bit first."""
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        for shift in range(num_bits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value):
        """Append ``value`` in unary coding (``value`` ones then a zero)."""
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self):
        """Number of bits written so far (before padding)."""
        return len(self._bytes) * 8 + self._count

    def getvalue(self):
        """Return the bytes written so far, zero-padding the final byte."""
        data = bytearray(self._bytes)
        if self._count:
            data.append(self._current << (8 - self._count))
        return bytes(data)


class BitReader:
    """Reads bits MSB-first from a byte string produced by :class:`BitWriter`."""

    def __init__(self, data):
        self._data = bytes(data)
        self._pos = 0  # bit position

    def read_bit(self):
        """Read one bit; returns 0 past the end of the buffer."""
        byte_index = self._pos >> 3
        if byte_index >= len(self._data):
            return 0
        bit = (self._data[byte_index] >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, num_bits):
        """Read ``num_bits`` bits as an unsigned integer (MSB first)."""
        value = 0
        for _ in range(num_bits):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self):
        """Read a unary-coded non-negative integer."""
        count = 0
        while self.read_bit():
            count += 1
        return count

    @property
    def bits_remaining(self):
        """Number of unread bits left in the buffer."""
        return max(0, len(self._data) * 8 - self._pos)

    @property
    def position(self):
        """Current bit position from the start of the buffer."""
        return self._pos
