"""Byte-oriented adaptive range coder (the default entropy backend).

Replaces the bit-at-a-time Witten–Neal–Cleary coder in
:mod:`repro.entropy.arithmetic` on the hot paths of the BPG-proxy and
learned codecs.  The coder is an LZMA-style carry-counting range coder:
renormalisation moves whole *bytes* between the 32-bit ``range`` register
and the output stream (the classic ``cache``/``cache_size`` pending-0xFF
technique resolves carries exactly), so coding a symbol costs a handful of
integer operations instead of one Python-level loop iteration per output
*bit*.

Adaptive-model semantics are identical to :class:`~repro.entropy.arithmetic.
AdaptiveModel` (Laplace-smoothed counts, +32 per coded symbol, halving when
the total saturates 2^16), so compression ratios match the legacy coder to
within a few bytes.  The byte *format* is different and versioned — see
:func:`repro.entropy.arithmetic.encode_symbols` for the container tag and the
``legacy=True`` escape hatch.

Two performance layers sit on top of the streaming API:

* **Fenwick shadow states** — the coder keeps a private Fenwick-tree mirror
  of every :class:`AdaptiveModel` it codes with (plain Python ints, built
  once per model).  Cumulative-frequency lookups and count updates are
  O(log K) list operations in the inner loop instead of numpy slice
  arithmetic; :meth:`RangeEncoder.finish` / :meth:`RangeDecoder.sync_models`
  write the final counts back so model state stays observable and matches
  the legacy coder symbol-for-symbol.
* **symbol-array entry points** — :meth:`RangeEncoder.encode_array` and
  :meth:`RangeDecoder.decode_array` consume/produce whole numpy symbol
  arrays with the model and coder state bound to local variables, which is
  how the block codecs feed entire coefficient scans per call.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RangeEncoder", "RangeDecoder"]

_TOP = 1 << 24          # renormalise while range < 2^24 (byte at a time)
_MASK32 = 0xFFFFFFFF
_MAX_TOTAL = 1 << 16    # shared with the legacy coder's model semantics
_INCREMENT = 32


class _ModelState:
    """Fenwick-tree shadow of one adaptive model (plain-Python hot state)."""

    __slots__ = ("model", "counts", "tree", "total", "msb", "num_symbols")

    def __init__(self, model):
        self.model = model
        self.num_symbols = model.num_symbols
        self.counts = [int(c) for c in model.counts]
        self.total = int(sum(self.counts))
        msb = 1
        while (msb << 1) <= self.num_symbols:
            msb <<= 1
        self.msb = msb
        self._build_tree()

    def _build_tree(self):
        n = self.num_symbols
        tree = [0] * (n + 1)
        counts = self.counts
        for index in range(n):
            j = index + 1
            tree[j] += counts[index]
            parent = j + (j & -j)
            if parent <= n:
                tree[parent] += tree[j]
        self.tree = tree

    def rescale(self):
        """Halve all counts (the legacy saturation rule) and rebuild."""
        self.counts = [c // 2 if c > 1 else 1 for c in self.counts]
        self.total = sum(self.counts)
        self._build_tree()

    def sync_back(self):
        """Write the shadow counts back into the numpy model."""
        self.model.set_counts(self.counts)


class RangeEncoder:
    """Streaming range encoder with the same ``encode(model, symbol)`` API
    as :class:`~repro.entropy.arithmetic.ArithmeticEncoder`."""

    def __init__(self):
        self._out = bytearray()
        self._low = 0
        self._range = _MASK32
        self._cache = 0
        self._cache_size = 1
        self._states = {}

    # ------------------------------------------------------------------ #
    def _state(self, model):
        state = self._states.get(id(model))
        if state is None:
            state = _ModelState(model)
            self._states[id(model)] = state
        return state

    def _shift_low(self):
        low = self._low
        if low < 0xFF000000 or low > _MASK32:
            carry = low >> 32
            self._out.append((self._cache + carry) & 0xFF)
            if self._cache_size > 1:
                self._out.extend(((0xFF + carry) & 0xFF,) * (self._cache_size - 1))
            self._cache = (low >> 24) & 0xFF
            self._cache_size = 0
        self._cache_size += 1
        self._low = (low & 0xFFFFFF) << 8

    def encode(self, model, symbol):
        """Encode one ``symbol`` under ``model`` and update the model."""
        self.encode_array(model, (int(symbol),))

    def encode_array(self, model, symbols):
        """Encode a whole symbol sequence under one model (the fast path)."""
        state = self._state(model)
        counts = state.counts
        tree = state.tree
        total = state.total
        n = state.num_symbols
        low = self._low
        rng = self._range
        cache = self._cache
        cache_size = self._cache_size
        out = self._out
        append = out.append
        extend = out.extend
        if isinstance(symbols, np.ndarray):
            symbols = symbols.tolist()  # lint: allow RP004 - scalar Fenwick loop wants python ints, not numpy scalars
        for s in symbols:
            s = int(s)
            # Fenwick prefix sum: cumulative count of symbols < s
            cum_low = 0
            j = s
            while j > 0:
                cum_low += tree[j]
                j &= j - 1
            freq = counts[s]
            r = rng // total
            low += cum_low * r
            rng = r * freq
            while rng < _TOP:
                if low < 0xFF000000 or low > _MASK32:
                    carry = low >> 32
                    append((cache + carry) & 0xFF)
                    if cache_size > 1:
                        extend(((0xFF + carry) & 0xFF,) * (cache_size - 1))
                    cache = (low >> 24) & 0xFF
                    cache_size = 0
                cache_size += 1
                rng <<= 8
                low = (low & 0xFFFFFF) << 8
            # adaptive update (legacy semantics: +32, halve past 2^16)
            counts[s] += _INCREMENT
            j = s + 1
            while j <= n:
                tree[j] += _INCREMENT
                j += j & -j
            total += _INCREMENT
            if total > _MAX_TOTAL:
                state.rescale()
                counts = state.counts
                tree = state.tree
                total = state.total
        state.total = total
        self._low = low
        self._range = rng
        self._cache = cache
        self._cache_size = cache_size

    def finish(self):
        """Flush the coder, sync model shadows back, return the payload."""
        for _ in range(5):
            self._shift_low()
        self.sync_models()
        return bytes(self._out)

    def sync_models(self):
        """Write every shadow state back into its numpy model."""
        for state in self._states.values():
            state.sync_back()


class RangeDecoder:
    """Streaming range decoder mirroring :class:`RangeEncoder`."""

    def __init__(self, payload):
        self._data = bytes(payload)
        self._pos = 1  # the first byte is the encoder's initial zero cache
        code = 0
        data = self._data
        for _ in range(4):
            code = (code << 8) | (data[self._pos] if self._pos < len(data) else 0)
            self._pos += 1
        self._code = code
        self._range = _MASK32
        self._states = {}

    def _state(self, model):
        state = self._states.get(id(model))
        if state is None:
            state = _ModelState(model)
            self._states[id(model)] = state
        return state

    def decode(self, model):
        """Decode the next symbol under ``model`` and update the model."""
        return int(self.decode_array(model, 1)[0])

    def decode_array(self, model, count):
        """Decode ``count`` symbols under one model; returns a Python list."""
        state = self._state(model)
        counts = state.counts
        tree = state.tree
        total = state.total
        n = state.num_symbols
        msb = state.msb
        code = self._code
        rng = self._range
        pos = self._pos
        data = self._data
        size = len(data)
        out = []
        append = out.append
        for _ in range(count):
            r = rng // total
            scaled = code // r
            if scaled >= total:
                scaled = total - 1
            # Fenwick descent: largest s with prefix(s) <= scaled
            idx = 0
            rem = scaled
            bit = msb
            while bit:
                nxt = idx + bit
                if nxt <= n and tree[nxt] <= rem:
                    idx = nxt
                    rem -= tree[nxt]
                bit >>= 1
            cum_low = scaled - rem
            freq = counts[idx]
            code -= cum_low * r
            rng = r * freq
            while rng < _TOP:
                rng <<= 8
                code = ((code << 8) | (data[pos] if pos < size else 0)) & 0xFFFFFFFFFF
                pos += 1
            append(idx)
            counts[idx] += _INCREMENT
            j = idx + 1
            while j <= n:
                tree[j] += _INCREMENT
                j += j & -j
            total += _INCREMENT
            if total > _MAX_TOTAL:
                state.rescale()
                counts = state.counts
                tree = state.tree
                total = state.total
        state.total = total
        self._code = code
        self._range = rng
        self._pos = pos
        return out

    def sync_models(self):
        """Write every shadow state back into its numpy model."""
        for state in self._states.values():
            state.sync_back()
