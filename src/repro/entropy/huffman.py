"""Canonical Huffman coding.

Two use cases in the reproduction:

* the JPEG codec encodes (run, size) symbols and DC size categories with
  either the standard JPEG tables (:mod:`repro.codecs.jpeg_tables`) or tables
  built from symbol statistics with :class:`HuffmanCode`;
* generic byte-stream entropy coding for the lossless PNG-like baseline.
"""

from __future__ import annotations

import heapq
from collections import Counter

from .bitio import BitReader, BitWriter

__all__ = ["HuffmanCode", "huffman_encode", "huffman_decode"]


class _Node:
    __slots__ = ("weight", "order", "symbol", "left", "right")

    def __init__(self, weight, order, symbol=None, left=None, right=None):
        self.weight = weight
        self.order = order
        self.symbol = symbol
        self.left = left
        self.right = right

    def __lt__(self, other):
        return (self.weight, self.order) < (other.weight, other.order)


class HuffmanCode:
    """A prefix code built from symbol frequencies (canonical form).

    Parameters
    ----------
    frequencies:
        Mapping ``symbol -> count``.  Symbols may be any hashable values;
        they are sorted by code length then by symbol for canonicalisation.
    max_code_length:
        Optional cap on code lengths (lengths are flattened with the
        package-merge-free heuristic of repeatedly shortening the deepest
        leaves); JPEG requires codes of at most 16 bits.
    """

    def __init__(self, frequencies, max_code_length=None):
        if not frequencies:
            raise ValueError("cannot build a Huffman code from empty frequencies")
        self.lengths = self._build_lengths(dict(frequencies))
        if max_code_length is not None:
            self._limit_lengths(max_code_length)
        self.encode_table = self._canonical_codes(self.lengths)
        self.decode_table = {(length, code): symbol
                             for symbol, (code, length) in self.encode_table.items()}

    # -- construction --------------------------------------------------- #
    @staticmethod
    def _build_lengths(frequencies):
        if len(frequencies) == 1:
            symbol = next(iter(frequencies))
            return {symbol: 1}
        heap = []
        for order, (symbol, weight) in enumerate(sorted(frequencies.items(), key=lambda kv: repr(kv[0]))):
            heapq.heappush(heap, _Node(weight, order, symbol=symbol))
        order = len(frequencies)
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            heapq.heappush(heap, _Node(a.weight + b.weight, order, left=a, right=b))
            order += 1
        lengths = {}
        stack = [(heap[0], 0)]
        while stack:
            node, depth = stack.pop()
            if node.symbol is not None:
                lengths[node.symbol] = max(1, depth)
            else:
                stack.append((node.left, depth + 1))
                stack.append((node.right, depth + 1))
        return lengths

    def _limit_lengths(self, max_length):
        # Kraft-inequality repair: shorten the histogram until it fits.
        counts = Counter(self.lengths.values())
        overflow = sorted((length for length in counts if length > max_length),
                          reverse=True)
        if not overflow:
            return
        symbols_by_length = sorted(self.lengths.items(), key=lambda kv: (kv[1], repr(kv[0])))
        lengths = [min(length, max_length) for _, length in symbols_by_length]
        # Repair the Kraft sum by extending the shortest codes if necessary.
        def kraft(ls):
            return sum(2.0 ** -length for length in ls)
        idx = len(lengths) - 1
        while kraft(lengths) > 1.0 and idx >= 0:
            if lengths[idx] < max_length:
                lengths[idx] += 1
            else:
                idx -= 1
        self.lengths = {sym: length
                        for (sym, _), length in zip(symbols_by_length, lengths)}

    @staticmethod
    def _canonical_codes(lengths):
        ordered = sorted(lengths.items(), key=lambda kv: (kv[1], repr(kv[0])))
        codes = {}
        code = 0
        previous_length = ordered[0][1] if ordered else 0
        for symbol, length in ordered:
            code <<= (length - previous_length)
            codes[symbol] = (code, length)
            code += 1
            previous_length = length
        return codes

    # -- coding ---------------------------------------------------------- #
    def encode_symbol(self, writer, symbol):
        """Write one symbol's code to a :class:`BitWriter`."""
        code, length = self.encode_table[symbol]
        writer.write_bits(code, length)

    def decode_symbol(self, reader):
        """Read one symbol from a :class:`BitReader`."""
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            if (length, code) in self.decode_table:
                return self.decode_table[(length, code)]
            if length > 32:
                raise ValueError("invalid Huffman stream (no symbol within 32 bits)")

    def expected_length(self, frequencies):
        """Average code length in bits for the supplied frequency table."""
        total = sum(frequencies.values())
        if total == 0:
            return 0.0
        return sum(self.lengths[s] * c for s, c in frequencies.items() if s in self.lengths) / total


def huffman_encode(symbols):
    """Encode a sequence of hashable symbols.

    Returns ``(payload_bytes, code, count)``; the code and count are needed
    for decoding (the library does not serialise the table — callers that
    need a self-contained bitstream, e.g. the JPEG codec, use fixed tables).
    """
    symbols = list(symbols)
    if not symbols:
        return b"", None, 0
    code = HuffmanCode(Counter(symbols))
    writer = BitWriter()
    for symbol in symbols:
        code.encode_symbol(writer, symbol)
    return writer.getvalue(), code, len(symbols)


def huffman_decode(payload, code, count):
    """Decode ``count`` symbols from ``payload`` using ``code``."""
    if count == 0:
        return []
    reader = BitReader(payload)
    return [code.decode_symbol(reader) for _ in range(count)]
