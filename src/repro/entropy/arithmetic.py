"""Adaptive multi-symbol entropy coding: legacy arithmetic + range backend.

Used by the BPG-proxy codec (:mod:`repro.codecs.bpg`) and by the learned
codec baselines for entropy-coding quantised latents.  Two coder backends
share one adaptive frequency model:

* the **legacy** coder (:class:`ArithmeticEncoder` / :class:`ArithmeticDecoder`)
  is a classic 32-bit integer arithmetic coder with bit-at-a-time carry-less
  renormalisation (Witten–Neal–Cleary style), kept for old payloads and as
  the reference in equivalence tests;
* the **range** coder (:class:`repro.entropy.range_coder.RangeEncoder` /
  ``RangeDecoder``) renormalises a byte at a time and consumes whole symbol
  arrays — the default backend, several times faster at identical
  compression (see the ``entropy`` section of ``BENCH_throughput.json``).

:func:`encode_symbols` / :func:`decode_symbols` wrap both behind a one-byte
format tag so payloads are self-describing; pass ``legacy=True`` to force
the old backend.
"""

from __future__ import annotations

import numpy as np

from .bitio import BitReader, BitWriter

__all__ = ["AdaptiveModel", "ArithmeticEncoder", "ArithmeticDecoder",
           "encode_symbols", "decode_symbols",
           "FORMAT_LEGACY", "FORMAT_RANGE"]

#: Payload format tags written by :func:`encode_symbols` (and the codec
#: containers): 0 = legacy bit-at-a-time arithmetic coder, 1 = byte-oriented
#: range coder.
FORMAT_LEGACY = 0
FORMAT_RANGE = 1

_PRECISION = 32
_MAX = (1 << _PRECISION) - 1
_QUARTER = 1 << (_PRECISION - 2)
_HALF = 2 * _QUARTER
_THREE_QUARTERS = 3 * _QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive frequency model over a fixed alphabet ``{0..num_symbols-1}``.

    Frequencies start at one (Laplace smoothing) and are incremented after
    each coded symbol; when the total exceeds ``_MAX_TOTAL`` all counts are
    halved, which keeps the model responsive to local statistics.
    """

    def __init__(self, num_symbols):
        if num_symbols < 1:
            raise ValueError("num_symbols must be >= 1")
        self.num_symbols = num_symbols
        self.counts = np.ones(num_symbols, dtype=np.int64)
        self.rebuilds = 0  # full cumulative-table rebuilds (regression guard)
        self._rebuild()

    def _rebuild(self):
        self.cumulative = np.concatenate(([0], np.cumsum(self.counts)))
        self.total = int(self.cumulative[-1])
        self.rebuilds += 1

    def interval(self, symbol):
        """Return ``(low_count, high_count, total)`` for ``symbol``."""
        return int(self.cumulative[symbol]), int(self.cumulative[symbol + 1]), self.total

    def symbol_from_count(self, scaled):
        """Find the symbol whose cumulative interval contains ``scaled``."""
        return int(np.searchsorted(self.cumulative, scaled, side="right") - 1)

    def update(self, symbol):
        """Increment the count of ``symbol`` (and rescale when saturated).

        The common case is a single in-place slice add on the cumulative
        table — the full O(K) rebuild only runs on the rare saturation
        rescale, which keeps long symbol streams cheap (see
        ``tests/test_entropy.py::test_update_is_incremental``).
        """
        self.counts[symbol] += 32
        if self.total + 32 > _MAX_TOTAL:
            self.counts = np.maximum(1, self.counts // 2)
            self._rebuild()
        else:
            self.cumulative[symbol + 1:] += 32
            self.total += 32

    def set_counts(self, counts):
        """Replace the frequency counts wholesale (coder shadow write-back)."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.num_symbols,):
            raise ValueError(f"expected {self.num_symbols} counts, got {counts.shape}")
        self.counts = counts
        self._rebuild()


class ArithmeticEncoder:
    """Streaming arithmetic encoder writing to an internal :class:`BitWriter`."""

    def __init__(self):
        self._writer = BitWriter()
        self._low = 0
        self._high = _MAX
        self._pending = 0

    def _emit(self, bit):
        self._writer.write_bit(bit)
        while self._pending:
            self._writer.write_bit(1 - bit)
            self._pending -= 1

    def encode(self, model, symbol):
        """Encode ``symbol`` under ``model`` and update the model."""
        low_count, high_count, total = model.interval(symbol)
        span = self._high - self._low + 1
        self._high = self._low + span * high_count // total - 1
        self._low = self._low + span * low_count // total
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
        model.update(symbol)

    def finish(self):
        """Flush the coder state and return the encoded bytes."""
        self._pending += 1
        if self._low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        return self._writer.getvalue()


class ArithmeticDecoder:
    """Streaming arithmetic decoder mirroring :class:`ArithmeticEncoder`."""

    def __init__(self, payload):
        self._reader = BitReader(payload)
        self._low = 0
        self._high = _MAX
        self._value = self._reader.read_bits(_PRECISION)

    def decode(self, model):
        """Decode the next symbol under ``model`` and update the model."""
        span = self._high - self._low + 1
        total = model.total
        scaled = ((self._value - self._low + 1) * total - 1) // span
        symbol = model.symbol_from_count(scaled)
        low_count, high_count, _ = model.interval(symbol)
        self._high = self._low + span * high_count // total - 1
        self._low = self._low + span * low_count // total
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
            self._value = self._value * 2 + self._reader.read_bit()
        model.update(symbol)
        return symbol


def encode_symbols(symbols, num_symbols, legacy=False):
    """Encode an integer symbol sequence with a fresh adaptive model.

    The payload starts with a one-byte format tag (:data:`FORMAT_RANGE` by
    default, :data:`FORMAT_LEGACY` with ``legacy=True``) so
    :func:`decode_symbols` picks the matching backend automatically.
    """
    model = AdaptiveModel(num_symbols)
    if legacy:
        encoder = ArithmeticEncoder()
        for symbol in symbols:
            encoder.encode(model, int(symbol))
        return bytes([FORMAT_LEGACY]) + encoder.finish()
    from .range_coder import RangeEncoder

    encoder = RangeEncoder()
    encoder.encode_array(model, symbols)
    return bytes([FORMAT_RANGE]) + encoder.finish()


def decode_symbols(payload, count, num_symbols):
    """Decode ``count`` symbols encoded with :func:`encode_symbols`."""
    payload = bytes(payload)
    if not payload:
        raise ValueError("empty entropy payload (missing format tag)")
    tag, body = payload[0], payload[1:]
    model = AdaptiveModel(num_symbols)
    if tag == FORMAT_LEGACY:
        decoder = ArithmeticDecoder(body)
        return [decoder.decode(model) for _ in range(count)]
    if tag == FORMAT_RANGE:
        from .range_coder import RangeDecoder

        decoder = RangeDecoder(body)
        symbols = decoder.decode_array(model, count)
        decoder.sync_models()
        return symbols
    raise ValueError(f"unknown entropy payload format tag {tag}")
