"""Adaptive binary / multi-symbol arithmetic (range) coding.

Used by the BPG-proxy codec (:mod:`repro.codecs.bpg`) and by the learned
codec baselines for entropy-coding quantised latents.  The implementation is
a classic 32-bit integer range coder with carry-less renormalisation
(Witten–Neal–Cleary style), plus an adaptive frequency model.
"""

from __future__ import annotations

import numpy as np

from .bitio import BitReader, BitWriter

__all__ = ["AdaptiveModel", "ArithmeticEncoder", "ArithmeticDecoder",
           "encode_symbols", "decode_symbols"]

_PRECISION = 32
_MAX = (1 << _PRECISION) - 1
_QUARTER = 1 << (_PRECISION - 2)
_HALF = 2 * _QUARTER
_THREE_QUARTERS = 3 * _QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive frequency model over a fixed alphabet ``{0..num_symbols-1}``.

    Frequencies start at one (Laplace smoothing) and are incremented after
    each coded symbol; when the total exceeds ``_MAX_TOTAL`` all counts are
    halved, which keeps the model responsive to local statistics.
    """

    def __init__(self, num_symbols):
        if num_symbols < 1:
            raise ValueError("num_symbols must be >= 1")
        self.num_symbols = num_symbols
        self.counts = np.ones(num_symbols, dtype=np.int64)
        self._rebuild()

    def _rebuild(self):
        self.cumulative = np.concatenate(([0], np.cumsum(self.counts)))
        self.total = int(self.cumulative[-1])

    def interval(self, symbol):
        """Return ``(low_count, high_count, total)`` for ``symbol``."""
        return int(self.cumulative[symbol]), int(self.cumulative[symbol + 1]), self.total

    def symbol_from_count(self, scaled):
        """Find the symbol whose cumulative interval contains ``scaled``."""
        return int(np.searchsorted(self.cumulative, scaled, side="right") - 1)

    def update(self, symbol):
        """Increment the count of ``symbol`` (and rescale when saturated)."""
        self.counts[symbol] += 32
        if self.counts.sum() > _MAX_TOTAL:
            self.counts = np.maximum(1, self.counts // 2)
        self._rebuild()


class ArithmeticEncoder:
    """Streaming arithmetic encoder writing to an internal :class:`BitWriter`."""

    def __init__(self):
        self._writer = BitWriter()
        self._low = 0
        self._high = _MAX
        self._pending = 0

    def _emit(self, bit):
        self._writer.write_bit(bit)
        while self._pending:
            self._writer.write_bit(1 - bit)
            self._pending -= 1

    def encode(self, model, symbol):
        """Encode ``symbol`` under ``model`` and update the model."""
        low_count, high_count, total = model.interval(symbol)
        span = self._high - self._low + 1
        self._high = self._low + span * high_count // total - 1
        self._low = self._low + span * low_count // total
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
        model.update(symbol)

    def finish(self):
        """Flush the coder state and return the encoded bytes."""
        self._pending += 1
        if self._low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        return self._writer.getvalue()


class ArithmeticDecoder:
    """Streaming arithmetic decoder mirroring :class:`ArithmeticEncoder`."""

    def __init__(self, payload):
        self._reader = BitReader(payload)
        self._low = 0
        self._high = _MAX
        self._value = self._reader.read_bits(_PRECISION)

    def decode(self, model):
        """Decode the next symbol under ``model`` and update the model."""
        span = self._high - self._low + 1
        total = model.total
        scaled = ((self._value - self._low + 1) * total - 1) // span
        symbol = model.symbol_from_count(scaled)
        low_count, high_count, _ = model.interval(symbol)
        self._high = self._low + span * high_count // total - 1
        self._low = self._low + span * low_count // total
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low *= 2
            self._high = self._high * 2 + 1
            self._value = self._value * 2 + self._reader.read_bit()
        model.update(symbol)
        return symbol


def encode_symbols(symbols, num_symbols):
    """Encode an integer symbol sequence with a fresh adaptive model."""
    encoder = ArithmeticEncoder()
    model = AdaptiveModel(num_symbols)
    for symbol in symbols:
        encoder.encode(model, int(symbol))
    return encoder.finish()


def decode_symbols(payload, count, num_symbols):
    """Decode ``count`` symbols encoded with :func:`encode_symbols`."""
    decoder = ArithmeticDecoder(payload)
    model = AdaptiveModel(num_symbols)
    return [decoder.decode(model) for _ in range(count)]
