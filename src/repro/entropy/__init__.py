"""``repro.entropy`` — entropy-coding substrate shared by the codecs.

Contains bit-level I/O, canonical Huffman coding, run-length helpers and two
adaptive multi-symbol coder backends.

Entropy backends — which coder to use
-------------------------------------

==========================  ==========================  =========================
concern                     range coder (default)       legacy arithmetic coder
==========================  ==========================  =========================
classes                     ``RangeEncoder`` /          ``ArithmeticEncoder`` /
                            ``RangeDecoder``            ``ArithmeticDecoder``
renormalisation             byte-at-a-time (LZMA-style  bit-at-a-time with
                            carry counting)             pending-bit tracking
model lookups               Fenwick-tree shadow state,  numpy cumulative table
                            whole symbol arrays per     per symbol
                            call (``encode_array`` /
                            ``decode_array``)
throughput                  several times faster (the   the seed implementation;
                            ``entropy`` section of      kept as the equivalence
                            ``BENCH_throughput.json``   reference and for old
                            guards >= 3x)               payloads
compression ratio           identical model semantics,  baseline
                            payload within a few bytes
byte format                 tag ``FORMAT_RANGE`` (1)    tag ``FORMAT_LEGACY`` (0)
use when                    everything new (the bpg /   `legacy=True` escape
                            learned codecs default to   hatch, equivalence
                            it)                         reference in tests
==========================  ==========================  =========================

Payloads from :func:`encode_symbols` are self-describing (one leading format
byte); the codec containers (``RBPG`` / ``RNNC``) carry the same tag in
their headers, so either backend can be selected per payload — pass
``legacy_entropy=True`` to the codecs (or ``legacy=True`` to
:func:`encode_symbols`) to force the old coder.  Tagging was introduced
together with the range coder: payloads written *before* it (no tag byte)
are not readable by either backend — nothing in this repo persists
payloads across versions, so there is no migration path to carry.
"""

from .arithmetic import (
    FORMAT_LEGACY,
    FORMAT_RANGE,
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
    decode_symbols,
    encode_symbols,
)
from .bitio import BitReader, BitWriter
from .huffman import HuffmanCode, huffman_decode, huffman_encode
from .range_coder import RangeDecoder, RangeEncoder
from .rle import (
    decode_binary_mask,
    encode_binary_mask,
    run_length_decode,
    run_length_encode,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanCode",
    "huffman_encode",
    "huffman_decode",
    "run_length_encode",
    "run_length_decode",
    "encode_binary_mask",
    "decode_binary_mask",
    "AdaptiveModel",
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "RangeEncoder",
    "RangeDecoder",
    "FORMAT_LEGACY",
    "FORMAT_RANGE",
    "encode_symbols",
    "decode_symbols",
]
