"""``repro.entropy`` — entropy-coding substrate shared by the codecs.

Contains bit-level I/O, canonical Huffman coding, run-length helpers and an
adaptive arithmetic (range) coder.
"""

from .arithmetic import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
    decode_symbols,
    encode_symbols,
)
from .bitio import BitReader, BitWriter
from .huffman import HuffmanCode, huffman_decode, huffman_encode
from .rle import (
    decode_binary_mask,
    encode_binary_mask,
    run_length_decode,
    run_length_encode,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanCode",
    "huffman_encode",
    "huffman_decode",
    "run_length_encode",
    "run_length_decode",
    "encode_binary_mask",
    "decode_binary_mask",
    "AdaptiveModel",
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "encode_symbols",
    "decode_symbols",
]
