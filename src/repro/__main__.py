"""``python -m repro`` — command-line entry point (see :mod:`repro.experiments.cli`)."""

from __future__ import annotations

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
