"""Two-stage image patchify (paper Section III-B).

Stage one splits the image into non-overlapping ``n×n`` patches; stage two
splits every patch into ``b×b`` sub-patches.  Erasure, squeezing and
reconstruction all operate at the sub-patch level, while transformer
attention is confined within one patch — this is what reduces attention
complexity from ``O((hw)²·d)`` to ``O(hw·n²/b⁴·d)``.

All functions support grayscale ``(h, w)`` and colour ``(h, w, 3)`` inputs.
"""

from __future__ import annotations

import numpy as np

from ..image import pad_to_multiple

__all__ = [
    "image_to_patches",
    "patches_to_image",
    "patch_to_subpatches",
    "subpatches_to_patch",
    "subpatches_to_tokens",
    "tokens_to_subpatches",
    "patches_to_tokens",
    "tokens_to_patches",
    "two_stage_patchify",
    "attention_complexity",
]


def image_to_patches(image, patch_size):
    """Split an image into non-overlapping ``patch_size``² patches.

    The image is edge-padded up to a multiple of ``patch_size`` first.

    Returns
    -------
    (patches, grid_shape, original_shape):
        ``patches`` has shape ``(count, n, n[, channels])``; ``grid_shape``
        is ``(rows, cols)`` of the patch grid; ``original_shape`` is the
        unpadded image shape needed by :func:`patches_to_image`.
    """
    image = np.asarray(image, dtype=np.float64)
    padded, original_shape = pad_to_multiple(image, patch_size)
    height, width = padded.shape[:2]
    rows, cols = height // patch_size, width // patch_size
    if padded.ndim == 3:
        channels = padded.shape[2]
        patches = padded.reshape(rows, patch_size, cols, patch_size, channels)
        patches = patches.transpose(0, 2, 1, 3, 4).reshape(rows * cols, patch_size, patch_size, channels)
    else:
        patches = padded.reshape(rows, patch_size, cols, patch_size)
        patches = patches.transpose(0, 2, 1, 3).reshape(rows * cols, patch_size, patch_size)
    return patches, (rows, cols), original_shape


def patches_to_image(patches, grid_shape, original_shape):
    """Inverse of :func:`image_to_patches` (crops padding back off)."""
    patches = np.asarray(patches)
    rows, cols = grid_shape
    patch_size = patches.shape[1]
    if patches.ndim == 4:
        channels = patches.shape[3]
        grid = patches.reshape(rows, cols, patch_size, patch_size, channels)
        image = grid.transpose(0, 2, 1, 3, 4).reshape(rows * patch_size, cols * patch_size, channels)
    else:
        grid = patches.reshape(rows, cols, patch_size, patch_size)
        image = grid.transpose(0, 2, 1, 3).reshape(rows * patch_size, cols * patch_size)
    return image[: original_shape[0], : original_shape[1], ...]


def patch_to_subpatches(patch, subpatch_size):
    """Split one ``n×n`` patch into its ``(n/b, n/b)`` grid of ``b×b`` sub-patches.

    Returns an array of shape ``(grid, grid, b, b[, channels])``.
    """
    patch = np.asarray(patch)
    n = patch.shape[0]
    if n % subpatch_size != 0:
        raise ValueError(f"patch size {n} not divisible by subpatch size {subpatch_size}")
    grid = n // subpatch_size
    if patch.ndim == 3:
        channels = patch.shape[2]
        sub = patch.reshape(grid, subpatch_size, grid, subpatch_size, channels)
        return sub.transpose(0, 2, 1, 3, 4)
    sub = patch.reshape(grid, subpatch_size, grid, subpatch_size)
    return sub.transpose(0, 2, 1, 3)


def subpatches_to_patch(subpatches):
    """Inverse of :func:`patch_to_subpatches`."""
    subpatches = np.asarray(subpatches)
    grid = subpatches.shape[0]
    b = subpatches.shape[2]
    if subpatches.ndim == 5:
        channels = subpatches.shape[4]
        patch = subpatches.transpose(0, 2, 1, 3, 4).reshape(grid * b, grid * b, channels)
    else:
        patch = subpatches.transpose(0, 2, 1, 3).reshape(grid * b, grid * b)
    return patch


def subpatches_to_tokens(subpatches):
    """Flatten a sub-patch grid into transformer tokens ``(grid², b²·C)``."""
    subpatches = np.asarray(subpatches)
    grid = subpatches.shape[0]
    return subpatches.reshape(grid * grid, -1)


def tokens_to_subpatches(tokens, grid_size, subpatch_size, channels=1):
    """Inverse of :func:`subpatches_to_tokens`."""
    tokens = np.asarray(tokens)
    if channels > 1:
        shape = (grid_size, grid_size, subpatch_size, subpatch_size, channels)
    else:
        shape = (grid_size, grid_size, subpatch_size, subpatch_size)
    return tokens.reshape(shape)


def patches_to_tokens(patches, subpatch_size):
    """Tokenize a whole batch of patches with one reshape/transpose.

    ``patches`` has shape ``(count, n, n[, channels])``; the result has shape
    ``(count, (n/b)², b²·channels)`` and matches applying
    :func:`patch_to_subpatches` + :func:`subpatches_to_tokens` per patch.
    """
    patches = np.asarray(patches)
    count, n = patches.shape[0], patches.shape[1]
    if n % subpatch_size != 0:
        raise ValueError(f"patch size {n} not divisible by subpatch size {subpatch_size}")
    grid, b = n // subpatch_size, subpatch_size
    if patches.ndim == 4:
        channels = patches.shape[3]
        sub = patches.reshape(count, grid, b, grid, b, channels).transpose(0, 1, 3, 2, 4, 5)
        return sub.reshape(count, grid * grid, b * b * channels)
    sub = patches.reshape(count, grid, b, grid, b).transpose(0, 1, 3, 2, 4)
    return sub.reshape(count, grid * grid, b * b)


def tokens_to_patches(tokens, grid_size, subpatch_size, channels=1):
    """Inverse of :func:`patches_to_tokens` for a whole batch at once."""
    tokens = np.asarray(tokens)
    count, grid, b = tokens.shape[0], grid_size, subpatch_size
    if channels > 1:
        sub = tokens.reshape(count, grid, grid, b, b, channels).transpose(0, 1, 3, 2, 4, 5)
        return sub.reshape(count, grid * b, grid * b, channels)
    sub = tokens.reshape(count, grid, grid, b, b).transpose(0, 1, 3, 2, 4)
    return sub.reshape(count, grid * b, grid * b)


def two_stage_patchify(image, patch_size, subpatch_size):
    """Full two-stage patchify: image → patches → sub-patch token batches.

    All patches are tokenized by one batched reshape/transpose
    (:func:`patches_to_tokens`) — there is no per-patch Python loop.

    Returns
    -------
    (tokens, grid_shape, original_shape):
        ``tokens`` has shape ``(num_patches, tokens_per_patch, token_dim)``.
    """
    patches, grid_shape, original_shape = image_to_patches(image, patch_size)
    return patches_to_tokens(patches, subpatch_size), grid_shape, original_shape


def attention_complexity(height, width, patch_size=None, subpatch_size=1, d_model=1):
    """Attention MAC count for an image under the two-stage patchify.

    With ``patch_size=None`` the naive single-stage cost ``O((hw/b²)² · d)``
    is returned (the quantity the paper reports as infeasible for 256×256
    pixel-token prediction); otherwise the patch-confined cost
    ``O(hw·n²/b⁴ · d)``.
    """
    pixels = height * width
    if patch_size is None:
        tokens = pixels / (subpatch_size ** 2)
        return float(tokens ** 2 * d_model)
    tokens_per_patch = (patch_size / subpatch_size) ** 2
    num_patches = pixels / (patch_size ** 2)
    return float(num_patches * tokens_per_patch ** 2 * d_model)
