"""Erase-and-squeeze operations (paper Section III-A).

Given an erase mask over the sub-patch grid (1 = keep, 0 = erase), the edge
device drops the erased sub-patches and horizontally packs the survivors of
each sub-patch row next to each other ("squeeze"), producing a smaller
rectangular patch — and, applied to every patch of an image, a smaller image
that any off-the-shelf codec can compress.  On the server side the inverse
("unsqueeze") scatters the transmitted sub-patches back to their original
grid positions, filling the erased slots with zeros or a neighbouring
sub-patch before transformer reconstruction.

The squeeze requires the mask to erase the *same number* of sub-patches in
every row (which the row-based conditional sampler guarantees); masks that do
not satisfy this are rejected with a clear error.
"""

from __future__ import annotations

import numpy as np

from .patchify import (
    image_to_patches,
    patch_to_subpatches,
    patches_to_image,
    subpatches_to_patch,
)

__all__ = [
    "validate_balanced_mask",
    "erase_patch",
    "squeeze_patch",
    "unsqueeze_patch",
    "erase_and_squeeze_image",
    "unsqueeze_image",
    "squeezed_shape",
]


def validate_balanced_mask(mask):
    """Check the mask erases the same number of sub-patches in every row.

    Returns the per-row kept count on success.
    """
    mask = np.asarray(mask)
    kept_per_row = mask.sum(axis=1)
    if not np.all(kept_per_row == kept_per_row[0]):
        raise ValueError(
            "squeeze requires a row-balanced mask (same number of erased sub-patches "
            f"per row); got per-row kept counts {kept_per_row.tolist()}"
        )
    return int(kept_per_row[0])


def erase_patch(patch, mask, subpatch_size, fill_value=0.0):
    """Zero out the erased sub-patches of a patch (no squeezing).

    Useful for visualisation and for measuring what a codec does to a
    partially-erased (but not packed) image.
    """
    subpatches = patch_to_subpatches(patch, subpatch_size).copy()
    mask = np.asarray(mask, dtype=bool)
    subpatches[~mask] = fill_value
    return subpatches_to_patch(subpatches)


def squeeze_patch(patch, mask, subpatch_size, direction="horizontal"):
    """Remove erased sub-patches and pack the survivors of each row together.

    Parameters
    ----------
    direction:
        ``"horizontal"`` packs survivors within each sub-patch row (output is
        ``n × kept·b``); ``"vertical"`` operates on columns instead.
    """
    if direction not in ("horizontal", "vertical"):
        raise ValueError("direction must be 'horizontal' or 'vertical'")
    mask = np.asarray(mask, dtype=bool)
    if direction == "vertical":
        transposed = patch.swapaxes(0, 1) if patch.ndim == 2 else patch.transpose(1, 0, 2)
        squeezed = squeeze_patch(transposed, mask.T, subpatch_size, "horizontal")
        return squeezed.swapaxes(0, 1) if squeezed.ndim == 2 else squeezed.transpose(1, 0, 2)
    kept_per_row = validate_balanced_mask(mask)
    subpatches = patch_to_subpatches(patch, subpatch_size)
    grid = mask.shape[0]
    rows = []
    for row in range(grid):
        kept = subpatches[row][mask[row]]
        rows.append(kept)
    packed = np.stack(rows)  # (grid, kept_per_row, b, b[, C])
    return subpatches_to_patch_rect(packed, kept_per_row)


def subpatches_to_patch_rect(subpatch_rows, kept_per_row):
    """Assemble a (possibly non-square) grid of sub-patches into an image block."""
    subpatch_rows = np.asarray(subpatch_rows)
    grid_rows = subpatch_rows.shape[0]
    b = subpatch_rows.shape[2]
    if subpatch_rows.ndim == 5:
        channels = subpatch_rows.shape[4]
        block = subpatch_rows.transpose(0, 2, 1, 3, 4).reshape(grid_rows * b, kept_per_row * b, channels)
    else:
        block = subpatch_rows.transpose(0, 2, 1, 3).reshape(grid_rows * b, kept_per_row * b)
    return block


def _rect_to_subpatch_rows(block, kept_per_row, subpatch_size):
    """Inverse of :func:`subpatches_to_patch_rect`."""
    block = np.asarray(block)
    grid_rows = block.shape[0] // subpatch_size
    if block.ndim == 3:
        channels = block.shape[2]
        rows = block.reshape(grid_rows, subpatch_size, kept_per_row, subpatch_size, channels)
        return rows.transpose(0, 2, 1, 3, 4)
    rows = block.reshape(grid_rows, subpatch_size, kept_per_row, subpatch_size)
    return rows.transpose(0, 2, 1, 3)


def unsqueeze_patch(squeezed, mask, subpatch_size, fill="zero"):
    """Scatter squeezed sub-patches back to their original grid positions.

    ``fill`` controls the content of erased positions before reconstruction:
    ``"zero"`` (paper default — the reconstructor receives zero vectors),
    ``"neighbor"`` (copy the nearest kept sub-patch in the same row, the
    alternative shown in Fig. 2(b) right), or ``"mean"`` (row mean).
    """
    if fill not in ("zero", "neighbor", "mean"):
        raise ValueError("fill must be 'zero', 'neighbor' or 'mean'")
    mask = np.asarray(mask, dtype=bool)
    kept_per_row = validate_balanced_mask(mask)
    grid = mask.shape[0]
    packed = _rect_to_subpatch_rows(squeezed, kept_per_row, subpatch_size)
    sample = packed[0, 0]
    full_shape = (grid, grid) + sample.shape
    subpatches = np.zeros(full_shape, dtype=np.float64)
    for row in range(grid):
        kept_columns = np.flatnonzero(mask[row])
        subpatches[row, kept_columns] = packed[row]
        if fill == "zero":
            continue
        erased_columns = np.flatnonzero(~mask[row])
        if kept_columns.size == 0:
            continue
        for column in erased_columns:
            if fill == "neighbor":
                nearest = kept_columns[np.argmin(np.abs(kept_columns - column))]
                subpatches[row, column] = subpatches[row, nearest]
            else:  # mean
                subpatches[row, column] = packed[row].mean(axis=0)
    return subpatches_to_patch(subpatches)


def squeezed_shape(image_shape, patch_size, subpatch_size, erase_per_row,
                   direction="horizontal"):
    """Shape of the squeezed image produced by :func:`erase_and_squeeze_image`."""
    height, width = image_shape[:2]
    padded_h = height + (-height) % patch_size
    padded_w = width + (-width) % patch_size
    grid = patch_size // subpatch_size
    kept = grid - erase_per_row
    if direction == "horizontal":
        new_w = padded_w * kept // grid
        spatial = (padded_h, new_w)
    else:
        new_h = padded_h * kept // grid
        spatial = (new_h, padded_w)
    if len(image_shape) == 3:
        return spatial + (image_shape[2],)
    return spatial


def erase_and_squeeze_image(image, mask, patch_size, subpatch_size, direction="horizontal"):
    """Apply erase-and-squeeze with a shared mask to every patch of an image.

    Returns ``(squeezed_image, grid_shape, original_shape)`` — the latter two
    are needed by :func:`unsqueeze_image`.
    """
    patches, grid_shape, original_shape = image_to_patches(image, patch_size)
    squeezed_patches = np.stack([
        squeeze_patch(patch, mask, subpatch_size, direction) for patch in patches
    ])
    rows, cols = grid_shape
    ph, pw = squeezed_patches.shape[1], squeezed_patches.shape[2]
    if squeezed_patches.ndim == 4:
        channels = squeezed_patches.shape[3]
        grid = squeezed_patches.reshape(rows, cols, ph, pw, channels)
        squeezed = grid.transpose(0, 2, 1, 3, 4).reshape(rows * ph, cols * pw, channels)
    else:
        grid = squeezed_patches.reshape(rows, cols, ph, pw)
        squeezed = grid.transpose(0, 2, 1, 3).reshape(rows * ph, cols * pw)
    return squeezed, grid_shape, original_shape


def unsqueeze_image(squeezed, mask, patch_size, subpatch_size, grid_shape, original_shape,
                    fill="zero", direction="horizontal"):
    """Inverse of :func:`erase_and_squeeze_image` (erased slots filled per ``fill``)."""
    mask = np.asarray(mask, dtype=bool)
    rows, cols = grid_shape
    grid = mask.shape[0]
    kept = int(mask.sum(axis=1)[0])
    if direction == "horizontal":
        ph, pw = patch_size, kept * subpatch_size
    else:
        ph, pw = kept * subpatch_size, patch_size
    if squeezed.ndim == 3:
        channels = squeezed.shape[2]
        patches = squeezed.reshape(rows, ph, cols, pw, channels).transpose(0, 2, 1, 3, 4)
        patches = patches.reshape(rows * cols, ph, pw, channels)
    else:
        patches = squeezed.reshape(rows, ph, cols, pw).transpose(0, 2, 1, 3)
        patches = patches.reshape(rows * cols, ph, pw)
    if direction == "vertical":
        restored = [
            unsqueeze_patch(
                patch.swapaxes(0, 1) if patch.ndim == 2 else patch.transpose(1, 0, 2),
                mask.T, subpatch_size, fill,
            )
            for patch in patches
        ]
        restored = [p.swapaxes(0, 1) if p.ndim == 2 else p.transpose(1, 0, 2) for p in restored]
    else:
        restored = [unsqueeze_patch(patch, mask, subpatch_size, fill) for patch in patches]
    return patches_to_image(np.stack(restored), grid_shape, original_shape)
