"""Erase-and-squeeze operations (paper Section III-A).

Given an erase mask over the sub-patch grid (1 = keep, 0 = erase), the edge
device drops the erased sub-patches and horizontally packs the survivors of
each sub-patch row next to each other ("squeeze"), producing a smaller
rectangular patch — and, applied to every patch of an image, a smaller image
that any off-the-shelf codec can compress.  On the server side the inverse
("unsqueeze") scatters the transmitted sub-patches back to their original
grid positions, filling the erased slots with zeros or a neighbouring
sub-patch before transformer reconstruction.

The squeeze requires the mask to erase the *same number* of sub-patches in
every row (which the row-based conditional sampler guarantees); masks that do
not satisfy this are rejected with a clear error.

Because one mask is shared by every patch of an image (and typically by many
images), all per-mask decisions are made **once** in a cached
:class:`SqueezePlan` holding gather/scatter index arrays; applying the plan
is a single fancy-index operation over the full
``(num_patches, grid, grid, b, b[, C])`` sub-patch tensor — no Python loop
over patches or rows ever runs on the hot path.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..image import pad_to_multiple
from .patchify import (
    image_to_patches,
    patch_to_subpatches,
    patches_to_image,
    subpatches_to_patch,
)

__all__ = [
    "SqueezePlan",
    "BlockGatherPlan",
    "get_squeeze_plan",
    "validate_balanced_mask",
    "erase_patch",
    "squeeze_patch",
    "unsqueeze_patch",
    "erase_and_squeeze_image",
    "unsqueeze_image",
    "squeezed_shape",
]

_FILLS = ("zero", "neighbor", "mean")


def validate_balanced_mask(mask):
    """Check the mask erases the same number of sub-patches in every row.

    Returns the per-row kept count on success.
    """
    mask = np.asarray(mask)
    kept_per_row = mask.sum(axis=1)
    if not np.all(kept_per_row == kept_per_row[0]):
        raise ValueError(
            "squeeze requires a row-balanced mask (same number of erased sub-patches "
            f"per row); got per-row kept counts {kept_per_row.tolist()}"  # lint: allow RP004 - error-message formatting
        )
    return int(kept_per_row[0])


class SqueezePlan:
    """Precomputed gather/scatter indices for one ``(mask, geometry)`` pair.

    Construction is the only place decisions depend on mask *content*; every
    ``apply`` method below is a fixed sequence of reshapes, transposes and a
    single fancy-index gather/scatter over the batched sub-patch tensor.
    Plans are cached by :func:`get_squeeze_plan`, keyed on the mask bytes and
    geometry, so repeated images with a shared mask pay the planning cost
    once.
    """

    def __init__(self, mask, subpatch_size, direction="horizontal"):
        if direction not in ("horizontal", "vertical"):
            raise ValueError("direction must be 'horizontal' or 'vertical'")
        mask = np.asarray(mask, dtype=bool)
        # internally the plan always works in the horizontal frame; vertical
        # squeezes transpose the patch in and out and use the transposed mask
        work = mask.T if direction == "vertical" else mask
        self.mask = mask
        self.direction = direction
        self.subpatch_size = int(subpatch_size)
        self.kept_per_row = validate_balanced_mask(work)
        self.grid = int(work.shape[0])
        self.patch_size = self.grid * self.subpatch_size

        grid, kept = self.grid, self.kept_per_row
        # kept columns of each row in ascending order: (grid, kept)
        self._kept_cols = np.ascontiguousarray(
            np.argsort(~work, axis=1, kind="stable")[:, :kept]
        )
        self._row_index = np.arange(grid)[:, None]
        self._erased_rows, self._erased_cols = np.nonzero(~work)
        # neighbour fill: for every grid position, the packed slot to copy —
        # kept positions map to themselves, erased ones to the nearest kept
        # column of the same row (ties break to the smaller column, matching
        # the scalar argmin semantics of the original implementation)
        if kept:
            distance = np.abs(self._kept_cols[:, None, :] - np.arange(grid)[None, :, None])
            self._neighbor_slot = distance.argmin(axis=2)  # (grid, grid)
        else:
            self._neighbor_slot = None

    def require_patch_size(self, patch_size):
        """Raise unless this plan's mask covers ``patch_size``-pixel patches.

        Callers that pair a mask with an externally-configured patch size
        (the pipeline, the functional wrappers) use this single guard
        instead of re-deriving the geometry check.
        """
        if self.patch_size != patch_size:
            raise ValueError(
                f"mask grid {self.grid} with subpatch size {self.subpatch_size} "
                f"covers {self.patch_size}-pixel patches, not {patch_size}"
            )
        return self

    # ------------------------------------------------------------------ #
    # batched patch-level apply
    # ------------------------------------------------------------------ #
    def squeeze_patches(self, patches):
        """Squeeze a batch of patches ``(P, n, n[, C])`` in one gather."""
        patches = np.asarray(patches)
        if self.direction == "vertical":
            patches = patches.swapaxes(1, 2)
        count = patches.shape[0]
        b, grid, kept = self.subpatch_size, self.grid, self.kept_per_row
        if patches.ndim == 4:
            channels = patches.shape[3]
            sub = patches.reshape(count, grid, b, grid, b, channels).transpose(0, 1, 3, 2, 4, 5)
            packed = sub[:, self._row_index, self._kept_cols]
            out = packed.transpose(0, 1, 3, 2, 4, 5).reshape(count, grid * b, kept * b, channels)
        else:
            sub = patches.reshape(count, grid, b, grid, b).transpose(0, 1, 3, 2, 4)
            packed = sub[:, self._row_index, self._kept_cols]
            out = packed.transpose(0, 1, 3, 2, 4).reshape(count, grid * b, kept * b)
        if self.direction == "vertical":
            out = out.swapaxes(1, 2)
        return out

    def unsqueeze_patches(self, squeezed, fill="zero"):
        """Scatter a batch of squeezed patches back to full patches.

        ``fill`` controls the content of erased positions before
        reconstruction: ``"zero"`` (paper default — the reconstructor
        receives zero vectors), ``"neighbor"`` (copy the nearest kept
        sub-patch in the same row, the alternative shown in Fig. 2(b)
        right), or ``"mean"`` (row mean).
        """
        if fill not in _FILLS:
            raise ValueError("fill must be 'zero', 'neighbor' or 'mean'")
        squeezed = np.asarray(squeezed, dtype=np.float64)
        if self.direction == "vertical":
            squeezed = squeezed.swapaxes(1, 2)
        count = squeezed.shape[0]
        b, grid, kept = self.subpatch_size, self.grid, self.kept_per_row
        color = squeezed.ndim == 4
        tail = (squeezed.shape[3],) if color else ()
        if color:
            packed = squeezed.reshape(count, grid, b, kept, b, *tail).transpose(0, 1, 3, 2, 4, 5)
        else:
            packed = squeezed.reshape(count, grid, b, kept, b).transpose(0, 1, 3, 2, 4)
        if kept and fill == "neighbor":
            sub = packed[:, self._row_index, self._neighbor_slot]
        else:
            sub = np.zeros((count, grid, grid, b, b) + tail)
            if kept:
                sub[:, self._row_index, self._kept_cols] = packed
                if fill == "mean":
                    row_means = packed.mean(axis=2)  # (P, grid, b, b[, C])
                    sub[:, self._erased_rows, self._erased_cols] = row_means[:, self._erased_rows]
        if color:
            out = sub.transpose(0, 1, 3, 2, 4, 5).reshape(count, grid * b, grid * b, *tail)
        else:
            out = sub.transpose(0, 1, 3, 2, 4).reshape(count, grid * b, grid * b)
        if self.direction == "vertical":
            out = out.swapaxes(1, 2)
        return out

    # ------------------------------------------------------------------ #
    # image-level apply
    # ------------------------------------------------------------------ #
    def squeeze_image(self, image):
        """Erase-and-squeeze every patch of ``image`` with the shared mask.

        Returns ``(squeezed_image, grid_shape, original_shape)`` — the
        latter two are needed by :meth:`unsqueeze_image`.
        """
        patches, grid_shape, original_shape = image_to_patches(image, self.patch_size)
        squeezed = self.squeeze_patches(patches)
        rows, cols = grid_shape
        ph, pw = squeezed.shape[1], squeezed.shape[2]
        if squeezed.ndim == 4:
            channels = squeezed.shape[3]
            grid = squeezed.reshape(rows, cols, ph, pw, channels)
            merged = grid.transpose(0, 2, 1, 3, 4).reshape(rows * ph, cols * pw, channels)
        else:
            grid = squeezed.reshape(rows, cols, ph, pw)
            merged = grid.transpose(0, 2, 1, 3).reshape(rows * ph, cols * pw)
        return merged, grid_shape, original_shape

    def unsqueeze_image(self, squeezed, grid_shape, original_shape, fill="zero"):
        """Inverse of :meth:`squeeze_image` (erased slots filled per ``fill``)."""
        if fill not in _FILLS:
            raise ValueError("fill must be 'zero', 'neighbor' or 'mean'")
        squeezed = np.asarray(squeezed)
        rows, cols = grid_shape
        b, kept = self.subpatch_size, self.kept_per_row
        if self.direction == "horizontal":
            ph, pw = self.patch_size, kept * b
        else:
            ph, pw = kept * b, self.patch_size
        if squeezed.ndim == 3:
            channels = squeezed.shape[2]
            patches = squeezed.reshape(rows, ph, cols, pw, channels).transpose(0, 2, 1, 3, 4)
            patches = patches.reshape(rows * cols, ph, pw, channels)
        else:
            patches = squeezed.reshape(rows, ph, cols, pw).transpose(0, 2, 1, 3)
            patches = patches.reshape(rows * cols, ph, pw)
        restored = self.unsqueeze_patches(patches, fill=fill)
        return patches_to_image(restored, grid_shape, original_shape)

    # ------------------------------------------------------------------ #
    # fused block-codec view
    # ------------------------------------------------------------------ #
    def block_plan(self, spatial_shape, block=8):
        """Cached :class:`BlockGatherPlan` for one image geometry.

        Block codecs (JPEG) use it to gather DCT-ready blocks of the
        squeezed image straight from the original pixels — the erased
        sub-patches are never materialised, padded or blocked.  Plans are
        cached per ``(height, width, block)`` on the squeeze plan, which is
        itself cached per mask, so repeated images with a shared mask pay
        the index planning once.
        """
        key = (int(spatial_shape[0]), int(spatial_shape[1]), int(block))
        plans = getattr(self, "_block_plans", None)
        if plans is None:
            plans = self._block_plans = {}
        plan = plans.get(key)
        if plan is None:
            plan = plans[key] = BlockGatherPlan(self, key[0], key[1], block)
        return plan


class BlockGatherPlan:
    """Fused squeeze→block-codec index plan for one image geometry.

    Composes the whole reference index chain — edge-pad the original to the
    patch grid, erase-and-squeeze every patch, edge-pad the squeezed image
    to the codec block size, split into ``block×block`` blocks — into one
    gather, by running that exact chain over an index image (exact in
    float64 for any realistic image size).  The resulting plans are pure
    fancy-index applications:

    * :meth:`gather_blocks` — original channel → DCT-ready blocks of the
      padded squeezed channel (the encode fast path);
    * :meth:`squeeze_pixels` — original channel → squeezed channel (used
      for chroma that must be resampled before blocking);
    * :meth:`scatter_blocks` — decoded block pixels → zero-filled
      unsqueezed channel (the grayscale decode fast path, ``fill="zero"``
      semantics).

    Because every step of the reference chain is a gather (edge padding
    replicates existing pixels), the fused results are bit-identical to the
    unfused ``squeeze_image`` → ``pad`` → ``blocks`` pipeline.
    """

    def __init__(self, plan, height, width, block=8):
        self.block = int(block)
        self.spatial_shape = (int(height), int(width))
        patch = plan.patch_size
        padded_h = height + (-height) % patch
        padded_w = width + (-width) % patch
        self.padded_original = (padded_h, padded_w)
        # edge-pad composition: padded-original pixel -> original flat index
        row_src = np.minimum(np.arange(padded_h), height - 1)
        col_src = np.minimum(np.arange(padded_w), width - 1)
        index_image = (row_src[:, None] * width + col_src[None, :]).astype(np.float64)
        squeezed_index, grid_shape, _ = plan.squeeze_image(index_image)
        self.grid_shape = grid_shape
        self.squeezed_shape = squeezed_index.shape
        jpeg_padded, _ = pad_to_multiple(squeezed_index, self.block)
        self.padded_squeezed_shape = jpeg_padded.shape
        jh, jw = jpeg_padded.shape
        b = self.block
        blocked = jpeg_padded.reshape(jh // b, b, jw // b, b).transpose(0, 2, 1, 3)
        # flat-index form: np.take on the raveled channel is ~4x faster than
        # two-array fancy indexing at these sizes
        self._gather_flat = np.ascontiguousarray(blocked.reshape(-1)).astype(np.intp)
        self.num_blocks = self._gather_flat.size // (b * b)
        self._pixel_flat = np.ascontiguousarray(squeezed_index.reshape(-1)).astype(np.intp)
        # decode scatter: which decoded block pixel feeds each kept output
        # pixel of the zero-filled, unsqueezed, cropped channel
        block_ids = np.arange(self.num_blocks * b * b, dtype=np.float64)
        grid = block_ids.reshape(jh // b, jw // b, b, b).transpose(0, 2, 1, 3)
        in_padded = grid.reshape(jh, jw)
        in_squeezed = in_padded[: self.squeezed_shape[0], : self.squeezed_shape[1]]
        filled_src = plan.unsqueeze_image(in_squeezed + 1.0, grid_shape,
                                          self.padded_original, fill="zero")
        flat_src = filled_src[:height, :width].reshape(-1)
        kept = flat_src > 0
        self._scatter_dest = np.flatnonzero(kept)
        self._scatter_src = (flat_src[kept] - 1.0).astype(np.intp)

    def gather_blocks(self, channel):
        """Gather the padded squeezed channel as ``(num_blocks, b, b)`` blocks."""
        channel = np.ascontiguousarray(channel)
        b = self.block
        return np.take(channel.reshape(-1), self._gather_flat).reshape(-1, b, b)

    def squeeze_pixels(self, image):
        """Gather the squeezed image (no codec padding) from the original.

        Accepts a 2-D channel or a 3-D ``(H, W, C)`` image; the channel axis
        rides along (one row-gather instead of the reshape/transpose chain of
        ``SqueezePlan.squeeze_image``, same values bit-for-bit).
        """
        image = np.ascontiguousarray(image)
        height, width = self.squeezed_shape
        if image.ndim == 3:
            channels = image.shape[2]
            flat = np.take(image.reshape(-1, channels), self._pixel_flat, axis=0)
            return flat.reshape(height, width, channels)
        return np.take(image.reshape(-1), self._pixel_flat).reshape(height, width)

    def scatter_blocks(self, block_values, channels=None):
        """Scatter decoded block pixels into a zero-filled unsqueezed channel.

        ``block_values`` is the decoded ``(num_blocks, b, b)[, C]`` pixel
        array; the result is the cropped ``fill="zero"`` unsqueezed image of
        :attr:`spatial_shape` (plus a channel axis when ``channels`` is
        given).
        """
        height, width = self.spatial_shape
        if channels:
            flat = block_values.reshape(-1, channels)
            out = np.zeros((height * width, channels))
            out[self._scatter_dest] = flat[self._scatter_src]
            return out.reshape(height, width, channels)
        flat = block_values.reshape(-1)
        out = np.zeros(height * width)
        out[self._scatter_dest] = flat[self._scatter_src]
        return out.reshape(height, width)


# ---------------------------------------------------------------------- #
# plan cache
# ---------------------------------------------------------------------- #
_PLAN_CACHE = OrderedDict()
_PLAN_CACHE_MAX = 128


def get_squeeze_plan(mask, subpatch_size, direction="horizontal"):
    """Return the (cached) :class:`SqueezePlan` for a mask and geometry.

    Plans are keyed on the mask bytes, mask shape, sub-patch size and
    direction; the cache holds the most recent ``128`` plans.
    """
    mask = np.asarray(mask, dtype=bool)
    key = (mask.tobytes(), mask.shape, int(subpatch_size), direction)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = SqueezePlan(mask, subpatch_size, direction)
        _PLAN_CACHE[key] = plan
        if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    else:
        _PLAN_CACHE.move_to_end(key)
    return plan


# ---------------------------------------------------------------------- #
# functional API (thin wrappers over cached plans)
# ---------------------------------------------------------------------- #
def erase_patch(patch, mask, subpatch_size, fill_value=0.0):
    """Zero out the erased sub-patches of a patch (no squeezing).

    Useful for visualisation and for measuring what a codec does to a
    partially-erased (but not packed) image.
    """
    subpatches = patch_to_subpatches(patch, subpatch_size).copy()
    mask = np.asarray(mask, dtype=bool)
    subpatches[~mask] = fill_value
    return subpatches_to_patch(subpatches)


def squeeze_patch(patch, mask, subpatch_size, direction="horizontal"):
    """Remove erased sub-patches and pack the survivors of each row together.

    Parameters
    ----------
    direction:
        ``"horizontal"`` packs survivors within each sub-patch row (output is
        ``n × kept·b``); ``"vertical"`` operates on columns instead.
    """
    plan = get_squeeze_plan(mask, subpatch_size, direction)
    return plan.squeeze_patches(np.asarray(patch)[None])[0]


def unsqueeze_patch(squeezed, mask, subpatch_size, fill="zero"):
    """Scatter squeezed sub-patches back to their original grid positions.

    See :meth:`SqueezePlan.unsqueeze_patches` for the ``fill`` semantics.
    """
    if fill not in _FILLS:
        raise ValueError("fill must be 'zero', 'neighbor' or 'mean'")
    plan = get_squeeze_plan(mask, subpatch_size)
    return plan.unsqueeze_patches(np.asarray(squeezed)[None], fill=fill)[0]


def squeezed_shape(image_shape, patch_size, subpatch_size, erase_per_row,
                   direction="horizontal"):
    """Shape of the squeezed image produced by :func:`erase_and_squeeze_image`."""
    height, width = image_shape[:2]
    padded_h = height + (-height) % patch_size
    padded_w = width + (-width) % patch_size
    grid = patch_size // subpatch_size
    kept = grid - erase_per_row
    if direction == "horizontal":
        new_w = padded_w * kept // grid
        spatial = (padded_h, new_w)
    else:
        new_h = padded_h * kept // grid
        spatial = (new_h, padded_w)
    if len(image_shape) == 3:
        return spatial + (image_shape[2],)
    return spatial


def erase_and_squeeze_image(image, mask, patch_size, subpatch_size, direction="horizontal"):
    """Apply erase-and-squeeze with a shared mask to every patch of an image.

    Returns ``(squeezed_image, grid_shape, original_shape)`` — the latter two
    are needed by :func:`unsqueeze_image`.
    """
    plan = get_squeeze_plan(mask, subpatch_size, direction).require_patch_size(patch_size)
    return plan.squeeze_image(image)


def unsqueeze_image(squeezed, mask, patch_size, subpatch_size, grid_shape, original_shape,
                    fill="zero", direction="horizontal"):
    """Inverse of :func:`erase_and_squeeze_image` (erased slots filled per ``fill``)."""
    plan = get_squeeze_plan(mask, subpatch_size, direction).require_patch_size(patch_size)
    return plan.unsqueeze_image(squeezed, grid_shape, original_shape, fill=fill)
