"""Training loops for the Easz reconstruction network (paper Section III-B/IV-A).

Two phases mirror the paper:

* **offline pre-training** on CIFAR-like 32×32 patches with randomly sampled
  erase masks (default erase ratio 0.25), loss ``L1 + λ·LPIPS`` (Eq. 2,
  λ = 0.3), AdamW with lr 2.8e-4 and weight decay 0.05;
* **fine-tuning** on the target dataset (Kodak-like), identical loss, lower
  step count — the experiment behind Fig. 7d.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..datasets.loaders import PatchBatcher
from ..metrics.lpips import PerceptualLoss
from .config import EaszConfig
from .patchify import patch_to_subpatches, subpatches_to_tokens
from .reconstruction import EaszReconstructor
from .sampler import RowConditionalSampler

__all__ = ["TrainingResult", "EaszTrainer", "reconstruction_loss"]


@dataclass
class TrainingResult:
    """Summary of one training run."""

    losses: list = field(default_factory=list)
    l1_losses: list = field(default_factory=list)
    perceptual_losses: list = field(default_factory=list)
    steps: int = 0

    @property
    def final_loss(self):
        """Loss value at the last recorded step (``nan`` if never trained)."""
        return self.losses[-1] if self.losses else float("nan")

    @property
    def initial_loss(self):
        """Loss value at the first recorded step (``nan`` if never trained)."""
        return self.losses[0] if self.losses else float("nan")


def reconstruction_loss(prediction, target, patch_size, loss_lambda=0.3,
                        perceptual=None, mask=None, erased_weight=1.0, kept_weight=0.1):
    """Paper Eq. 2: ``L1(x, y) + λ · LPIPS(x, y)`` on token batches.

    ``prediction`` and ``target`` are tensors/arrays of shape
    ``(batch, tokens, token_dim)``; the perceptual term is evaluated on the
    re-assembled patches.  When ``mask`` (1 = kept, 0 = erased) is given the
    L1 term is re-weighted so the erased positions — the only ones the
    receiver actually uses — dominate the objective (``erased_weight`` vs
    ``kept_weight``), in the spirit of masked-auto-encoder training.
    Returns ``(total, l1, perceptual)`` tensors.
    """
    prediction = nn.as_tensor(prediction)
    target = nn.as_tensor(target)
    if mask is not None:
        flat_mask = np.asarray(mask, dtype=np.float64).reshape(1, -1, 1)
        weights = kept_weight * flat_mask + erased_weight * (1.0 - flat_mask)
        weights = weights / weights.mean()
        l1 = ((prediction - target).abs() * nn.Tensor(weights)).mean()
    else:
        l1 = (prediction - target).abs().mean()
    if loss_lambda <= 0 or perceptual is None:
        return l1, l1, nn.Tensor(0.0)
    batch, tokens, token_dim = prediction.shape
    grid = int(np.sqrt(tokens))
    b = int(np.sqrt(token_dim))
    # (batch, grid, grid, b, b) -> (batch, grid*b, grid*b)
    def to_patches(x):
        x = x.reshape(batch, grid, grid, b, b)
        x = x.transpose(0, 1, 3, 2, 4)
        return x.reshape(batch, grid * b, grid * b)
    perceptual_term = perceptual(to_patches(prediction), to_patches(target))
    total = l1 + loss_lambda * perceptual_term
    return total, l1, perceptual_term


class EaszTrainer:
    """Drives pre-training and fine-tuning of an :class:`EaszReconstructor`."""

    def __init__(self, model=None, config=None, use_perceptual_loss=True, seed=None):
        self.config = config or (model.config if model is not None else EaszConfig())
        self.model = model or EaszReconstructor(self.config)
        self.use_perceptual_loss = use_perceptual_loss and self.config.loss_lambda > 0
        self.perceptual = PerceptualLoss() if self.use_perceptual_loss else None
        self.optimizer = nn.AdamW(
            self.model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._rng = np.random.default_rng(self.config.seed if seed is None else seed)

    # ------------------------------------------------------------------ #
    def _random_mask(self):
        """Random-ratio row-conditional mask used for robust pre-training."""
        cfg = self.config
        max_per_row = max(1, cfg.grid_size // 2)
        erase_per_row = int(self._rng.integers(1, max_per_row + 1))
        sampler = RowConditionalSampler(
            cfg.grid_size, erase_per_row,
            cfg.intra_row_min_distance if erase_per_row * (cfg.intra_row_min_distance + 1) <= cfg.grid_size else 0,
            cfg.inter_row_min_distance,
        )
        return sampler.sample_mask(rng=self._rng)

    def _patches_to_tokens(self, patches):
        cfg = self.config
        return np.stack([
            subpatches_to_tokens(patch_to_subpatches(patch, cfg.subpatch_size))
            for patch in patches
        ])

    def train_on_batches(self, batch_iterable, result=None, log_every=0):
        """Run one optimisation step per batch of ``(batch, n, n)`` patches."""
        cfg = self.config
        result = result or TrainingResult()
        self.model.train()
        for patches in batch_iterable:
            patches = np.asarray(patches, dtype=np.float64)
            if patches.shape[1] != cfg.patch_size:
                raise ValueError(
                    f"training patches must be {cfg.patch_size}x{cfg.patch_size}, "
                    f"got {patches.shape[1:]}"
                )
            tokens = self._patches_to_tokens(patches)
            mask = self._random_mask()
            self.optimizer.zero_grad()
            prediction = self.model(tokens, mask)
            total, l1, perceptual = reconstruction_loss(
                prediction, tokens, cfg.patch_size,
                loss_lambda=cfg.loss_lambda if self.use_perceptual_loss else 0.0,
                perceptual=self.perceptual,
                mask=mask,
            )
            total.backward()
            nn.clip_grad_norm(self.model.parameters(), 5.0)
            self.optimizer.step()
            result.losses.append(float(total.data))
            result.l1_losses.append(float(l1.data))
            result.perceptual_losses.append(float(perceptual.data))
            result.steps += 1
            if log_every and result.steps % log_every == 0:
                print(f"step {result.steps}: loss={result.losses[-1]:.5f}")
        self.model.eval()
        return result

    # ------------------------------------------------------------------ #
    def pretrain(self, dataset, steps=100, batch_size=None, seed=0, log_every=0):
        """Offline pre-training on a patch dataset (CIFAR-like by default)."""
        cfg = self.config
        batcher = PatchBatcher(dataset, patch_size=cfg.patch_size,
                               batch_size=batch_size or cfg.batch_size, seed=seed)
        return self.train_on_batches(batcher.batches(steps), log_every=log_every)

    def finetune(self, dataset, steps=50, batch_size=None, seed=1, log_every=0):
        """Fine-tune on the evaluation dataset (paper Fig. 7d)."""
        return self.pretrain(dataset, steps=steps, batch_size=batch_size,
                             seed=seed, log_every=log_every)

    # ------------------------------------------------------------------ #
    def evaluate_mse(self, patches, mask):
        """Reconstruction MSE on erased positions only, for a fixed mask."""
        cfg = self.config
        tokens = self._patches_to_tokens(np.asarray(patches, dtype=np.float64))
        reconstructed = self.model.reconstruct_tokens(tokens, mask, keep_original=False)
        flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
        erased = ~flat_mask
        if not erased.any():
            return 0.0
        diff = reconstructed[:, erased, :] - tokens[:, erased, :]
        return float(np.mean(diff ** 2))
