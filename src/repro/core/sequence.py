"""Frame-sequence (streaming) support for Easz.

The camera deployments that motivate the paper produce *streams* of frames,
not single stills.  Two stream-level questions fall out of the Easz design:

* **mask refresh** — regenerating the erase mask every frame diversifies
  which sub-patches are erased over time (no region is permanently degraded),
  at the cost of transmitting a fresh mask/seed; holding one mask amortises
  the side channel but concentrates erasure;
* **temporal consistency** — independently reconstructed frames can flicker
  in the erased regions; the flicker index quantifies it so the refresh
  policy can be chosen deliberately.

:class:`EaszStreamEncoder` / :class:`EaszStreamDecoder` wrap the single-image
pipeline for a sequence and a :class:`StreamReport` aggregates rate, quality
and flicker statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..image import to_float
from ..metrics.psnr import psnr
from .config import EaszConfig
from .pipeline import EaszDecoder, EaszEncoder

__all__ = [
    "StreamReport",
    "EaszStreamEncoder",
    "EaszStreamDecoder",
    "flicker_index",
    "encode_decode_stream",
]


def flicker_index(original_frames, reconstructed_frames):
    """Excess frame-to-frame variation introduced by the pipeline.

    Defined as the mean absolute temporal difference of the reconstruction
    minus that of the original sequence (0 = the reconstruction flickers no
    more than the content itself; larger = visible pumping in erased areas).
    """
    original_frames = [np.asarray(frame, dtype=np.float64) for frame in original_frames]
    reconstructed_frames = [np.asarray(frame, dtype=np.float64) for frame in reconstructed_frames]
    if len(original_frames) != len(reconstructed_frames):
        raise ValueError("original and reconstructed sequences differ in length")
    if len(original_frames) < 2:
        return 0.0
    original_motion = np.mean([np.abs(b - a).mean()
                               for a, b in zip(original_frames, original_frames[1:])])
    reconstructed_motion = np.mean([np.abs(b - a).mean()
                                    for a, b in zip(reconstructed_frames, reconstructed_frames[1:])])
    return float(max(0.0, reconstructed_motion - original_motion))


@dataclass
class StreamReport:
    """Aggregate statistics of one encoded/decoded frame sequence."""

    num_frames: int
    mean_bpp: float
    mean_psnr_db: float
    flicker: float
    mask_refreshes: int
    mask_bytes_total: int
    per_frame: list = field(default_factory=list)

    def as_dict(self):
        """Plain-dict view used by examples and tests."""
        return {
            "num_frames": self.num_frames,
            "mean_bpp": self.mean_bpp,
            "mean_psnr_db": self.mean_psnr_db,
            "flicker": self.flicker,
            "mask_refreshes": self.mask_refreshes,
            "mask_bytes_total": self.mask_bytes_total,
        }


class EaszStreamEncoder:
    """Edge-side encoder for a frame sequence with a mask-refresh policy.

    Parameters
    ----------
    config, base_codec:
        As for :class:`repro.core.EaszEncoder`.
    mask_refresh_interval:
        Regenerate the erase mask every ``k`` frames (1 = every frame,
        0 or ``None`` = generate once and reuse for the whole stream).
    """

    def __init__(self, config=None, base_codec=None, mask_refresh_interval=1, seed=0):
        self.config = config or EaszConfig()
        self.encoder = EaszEncoder(self.config, base_codec, seed=seed)
        self.mask_refresh_interval = int(mask_refresh_interval or 0)
        self._current_mask = None
        self._frames_encoded = 0
        self.mask_refreshes = 0

    def _mask_for_next_frame(self):
        needs_refresh = (
            self._current_mask is None
            or (self.mask_refresh_interval > 0
                and self._frames_encoded % self.mask_refresh_interval == 0)
        )
        if needs_refresh:
            self._current_mask = self.encoder.generate_mask()
            self.mask_refreshes += 1
        return self._current_mask

    def encode(self, frame):
        """Encode one frame, refreshing the mask per the configured policy."""
        mask = self._mask_for_next_frame()
        package = self.encoder.encode(to_float(frame), mask=mask)
        self._frames_encoded += 1
        return package

    def encode_sequence(self, frames):
        """Encode an iterable of frames; returns the list of packages."""
        return [self.encode(frame) for frame in frames]


class EaszStreamDecoder:
    """Server-side decoder for a sequence of Easz packages."""

    def __init__(self, model=None, config=None, base_codec=None, fill="zero"):
        self.decoder = EaszDecoder(model=model, config=config, base_codec=base_codec, fill=fill)

    def decode(self, package, reconstruct=True):
        """Decode one package."""
        return self.decoder.decode(package, reconstruct=reconstruct)

    def decode_sequence(self, packages, reconstruct=True):
        """Decode a list of packages back into frames."""
        return [self.decode(package, reconstruct=reconstruct) for package in packages]


def encode_decode_stream(frames, config=None, base_codec=None, model=None,
                         mask_refresh_interval=1, fill="zero", seed=0):
    """Round-trip a frame sequence and report rate / quality / flicker.

    This is the one-call entry point the streaming example and tests use;
    it returns ``(reconstructed_frames, StreamReport)``.
    """
    frames = [to_float(frame) for frame in frames]
    if not frames:
        raise ValueError("the frame sequence is empty")
    encoder = EaszStreamEncoder(config=config, base_codec=base_codec,
                                mask_refresh_interval=mask_refresh_interval, seed=seed)
    decoder = EaszStreamDecoder(model=model, config=encoder.config, base_codec=base_codec,
                                fill=fill)
    packages = encoder.encode_sequence(frames)
    reconstructed = decoder.decode_sequence(packages)
    per_frame = []
    for frame, reconstruction, package in zip(frames, reconstructed, packages):
        per_frame.append({
            "bpp": package.bpp(),
            "psnr_db": psnr(frame, reconstruction),
            "mask_bytes": len(package.mask_bytes),
        })
    report = StreamReport(
        num_frames=len(frames),
        mean_bpp=float(np.mean([entry["bpp"] for entry in per_frame])),
        mean_psnr_db=float(np.mean([entry["psnr_db"] for entry in per_frame])),
        flicker=flicker_index(frames, reconstructed),
        mask_refreshes=encoder.mask_refreshes,
        mask_bytes_total=int(sum(entry["mask_bytes"] for entry in per_frame)),
        per_frame=per_frame,
    )
    return reconstructed, report
