"""Adaptive compression-level control for Easz (the paper's "agility").

Easz changes its compression level by changing a single sampler parameter —
the erase ratio — so the edge device can re-target the bitrate per image
without loading a different model (the cost conventional NN codecs pay in
Fig. 1).  This module provides the controllers that exploit that property:

* :class:`BitrateController` — pick the smallest erase ratio whose compressed
  size meets a bits-per-pixel target (the operating points of Table II);
* :class:`BandwidthAdaptiveController` — translate a transmission-latency
  deadline over a :class:`repro.edge.WirelessChannel` into a byte budget and
  delegate to the bitrate controller;
* :class:`EraseRatioSchedule` — a streaming controller that tracks observed
  uplink throughput with an exponential moving average and adjusts the erase
  ratio between frames (used by the adaptive-bitrate and fleet examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..codecs.jpeg import JpegCodec
from ..image import image_num_pixels, to_float
from .config import EaszConfig
from .pipeline import EaszEncoder

__all__ = [
    "RateControlResult",
    "BitrateController",
    "BandwidthAdaptiveController",
    "EraseRatioSchedule",
]


@dataclass
class RateControlResult:
    """Outcome of one rate-control decision."""

    erase_per_row: int
    erase_ratio: float
    achieved_bpp: float
    target_bpp: float
    num_bytes: int
    evaluations: int = 0
    candidates: list = field(default_factory=list)

    @property
    def met_target(self):
        """Whether the achieved rate is at or below the target."""
        return self.achieved_bpp <= self.target_bpp + 1e-9


class BitrateController:
    """Selects the erase ratio that meets a bits-per-pixel target.

    The controller prefers the *least* erasure that satisfies the rate
    target, because reconstruction quality degrades monotonically with the
    erase ratio (paper Fig. 7c).  The compressed size decreases monotonically
    with ``erase_per_row`` (fewer pixels reach the base codec), so a linear
    sweep over the — small — set of levels is exact and cheap; results are
    cached per (image id, target) for repeated queries.

    Parameters
    ----------
    config:
        Base :class:`EaszConfig`; its ``erase_per_row`` is overridden by the
        controller.
    base_codec:
        The codec compressing the squeezed image (JPEG quality 75 default).
    max_erase_per_row:
        Upper bound on the erase level (defaults to ``grid_size - 1``).
    """

    def __init__(self, config=None, base_codec=None, max_erase_per_row=None, seed=0):
        self.config = config or EaszConfig()
        self.base_codec = base_codec if base_codec is not None else JpegCodec(quality=75)
        limit = self.config.grid_size - 1
        self.max_erase_per_row = limit if max_erase_per_row is None else min(limit, max_erase_per_row)
        self.seed = seed

    # ------------------------------------------------------------------ #
    def measure(self, image, erase_per_row):
        """Compressed size (bytes) and BPP of ``image`` at one erase level."""
        image = to_float(image)
        delta = self.config.intra_row_min_distance
        if erase_per_row * (delta + 1) > self.config.grid_size:
            # High erase levels cannot honour the spacing constraint; relax it
            # rather than refuse the level (the sampler still avoids adjacency
            # where it can).
            delta = 0
        config = replace(self.config, erase_per_row=erase_per_row,
                         intra_row_min_distance=delta)
        encoder = EaszEncoder(config, self.base_codec, seed=self.seed)
        package = encoder.encode(image)
        return package.num_bytes, package.bpp()

    def select(self, image, target_bpp):
        """Pick the smallest erase level whose BPP is at or below ``target_bpp``.

        If even the maximum erase level exceeds the target, the maximum level
        is returned with ``met_target`` false so callers can fall back to a
        coarser base-codec quality.
        """
        if target_bpp <= 0:
            raise ValueError("target_bpp must be positive")
        image = to_float(image)
        candidates = []
        chosen = None
        for level in range(0, self.max_erase_per_row + 1):
            num_bytes, bpp = self.measure(image, level)
            candidates.append((level, bpp))
            if bpp <= target_bpp:
                chosen = (level, num_bytes, bpp)
                break
        if chosen is None:
            level, bpp = candidates[-1]
            num_bytes = int(bpp * image_num_pixels(image) / 8.0)
            chosen = (level, num_bytes, bpp)
        level, num_bytes, bpp = chosen
        config = replace(self.config, erase_per_row=level)
        return RateControlResult(
            erase_per_row=level,
            erase_ratio=config.erase_ratio,
            achieved_bpp=bpp,
            target_bpp=float(target_bpp),
            num_bytes=int(num_bytes),
            evaluations=len(candidates),
            candidates=candidates,
        )

    def config_for(self, image, target_bpp):
        """Convenience: return an :class:`EaszConfig` tuned for the target."""
        result = self.select(image, target_bpp)
        return replace(self.config, erase_per_row=result.erase_per_row), result


class BandwidthAdaptiveController:
    """Chooses an erase ratio so a frame transmits within a latency deadline.

    Given a :class:`repro.edge.WirelessChannel` and a per-frame deadline, the
    channel model is inverted to obtain the byte budget that still meets the
    deadline, converted to a BPP target and passed to the
    :class:`BitrateController`.
    """

    def __init__(self, channel, config=None, base_codec=None, seed=0):
        self.channel = channel
        self.controller = BitrateController(config=config, base_codec=base_codec, seed=seed)

    def byte_budget(self, deadline_ms):
        """Largest payload (bytes) whose transmit latency is within the deadline."""
        serialisation_ms = deadline_ms - self.channel.per_transfer_overhead_ms
        if serialisation_ms <= 0:
            return 0
        factor = max(1.0, self.channel.loss_retransmission_factor)
        bits = serialisation_ms * 1e-3 * self.channel.bandwidth_mbps * 1e6 / factor
        return int(bits // 8)

    def select(self, image, deadline_ms):
        """Pick an erase level so the compressed frame meets ``deadline_ms``."""
        budget = self.byte_budget(deadline_ms)
        if budget <= 0:
            raise ValueError(
                f"deadline {deadline_ms} ms is below the channel's fixed overhead "
                f"({self.channel.per_transfer_overhead_ms} ms); no payload can meet it"
            )
        target_bpp = 8.0 * budget / image_num_pixels(to_float(image))
        result = self.controller.select(image, target_bpp)
        return result


class EraseRatioSchedule:
    """Streaming erase-ratio controller driven by observed uplink throughput.

    Maintains an exponential moving average of the goodput observed for past
    frames and maps the byte budget implied by the frame deadline onto the
    erase level.  This is the controller a camera node would run: no model
    reload, no codec reconfiguration — just a different sampler parameter for
    the next frame.
    """

    def __init__(self, config=None, frame_deadline_ms=500.0, overhead_ms=120.0,
                 smoothing=0.3, initial_throughput_bps=6e6):
        self.config = config or EaszConfig()
        self.frame_deadline_ms = float(frame_deadline_ms)
        self.overhead_ms = float(overhead_ms)
        self.smoothing = float(smoothing)
        self.throughput_bps = float(initial_throughput_bps)
        self.history = []

    def update(self, transmitted_bytes, observed_ms):
        """Fold one observed transfer into the throughput estimate."""
        effective_ms = max(1e-3, observed_ms - self.overhead_ms)
        observed_bps = transmitted_bytes * 8.0 / (effective_ms * 1e-3)
        self.throughput_bps = (
            (1.0 - self.smoothing) * self.throughput_bps + self.smoothing * observed_bps
        )
        self.history.append({
            "bytes": int(transmitted_bytes),
            "observed_ms": float(observed_ms),
            "throughput_bps": self.throughput_bps,
        })
        return self.throughput_bps

    def byte_budget(self):
        """Byte budget for the next frame under the current throughput estimate."""
        usable_ms = max(0.0, self.frame_deadline_ms - self.overhead_ms)
        return int(self.throughput_bps * usable_ms * 1e-3 / 8.0)

    def erase_per_row_for(self, image_shape, bytes_per_pixel_at_zero_erase):
        """Erase level for the next frame of ``image_shape``.

        ``bytes_per_pixel_at_zero_erase`` is the measured compressed density
        of recent frames without erasure (callers track it from the encoder's
        output); the erase level scales the pixel count reaching the codec,
        so the required kept fraction follows directly.
        """
        budget = self.byte_budget()
        pixels = image_num_pixels(image_shape)
        required = bytes_per_pixel_at_zero_erase * pixels
        if required <= 0:
            return 0
        kept_fraction = min(1.0, budget / required)
        grid = self.config.grid_size
        erase = int(np.ceil((1.0 - kept_fraction) * grid))
        return int(np.clip(erase, 0, grid - 1))
