"""End-to-end Easz pipeline: edge-side encoder, server-side decoder, codec wrapper.

This is the system of the paper's Fig. 2 (left):

* **edge / sender** (:class:`EaszEncoder`): generate an erase mask with the
  row-based conditional sampler, erase-and-squeeze the image, compress the
  squeezed image with *any* base codec (JPEG, BPG, MBT, Cheng — or none), and
  emit the payload plus the serialised mask;
* **server / receiver** (:class:`EaszDecoder`): decompress the squeezed
  image, scatter the sub-patches back (zero fill), and reconstruct the erased
  content with the lightweight transformer;
* :class:`EaszCodec` wraps both halves behind the common
  :class:`repro.codecs.base.Codec` interface so the benchmark harness can
  treat "JPEG+Easz" exactly like any other compressor.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..codecs.base import Codec, ComplexityProfile, CompressedImage
from ..codecs.jpeg import JpegCodec
from ..image import image_num_pixels, to_float
from .batch_engine import DEFAULT_CHUNK
from .config import EaszConfig
from .erase_squeeze import get_squeeze_plan
from .masks import deserialize_mask, proposed_mask, random_mask, serialize_mask
from .reconstruction import EaszReconstructor, reconstruct_batch, reconstruct_image

__all__ = ["EaszCompressed", "EaszEncoder", "EaszDecoder", "EaszCodec"]


@dataclass
class EaszCompressed:
    """Everything the edge transmits for one image."""

    codec_payload: CompressedImage
    mask_bytes: bytes
    grid_shape: tuple
    original_shape: tuple
    squeezed_shape: tuple
    config_summary: dict = field(default_factory=dict)

    @property
    def num_bytes(self):
        """Total transmitted bytes: base-codec payload + erase mask."""
        return self.codec_payload.num_bytes + len(self.mask_bytes)

    def bpp(self):
        """Bits per pixel relative to the *original* (pre-erase) image."""
        return 8.0 * self.num_bytes / image_num_pixels(self.original_shape)


class EaszEncoder:
    """Edge-side half of Easz: erase-and-squeeze + base-codec compression.

    Parameters
    ----------
    config:
        :class:`EaszConfig` controlling patch/sub-patch geometry and the
        sampler constraints.
    base_codec:
        Any :class:`repro.codecs.base.Codec`; defaults to JPEG quality 75.
        Pass ``None`` to transmit the squeezed image losslessly (Easz
        "functioning independently").
    mask_strategy:
        ``"proposed"`` (row-based conditional sampler) or ``"random"``
        (ablation baseline).
    """

    def __init__(self, config=None, base_codec=None, mask_strategy="proposed", seed=None):
        self.config = config or EaszConfig()
        if base_codec is None:
            base_codec = JpegCodec(quality=75)
        self.base_codec = base_codec
        if mask_strategy not in ("proposed", "random"):
            raise ValueError("mask_strategy must be 'proposed' or 'random'")
        self.mask_strategy = mask_strategy
        self._rng = np.random.default_rng(self.config.seed if seed is None else seed)

    def generate_mask(self):
        """Draw one shared erase mask according to the configured strategy."""
        cfg = self.config
        if cfg.erase_per_row == 0:
            return np.ones((cfg.grid_size, cfg.grid_size), dtype=np.uint8)
        if self.mask_strategy == "proposed":
            return proposed_mask(cfg.grid_size, cfg.erase_per_row,
                                 cfg.intra_row_min_distance, cfg.inter_row_min_distance,
                                 rng=self._rng)
        return random_mask(cfg.grid_size, cfg.erase_per_row, rng=self._rng)

    def _config_summary(self):
        """Encoder settings echoed to the receiver with every package."""
        cfg = self.config
        return {
            "patch_size": cfg.patch_size,
            "subpatch_size": cfg.subpatch_size,
            "erase_per_row": cfg.erase_per_row,
            "mask_strategy": self.mask_strategy,
            "base_codec": self.base_codec.name,
        }

    def _encode_with_plan(self, image, plan, mask_bytes, summary):
        """Squeeze + compress + package one image with precomputed mask state.

        Codecs advertising ``supports_fused_squeeze`` (JPEG) compress through
        the plan's block gather, so the squeezed image is never materialised;
        everyone else gets the classic squeeze-then-compress pipeline.  The
        two paths produce bit-identical payloads.
        """
        image = to_float(image)
        if getattr(self.base_codec, "supports_fused_squeeze", False):
            compressed, grid_shape, squeezed_shape = \
                self.base_codec.compress_squeezed(image, plan)
        else:
            squeezed, grid_shape, _ = plan.squeeze_image(image)
            compressed = self.base_codec.compress(squeezed)
            squeezed_shape = squeezed.shape
        return EaszCompressed(
            codec_payload=compressed,
            mask_bytes=mask_bytes,
            grid_shape=grid_shape,
            original_shape=image.shape,
            squeezed_shape=squeezed_shape,
            config_summary=summary,
        )

    def encode(self, image, mask=None):
        """Erase-and-squeeze ``image``, compress it, and package the result."""
        cfg = self.config
        if mask is None:
            mask = self.generate_mask()
        plan = get_squeeze_plan(mask, cfg.subpatch_size).require_patch_size(cfg.patch_size)
        return self._encode_with_plan(image, plan, serialize_mask(mask),
                                      self._config_summary())

    def encode_batch(self, images, mask=None):
        """Encode several images, byte-identical to sequential :meth:`encode` calls.

        Without an explicit ``mask`` every image draws its own mask from the
        encoder RNG in submission order — exactly the masks sequential
        :meth:`encode` calls would produce.  With a shared ``mask`` the
        squeeze plan and the serialised mask bytes are computed once and
        amortised across the whole batch (the serving encode path).
        """
        if mask is None:
            return [self.encode(image) for image in images]
        cfg = self.config
        plan = get_squeeze_plan(mask, cfg.subpatch_size).require_patch_size(cfg.patch_size)
        mask_bytes = serialize_mask(np.asarray(mask))
        summary = self._config_summary()
        return [self._encode_with_plan(image, plan, mask_bytes, dict(summary))
                for image in images]

    def complexity(self, shape):
        """Edge-side cost: erase-and-squeeze (memory moves) + base-codec encode.

        The erase-and-squeeze itself is a gather operation — a handful of
        operations per pixel and no model weights, which is why the paper
        measures it at 0.7 % of end-to-end latency.
        """
        cfg = self.config
        pixels = image_num_pixels(shape)
        squeeze = ComplexityProfile(macs=4.0 * pixels, model_bytes=0.0,
                                    working_memory_bytes=8.0 * pixels, uses_gpu=False)
        kept_fraction = 1.0 - cfg.erase_ratio
        squeezed = (shape[0], int(shape[1] * kept_fraction)) + tuple(shape[2:])
        return squeeze, self.base_codec.encode_complexity(squeezed)


class EaszDecoder:
    """Server-side half of Easz: base-codec decode + transformer reconstruction."""

    def __init__(self, model=None, config=None, base_codec=None, fill="zero"):
        self.config = config or (model.config if model is not None else EaszConfig())
        self.model = model or EaszReconstructor(self.config)
        if base_codec is None:
            base_codec = JpegCodec(quality=75)
        self.base_codec = base_codec
        self.fill = fill

    def _resolve_plan(self, mask, plan):
        if plan is not None:
            return plan
        cfg = self.config
        return get_squeeze_plan(mask, cfg.subpatch_size).require_patch_size(cfg.patch_size)

    def _fused_unsqueeze(self, compressed, codec, plan):
        """Squeeze-fused decode when the codec supports it, else ``None``.

        Grayscale ``fill="zero"`` packages decode straight into the
        unsqueezed frame (one scatter, no squeezed-image materialisation);
        anything else falls back to the generic decompress-then-unsqueeze
        path.
        """
        if self.fill != "zero" or not hasattr(codec, "decompress_unsqueezed"):
            return None
        if len(compressed.original_shape) != 2:
            return None
        return codec.decompress_unsqueezed(
            compressed.codec_payload, plan, tuple(compressed.original_shape[:2]))

    def _finish_unsqueeze(self, compressed, squeezed, plan):
        """Clamp + unsqueeze + crop one decoded squeezed image."""
        cfg = self.config
        # The codec may hand back a slightly different dtype/range; clamp.
        squeezed = np.clip(np.asarray(squeezed), 0.0, 1.0)
        original_spatial = compressed.original_shape[:2]
        padded_original = (
            original_spatial[0] + (-original_spatial[0]) % cfg.patch_size,
            original_spatial[1] + (-original_spatial[1]) % cfg.patch_size,
        )
        filled = plan.unsqueeze_image(
            squeezed, compressed.grid_shape,
            padded_original + tuple(compressed.original_shape[2:]),
            fill=self.fill,
        )
        return filled[: original_spatial[0], : original_spatial[1], ...]

    def _unsqueeze_package(self, compressed, mask, codec=None, plan=None):
        """Base-codec decode + unsqueeze one package (no reconstruction).

        ``codec`` and ``plan`` default to the decoder's own base codec and
        the module-level plan cache; serving workers inject their per-worker
        cached instances so this single implementation is the only decode
        path.
        """
        codec = codec if codec is not None else self.base_codec
        plan = self._resolve_plan(mask, plan)
        filled = self._fused_unsqueeze(compressed, codec, plan)
        if filled is not None:
            return filled
        squeezed = codec.decompress(compressed.codec_payload)
        return self._finish_unsqueeze(compressed, squeezed, plan)

    def _unsqueeze_many(self, packages, masks, codec=None, plans=None,
                        collect_errors=False):
        """Decode + unsqueeze N packages with one fused IDCT across the batch.

        The sequential entropy decode runs per package (with
        ``collect_errors=True`` a corrupt payload yields its exception in
        the result list and its batch-mates keep going — the serving
        contract); the inverse DCT of every surviving payload runs as a
        single batched call when the codec exposes ``decompress_many``.
        ``plans`` optionally injects per-package cached squeeze plans
        (aligned with ``packages``).
        """
        codec = codec if codec is not None else self.base_codec
        packages = list(packages)
        resolved = [self._resolve_plan(mask, plans[index] if plans else None)
                    for index, mask in enumerate(masks)]
        results = [None] * len(packages)
        pending = []
        for index, package in enumerate(packages):
            try:
                filled = self._fused_unsqueeze(package, codec, resolved[index])
            except Exception as error:  # noqa: BLE001 - isolate per package
                if not collect_errors:
                    raise
                results[index] = error
                continue
            if filled is not None:
                results[index] = filled
            else:
                pending.append(index)
        if pending:
            if hasattr(codec, "decompress_many"):
                decoded = codec.decompress_many(
                    [packages[index].codec_payload for index in pending],
                    on_error="collect" if collect_errors else "raise")
            else:
                decoded = []
                for index in pending:
                    try:
                        decoded.append(codec.decompress(packages[index].codec_payload))
                    except Exception as error:  # noqa: BLE001
                        if not collect_errors:
                            raise
                        decoded.append(error)
            for index, squeezed in zip(pending, decoded):
                if isinstance(squeezed, Exception):
                    results[index] = squeezed
                    continue
                try:
                    results[index] = self._finish_unsqueeze(
                        packages[index], squeezed, resolved[index])
                except Exception as error:  # noqa: BLE001
                    if not collect_errors:
                        raise
                    results[index] = error
        return results

    def decode(self, compressed, reconstruct=True):
        """Recover the full image from an :class:`EaszCompressed` package."""
        mask = deserialize_mask(compressed.mask_bytes)
        filled = self._unsqueeze_package(compressed, mask)
        if not reconstruct:
            return filled
        return reconstruct_image(self.model, filled, mask)

    def decode_batch(self, packages, reconstruct=True, chunk=DEFAULT_CHUNK,
                     plan_getter=None):
        """Decode N packages, fusing the reconstruction of shared-mask groups.

        Base-codec decoding and unsqueezing run per package (entropy streams
        are sequential by nature); the transformer reconstruction — the
        dominant server-side cost — is batched through
        :func:`repro.core.reconstruction.reconstruct_batch` for every group
        of packages sharing one erase mask.  Results keep submission order
        and match per-package :meth:`decode` calls (kept pixels exactly,
        predicted pixels to float32 tolerance).
        """
        packages = list(packages)
        masks = [deserialize_mask(package.mask_bytes) for package in packages]
        filled_images = self._unsqueeze_many(packages, masks)
        groups = OrderedDict()
        for position, package in enumerate(packages):
            group = groups.get(package.mask_bytes)
            if group is None:
                groups[package.mask_bytes] = (masks[position], [position])
            else:
                group[1].append(position)
        if not reconstruct:
            return filled_images
        results = [None] * len(packages)
        for mask, positions in groups.values():
            reconstructed = reconstruct_batch(
                self.model, [filled_images[p] for p in positions], mask,
                chunk=chunk, plan_getter=plan_getter,
            )
            for position, image in zip(positions, reconstructed):
                results[position] = image
        return results

    def complexity(self, shape):
        """Server-side cost: base-codec decode + transformer reconstruction."""
        decode = self.base_codec.decode_complexity(shape)
        reconstruction = ComplexityProfile(
            macs=self.model.reconstruction_flops(shape),
            model_bytes=self.model.model_size_bytes(),
            working_memory_bytes=64.0 * image_num_pixels(shape),
            uses_gpu=True,
        )
        return decode, reconstruction


class EaszCodec(Codec):
    """Easz wrapped as a standard codec ("<base>+easz" in tables and figures)."""

    is_neural = False  # nothing neural runs on the edge

    def __init__(self, config=None, base_codec=None, model=None, mask_strategy="proposed",
                 fill="zero", seed=None):
        self.config = config or EaszConfig()
        base_codec = base_codec if base_codec is not None else JpegCodec(quality=75)
        self.encoder = EaszEncoder(self.config, base_codec, mask_strategy, seed=seed)
        self.decoder = EaszDecoder(model=model, config=self.config, base_codec=base_codec,
                                   fill=fill)
        self.name = f"{base_codec.name}+easz"

    @property
    def model(self):
        """The reconstruction network used on the server side."""
        return self.decoder.model

    @property
    def base_codec(self):
        """The wrapped base compressor."""
        return self.encoder.base_codec

    def compress(self, image):
        """Edge-side encode; returns a :class:`CompressedImage` facade."""
        package = self.encoder.encode(image)
        return CompressedImage(
            payload=package.codec_payload.payload,
            original_shape=package.original_shape,
            codec_name=self.name,
            metadata={"easz_package": package,
                      "base_metadata": package.codec_payload.metadata},
            extra_bytes=len(package.mask_bytes) + package.codec_payload.extra_bytes,
        )

    def decompress(self, compressed):
        """Server-side decode + reconstruction."""
        package = compressed.metadata["easz_package"]
        return self.decoder.decode(package)

    def compress_batch(self, images, mask=None):
        """Batched :meth:`compress`: byte-identical payloads, shared plans."""
        packages = self.encoder.encode_batch(images, mask=mask)
        return [
            CompressedImage(
                payload=package.codec_payload.payload,
                original_shape=package.original_shape,
                codec_name=self.name,
                metadata={"easz_package": package,
                          "base_metadata": package.codec_payload.metadata},
                extra_bytes=len(package.mask_bytes) + package.codec_payload.extra_bytes,
            )
            for package in packages
        ]

    def decompress_batch(self, compressed_list, chunk=DEFAULT_CHUNK):
        """Batched :meth:`decompress` with fused shared-mask reconstruction."""
        packages = [compressed.metadata["easz_package"] for compressed in compressed_list]
        return self.decoder.decode_batch(packages, chunk=chunk)

    def encode_complexity(self, shape):
        """Edge cost = erase-and-squeeze + base-codec encode of the squeezed image."""
        squeeze, base = self.encoder.complexity(shape)
        return ComplexityProfile(
            macs=squeeze.macs + base.macs,
            model_bytes=base.model_bytes,
            working_memory_bytes=max(squeeze.working_memory_bytes, base.working_memory_bytes),
            uses_gpu=base.uses_gpu,
        )

    def decode_complexity(self, shape):
        """Server cost = base-codec decode + transformer reconstruction."""
        decode, reconstruction = self.decoder.complexity(shape)
        return ComplexityProfile(
            macs=decode.macs + reconstruction.macs,
            model_bytes=decode.model_bytes + reconstruction.model_bytes,
            working_memory_bytes=decode.working_memory_bytes + reconstruction.working_memory_bytes,
            uses_gpu=True,
        )
