"""Row-based conditional sampler for erase-mask generation (paper Sec. III-A).

The sampler walks the sub-patch grid row by row and, within each row, draws
``T`` column positions to erase from a uniform distribution subject to two
constraints:

* **intra-row** (Eq. 1): a new column must be more than ``δ`` away from every
  column already erased in the same row — this prevents consecutive
  information loss inside a row;
* **inter-row**: a new column must be more than ``Δ`` away from the columns
  erased in the *previous* row — this prevents vertically adjacent holes.

Special cases noted in the paper fall out of the same definition: ``T = 1``
with non-adjacent sampling reduces to a diagonal-style mask, and ``b = 1,
T = n/2`` with strict alternation degrades to 2× uniform down-sampling
(super-resolution style).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RowConditionalSampler"]


class RowConditionalSampler:
    """Samples per-row erase columns under intra-/inter-row distance constraints.

    Parameters
    ----------
    grid_size:
        Number of sub-patch columns (and rows) in the patch grid, ``n/b``.
    erase_per_row:
        ``T`` — how many columns to erase in each row.
    intra_row_min_distance:
        ``δ`` — minimum distance between erased columns in the same row
        (must leave enough room: ``T · (δ+1) ≤ grid_size``).
    inter_row_min_distance:
        ``Δ`` — minimum distance from the previous row's erased columns.
        Automatically relaxed when the constraint set becomes infeasible.
    max_attempts:
        Rejection-sampling budget per column before constraints are relaxed.
    """

    def __init__(self, grid_size, erase_per_row, intra_row_min_distance=1,
                 inter_row_min_distance=0, max_attempts=64):
        if erase_per_row >= grid_size:
            raise ValueError("erase_per_row must be smaller than grid_size")
        if erase_per_row > 0 and erase_per_row * (intra_row_min_distance + 1) > grid_size:
            raise ValueError(
                f"infeasible intra-row constraint: {erase_per_row} erasures with "
                f"min distance {intra_row_min_distance} in a row of {grid_size}"
            )
        self.grid_size = grid_size
        self.erase_per_row = erase_per_row
        self.intra_row_min_distance = intra_row_min_distance
        self.inter_row_min_distance = inter_row_min_distance
        self.max_attempts = max_attempts

    # ------------------------------------------------------------------ #
    def _sample_row(self, rng, previous_columns):
        """Sample the erased columns of one row."""
        columns = []
        for _ in range(self.erase_per_row):
            column = self._sample_column(rng, columns, previous_columns)
            columns.append(column)
        return sorted(columns)

    def _candidates(self, chosen, previous_columns, inter_distance):
        """Columns that satisfy the constraints given already-chosen columns."""
        candidates = []
        for column in range(self.grid_size):
            if any(abs(column - other) <= self.intra_row_min_distance for other in chosen):
                continue
            if any(abs(column - other) <= inter_distance for other in previous_columns):
                continue
            candidates.append(column)
        return candidates

    def _sample_column(self, rng, chosen, previous_columns):
        """Rejection-sample one column, relaxing Δ then δ if infeasible."""
        inter_distance = self.inter_row_min_distance
        for _ in range(self.max_attempts):
            column = int(rng.integers(0, self.grid_size))
            if any(abs(column - other) <= self.intra_row_min_distance for other in chosen):
                continue
            if any(abs(column - other) <= inter_distance for other in previous_columns):
                continue
            return column
        # Constraint relaxation: first drop the inter-row constraint, then the
        # intra-row distance, finally fall back to any unused column.
        candidates = self._candidates(chosen, previous_columns, inter_distance)
        if not candidates:
            candidates = self._candidates(chosen, [], -1)
        if not candidates:
            candidates = [c for c in range(self.grid_size) if c not in chosen]
        return int(rng.choice(candidates))

    # ------------------------------------------------------------------ #
    def sample_mask(self, rng=None, seed=None):
        """Generate one erase mask for a full patch grid.

        Returns a ``(grid_size, grid_size)`` uint8 array where **1 = kept**
        and **0 = erased** (so ``mask.sum()`` counts surviving sub-patches).
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        mask = np.ones((self.grid_size, self.grid_size), dtype=np.uint8)
        previous_columns = []
        for row in range(self.grid_size):
            columns = self._sample_row(rng, previous_columns)
            mask[row, columns] = 0
            previous_columns = columns
        return mask

    def sample_masks(self, count, rng=None, seed=None):
        """Generate ``count`` independent masks (shape ``(count, g, g)``)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        return np.stack([self.sample_mask(rng=rng) for _ in range(count)])

    # ------------------------------------------------------------------ #
    @property
    def erase_ratio(self):
        """Fraction of sub-patches erased by this sampler."""
        return self.erase_per_row / self.grid_size

    def __repr__(self):
        return (f"RowConditionalSampler(grid={self.grid_size}, T={self.erase_per_row}, "
                f"delta={self.intra_row_min_distance}, Delta={self.inter_row_min_distance})")
