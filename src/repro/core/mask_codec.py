"""Compact transmission formats for erase masks.

The paper argues the mask side-channel is cheap ("a binary mask at dimensions
32 × 32 occupies only 128 bytes").  This module implements the three natural
encodings of that side information and picks the smallest one per mask:

* **bit-packed** — one bit per grid cell (the paper's 128-byte figure);
* **run-length** — the RLE coder from :mod:`repro.entropy`, smaller for the
  highly structured masks the row-conditional sampler produces;
* **seed spec** — when both sides run the same sampler implementation, only
  the sampler parameters and the RNG seed need to travel (a few bytes,
  independent of grid size).  This is the format the edge/server deployment
  would actually use and is what makes per-image mask refresh essentially
  free.

Every payload starts with a one-byte format tag so :func:`decode_mask`
dispatches without external context.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..entropy.rle import decode_binary_mask, encode_binary_mask
from .sampler import RowConditionalSampler

__all__ = [
    "MaskSpec",
    "pack_mask_bits",
    "unpack_mask_bits",
    "encode_mask",
    "decode_mask",
    "mask_payload_format",
]

_FORMAT_BITPACK = 0x42  # 'B'
_FORMAT_RLE = 0x52      # 'R'
_FORMAT_SEED = 0x53     # 'S'

_FORMAT_NAMES = {
    _FORMAT_BITPACK: "bitpack",
    _FORMAT_RLE: "rle",
    _FORMAT_SEED: "seed",
}


@dataclass(frozen=True)
class MaskSpec:
    """Sampler parameters that deterministically regenerate a mask.

    Attributes
    ----------
    grid_size, erase_per_row, intra_row_min_distance, inter_row_min_distance:
        The :class:`RowConditionalSampler` parameters (``n/b``, ``T``, ``δ``,
        ``Δ``).
    seed:
        RNG seed; the sampler is deterministic given the seed, so the receiver
        rebuilds the exact same mask.
    """

    grid_size: int
    erase_per_row: int
    intra_row_min_distance: int = 1
    inter_row_min_distance: int = 0
    seed: int = 0

    def generate(self):
        """Regenerate the mask this spec describes."""
        if self.erase_per_row == 0:
            return np.ones((self.grid_size, self.grid_size), dtype=np.uint8)
        sampler = RowConditionalSampler(
            self.grid_size, self.erase_per_row,
            self.intra_row_min_distance, self.inter_row_min_distance,
        )
        return sampler.sample_mask(seed=self.seed)

    def encode(self):
        """Serialise the spec to its 10-byte wire format."""
        if not 0 <= self.seed < 2 ** 32:
            raise ValueError("seed must fit in 32 bits for the wire format")
        payload = bytearray([_FORMAT_SEED])
        payload += int(self.grid_size).to_bytes(2, "big")
        payload.append(int(self.erase_per_row))
        payload.append(int(self.intra_row_min_distance))
        payload.append(int(self.inter_row_min_distance))
        payload += int(self.seed).to_bytes(4, "big")
        return bytes(payload)

    @classmethod
    def decode(cls, payload):
        """Inverse of :meth:`encode`."""
        if len(payload) != 10 or payload[0] != _FORMAT_SEED:
            raise ValueError("not a seed-spec mask payload")
        return cls(
            grid_size=int.from_bytes(payload[1:3], "big"),
            erase_per_row=payload[3],
            intra_row_min_distance=payload[4],
            inter_row_min_distance=payload[5],
            seed=int.from_bytes(payload[6:10], "big"),
        )


def pack_mask_bits(mask):
    """Bit-pack a binary mask: tag, grid dimensions, then one bit per cell.

    A 32×32 mask costs 2 + 4 + 128 = 134 bytes — the paper's "only 128 bytes"
    plus a tiny header.
    """
    mask = np.asarray(mask, dtype=np.uint8)
    if mask.ndim != 2:
        raise ValueError("mask must be a 2-D array")
    rows, cols = mask.shape
    header = bytearray([_FORMAT_BITPACK])
    header += int(rows).to_bytes(2, "big")
    header += int(cols).to_bytes(2, "big")
    packed = np.packbits(mask.reshape(-1))
    return bytes(header) + packed.tobytes()


def unpack_mask_bits(payload):
    """Inverse of :func:`pack_mask_bits`."""
    if not payload or payload[0] != _FORMAT_BITPACK:
        raise ValueError("not a bit-packed mask payload")
    rows = int.from_bytes(payload[1:3], "big")
    cols = int.from_bytes(payload[3:5], "big")
    bits = np.unpackbits(np.frombuffer(payload[5:], dtype=np.uint8), count=rows * cols)
    return bits.reshape(rows, cols).astype(np.uint8)


def encode_mask(mask, spec=None, method="auto"):
    """Encode a mask for transmission, choosing the smallest representation.

    Parameters
    ----------
    mask:
        The binary erase mask (1 = keep, 0 = erase).
    spec:
        Optional :class:`MaskSpec`.  When given (and it regenerates exactly
        ``mask``), the seed-spec format becomes available — typically the
        smallest by an order of magnitude.
    method:
        ``"auto"`` (default, smallest wins), ``"bitpack"``, ``"rle"`` or
        ``"seed"`` to force a specific format.
    """
    mask = np.asarray(mask, dtype=np.uint8)
    candidates = {}
    candidates["bitpack"] = pack_mask_bits(mask)
    candidates["rle"] = bytes([_FORMAT_RLE]) + encode_binary_mask(mask)
    if spec is not None:
        if not np.array_equal(spec.generate(), mask):
            raise ValueError("spec does not regenerate the provided mask")
        candidates["seed"] = spec.encode()
    if method != "auto":
        if method not in candidates:
            available = sorted(candidates)
            raise ValueError(f"mask encoding {method!r} unavailable; choose from {available}")
        return candidates[method]
    return min(candidates.values(), key=len)


def decode_mask(payload):
    """Decode any payload produced by :func:`encode_mask`."""
    if not payload:
        raise ValueError("empty mask payload")
    tag = payload[0]
    if tag == _FORMAT_BITPACK:
        return unpack_mask_bits(payload)
    if tag == _FORMAT_RLE:
        return decode_binary_mask(payload[1:])
    if tag == _FORMAT_SEED:
        return MaskSpec.decode(payload).generate()
    raise ValueError(f"unknown mask payload tag 0x{tag:02x}")


def mask_payload_format(payload):
    """Name of the format a mask payload uses (``bitpack``/``rle``/``seed``)."""
    if not payload or payload[0] not in _FORMAT_NAMES:
        raise ValueError("unknown mask payload format")
    return _FORMAT_NAMES[payload[0]]
