"""Lightweight transformer reconstruction network (paper Section III-B, Fig. 5).

The reconstructor is a masked auto-encoder over sub-patch tokens:

* every *kept* sub-patch is flattened, linearly projected to ``d_model`` and
  summed with a learned positional embedding for its grid position;
* a two-block transformer **encoder** turns the kept tokens into features;
* zero vectors are inserted at the erased grid positions (plus their
  positional embeddings) and the combined sequence runs through a two-block
  transformer **decoder**;
* a linear head projects every token back to ``b²·channels`` pixels.

Because attention is confined to one patch, the same (small) model serves any
erase ratio and any image size — the "agility" of Easz.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..image import is_color, to_float
from .config import EaszConfig
from .patchify import (
    image_to_patches,
    patch_to_subpatches,
    patches_to_image,
    subpatches_to_patch,
    subpatches_to_tokens,
    tokens_to_subpatches,
)

__all__ = ["EaszReconstructor", "reconstruct_image"]


class EaszReconstructor(nn.Module):
    """Transformer masked auto-encoder for erased sub-patch reconstruction."""

    def __init__(self, config=None, rng=None):
        super().__init__()
        self.config = config or EaszConfig()
        rng = rng or np.random.default_rng(self.config.seed)
        cfg = self.config
        self.input_projection = nn.Linear(cfg.token_dim, cfg.d_model, rng=rng)
        self.positional_embedding = nn.Parameter(
            nn.init.normal((cfg.tokens_per_patch, cfg.d_model), rng, std=0.02)
        )
        self.encoder = nn.TransformerStack(cfg.encoder_blocks, cfg.d_model, cfg.num_heads,
                                           cfg.ffn_mult, cfg.dropout, rng=rng)
        self.decoder = nn.TransformerStack(cfg.decoder_blocks, cfg.d_model, cfg.num_heads,
                                           cfg.ffn_mult, cfg.dropout, rng=rng)
        self.output_projection = nn.Linear(cfg.d_model, cfg.token_dim, rng=rng)

    # ------------------------------------------------------------------ #
    def forward(self, tokens, mask):
        """Reconstruct all sub-patch tokens of a batch of patches.

        Parameters
        ----------
        tokens:
            Array or tensor of shape ``(batch, tokens_per_patch, token_dim)``
            holding **all** sub-patch tokens in grid order; the values at
            erased positions are ignored (the encoder never sees them).
        mask:
            ``(grid, grid)`` or flattened ``(tokens_per_patch,)`` binary mask
            shared by the whole batch (1 = kept, 0 = erased).

        Returns
        -------
        Tensor of shape ``(batch, tokens_per_patch, token_dim)`` with pixel
        values in ``[0, 1]`` for every position (kept positions are also
        re-predicted; callers typically keep the original kept pixels).
        """
        tokens = nn.as_tensor(tokens)
        cfg = self.config
        flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
        if flat_mask.size != cfg.tokens_per_patch:
            raise ValueError(
                f"mask has {flat_mask.size} entries, expected {cfg.tokens_per_patch}"
            )
        kept_indices = np.flatnonzero(flat_mask)
        batch = tokens.shape[0]

        kept_tokens = tokens[:, kept_indices, :]
        embedded = self.input_projection(kept_tokens) + self.positional_embedding[kept_indices]
        encoded = self.encoder(embedded)

        # Scatter encoded features back to their grid positions; erased
        # positions receive zero vectors (plus positional embeddings), as in
        # the paper's Fig. 5.
        scatter = np.zeros((cfg.tokens_per_patch, kept_indices.size))
        scatter[kept_indices, np.arange(kept_indices.size)] = 1.0
        full_features = nn.Tensor(scatter) @ encoded  # (batch, tokens, d_model) via broadcasting
        full_features = full_features + self.positional_embedding
        decoded = self.decoder(full_features)
        return self.output_projection(decoded).sigmoid()

    # ------------------------------------------------------------------ #
    def reconstruct_tokens(self, tokens, mask, keep_original=True):
        """Numpy convenience wrapper around :meth:`forward` (no gradients).

        When ``keep_original`` is true the returned array keeps the original
        values at kept positions and only substitutes predictions at erased
        positions (this is how the server-side pipeline uses the model).
        """
        with nn.no_grad():
            predicted = self.forward(tokens, mask).data
        if keep_original:
            flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
            output = np.array(predicted)
            output[:, flat_mask, :] = np.asarray(tokens)[:, flat_mask, :]
            return output
        return predicted

    # ------------------------------------------------------------------ #
    def model_size_bytes(self, bytes_per_param=4):
        """Serialized model size (fp32), comparable to the paper's 8.7 MB."""
        return self.size_bytes(bytes_per_param)

    def reconstruction_flops(self, image_shape):
        """Approximate MACs to reconstruct an image of ``image_shape``."""
        cfg = self.config
        height, width = image_shape[:2]
        padded_h = height + (-height) % cfg.patch_size
        padded_w = width + (-width) % cfg.patch_size
        num_patches = (padded_h // cfg.patch_size) * (padded_w // cfg.patch_size)
        tokens = cfg.tokens_per_patch
        per_patch = self.encoder.flops(tokens) + self.decoder.flops(tokens)
        per_patch += 2 * tokens * cfg.token_dim * cfg.d_model * 2
        channels = image_shape[2] if len(image_shape) == 3 and cfg.channels == 1 else 1
        return float(num_patches * per_patch * channels)


def reconstruct_image(model, filled_image, mask, keep_original=True):
    """Reconstruct the erased sub-patches of a zero-filled (unsqueezed) image.

    Parameters
    ----------
    model:
        A trained :class:`EaszReconstructor`.
    filled_image:
        The unsqueezed image (erased sub-patches present but zero/neighbour
        filled), grayscale or RGB.
    mask:
        The shared sub-patch mask used on the edge side (1 = kept).

    RGB images are processed channel-by-channel when the model was built with
    ``channels=1`` (the default), otherwise jointly.
    """
    cfg = model.config
    filled_image = to_float(filled_image)
    if is_color(filled_image) and cfg.channels == 1:
        channels = [reconstruct_image(model, filled_image[..., c], mask, keep_original)
                    for c in range(3)]
        return np.stack(channels, axis=-1)
    if not is_color(filled_image) and cfg.channels == 3:
        raise ValueError("model expects RGB tokens but received a grayscale image")

    patches, grid_shape, original_shape = image_to_patches(filled_image, cfg.patch_size)
    token_batches = np.stack([
        subpatches_to_tokens(patch_to_subpatches(patch, cfg.subpatch_size))
        for patch in patches
    ])
    reconstructed_tokens = model.reconstruct_tokens(token_batches, mask, keep_original)
    rebuilt_patches = []
    for tokens in reconstructed_tokens:
        subpatches = tokens_to_subpatches(tokens, cfg.grid_size, cfg.subpatch_size,
                                          cfg.channels)
        rebuilt_patches.append(subpatches_to_patch(subpatches))
    image = patches_to_image(np.stack(rebuilt_patches), grid_shape, original_shape)
    return np.clip(image, 0.0, 1.0)
