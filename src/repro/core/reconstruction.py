"""Lightweight transformer reconstruction network (paper Section III-B, Fig. 5).

The reconstructor is a masked auto-encoder over sub-patch tokens:

* every *kept* sub-patch is flattened, linearly projected to ``d_model`` and
  summed with a learned positional embedding for its grid position;
* a two-block transformer **encoder** turns the kept tokens into features;
* zero vectors are inserted at the erased grid positions (plus their
  positional embeddings) and the combined sequence runs through a two-block
  transformer **decoder**;
* a linear head projects every token back to ``b²·channels`` pixels.

Because attention is confined to one patch, the same (small) model serves any
erase ratio and any image size — the "agility" of Easz.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .. import nn
from ..image import is_color, pad_to_multiple, to_float
from .batch_engine import DEFAULT_CHUNK, FusedBatchEngine
from .config import EaszConfig
from .patchify import (
    image_to_patches,
    patches_to_image,
    patches_to_tokens,
    tokens_to_patches,
)

__all__ = [
    "EaszReconstructor",
    "reconstruct_image",
    "reconstruct_batch",
    "PixelIndexPlan",
    "get_pixel_plan",
]


class EaszReconstructor(nn.Module):
    """Transformer masked auto-encoder for erased sub-patch reconstruction."""

    def __init__(self, config=None, rng=None):
        super().__init__()
        self.config = config or EaszConfig()
        rng = rng or np.random.default_rng(self.config.seed)
        cfg = self.config
        self.input_projection = nn.Linear(cfg.token_dim, cfg.d_model, rng=rng)
        self.positional_embedding = nn.Parameter(
            nn.init.normal((cfg.tokens_per_patch, cfg.d_model), rng, std=0.02)
        )
        self.encoder = nn.TransformerStack(cfg.encoder_blocks, cfg.d_model, cfg.num_heads,
                                           cfg.ffn_mult, cfg.dropout, rng=rng)
        self.decoder = nn.TransformerStack(cfg.decoder_blocks, cfg.d_model, cfg.num_heads,
                                           cfg.ffn_mult, cfg.dropout, rng=rng)
        self.output_projection = nn.Linear(cfg.d_model, cfg.token_dim, rng=rng)
        # per-mask plan cache: kept indices + (tokens, kept) scatter matrix,
        # keyed on the mask bytes so repeated calls with a shared mask skip
        # both the flatnonzero and the scatter-matrix rebuild
        self._mask_plan_cache = {}

    # ------------------------------------------------------------------ #
    def _mask_plan(self, mask):
        """Cached ``(kept_indices, scatter_tensor)`` for a shared mask."""
        flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
        if flat_mask.size != self.config.tokens_per_patch:
            raise ValueError(
                f"mask has {flat_mask.size} entries, expected {self.config.tokens_per_patch}"
            )
        key = flat_mask.tobytes()
        plan = self._mask_plan_cache.get(key)
        if plan is None:
            kept_indices = np.flatnonzero(flat_mask)  # lint: allow RP001 - plan builder, cached per mask bytes
            scatter = np.zeros((flat_mask.size, kept_indices.size))
            scatter[kept_indices, np.arange(kept_indices.size)] = 1.0
            plan = (kept_indices, nn.Tensor(scatter))
            if len(self._mask_plan_cache) >= 64:
                self._mask_plan_cache.clear()
            self._mask_plan_cache[key] = plan
        return plan

    # ------------------------------------------------------------------ #
    def forward(self, tokens, mask):
        """Reconstruct all sub-patch tokens of a batch of patches.

        Parameters
        ----------
        tokens:
            Array or tensor of shape ``(batch, tokens_per_patch, token_dim)``
            holding **all** sub-patch tokens in grid order; the values at
            erased positions are ignored (the encoder never sees them).
        mask:
            ``(grid, grid)`` or flattened ``(tokens_per_patch,)`` binary mask
            shared by the whole batch (1 = kept, 0 = erased).

        Returns
        -------
        Tensor of shape ``(batch, tokens_per_patch, token_dim)`` with pixel
        values in ``[0, 1]`` for every position (kept positions are also
        re-predicted; callers typically keep the original kept pixels).
        """
        tokens = nn.as_tensor(tokens)
        kept_indices, scatter = self._mask_plan(mask)

        kept_tokens = tokens[:, kept_indices, :]
        embedded = self.input_projection(kept_tokens) + self.positional_embedding[kept_indices]
        encoded = self.encoder(embedded)

        # Scatter encoded features back to their grid positions; erased
        # positions receive zero vectors (plus positional embeddings), as in
        # the paper's Fig. 5.
        full_features = scatter @ encoded  # (batch, tokens, d_model) via broadcasting
        full_features = full_features + self.positional_embedding
        decoded = self.decoder(full_features)
        return self.output_projection(decoded).sigmoid()

    # ------------------------------------------------------------------ #
    def _forward_fast(self, tokens, kept_indices):
        """Inference-only forward pass: float32, fused in-place elementwise.

        Mirrors :meth:`forward` op for op (pre-norm blocks, tanh-GELU,
        max-subtracted softmax) but skips the autograd graph, halves the
        memory traffic by computing in single precision, and reuses buffers
        for the elementwise chains.  Only valid when dropout is inactive;
        :meth:`reconstruct_tokens` falls back to the autograd path otherwise.

        The float32 weight casts (and the fused QKV concatenations) are
        cached across calls and invalidated by a cheap parameter
        fingerprint: the identity of every ``p.data`` array (the optimizer
        and ``load_state_dict`` rebind it) *and* its element sum (which
        catches in-place mutation such as ``p.data *= 0.5``).  Computing
        the sums costs microseconds next to a forward pass.
        """
        f32 = np.float32
        token = tuple((id(p.data), float(p.data.sum())) for p in self.parameters())
        cache = self.__dict__.get("_f32_weight_cache")
        if cache is None or cache["token"] != token:
            cache = {"token": token}
            self._f32_weight_cache = cache

        def lin_params(layer):
            entry = cache.get(id(layer))
            if entry is None:
                entry = (layer.weight.data.astype(f32), layer.bias.data.astype(f32))
                cache[id(layer)] = entry
            return entry

        def norm_params(norm):
            entry = cache.get(id(norm))
            if entry is None:
                entry = (norm.weight.data.astype(f32), norm.bias.data.astype(f32))
                cache[id(norm)] = entry
            return entry

        def linear(x, layer):
            weight, bias = lin_params(layer)
            out = x.reshape(-1, x.shape[-1]) @ weight.T
            out += bias
            return out.reshape(x.shape[:-1] + (weight.shape[0],))

        def layer_norm(x, norm):
            weight, bias = norm_params(norm)
            centred = x - x.mean(axis=-1, keepdims=True)
            scale = np.mean(centred * centred, axis=-1, keepdims=True)
            scale += f32(norm.eps)
            np.sqrt(scale, out=scale)
            centred /= scale
            centred *= weight
            centred += bias
            return centred

        def gelu(x):
            t = x * x
            t *= x
            t *= f32(0.044715)
            t += x
            t *= f32(np.sqrt(2.0 / np.pi))
            np.tanh(t, out=t)
            t += f32(1.0)
            t *= f32(0.5)
            t *= x
            return t

        def qkv_params(attn):
            entry = cache.get(("qkv", id(attn)))
            if entry is None:
                entry = (
                    np.concatenate([
                        attn.query.weight.data, attn.key.weight.data,
                        attn.value.weight.data,
                    ]).astype(f32),
                    np.concatenate([
                        attn.query.bias.data, attn.key.bias.data, attn.value.bias.data,
                    ]).astype(f32),
                )
                cache[("qkv", id(attn))] = entry
            return entry

        def attention(x, attn):
            batch, seq, d_model = x.shape
            heads, head_dim = attn.num_heads, attn.head_dim
            # one fused GEMM for the three input projections
            qkv_weight, qkv_bias = qkv_params(attn)
            qkv = x.reshape(-1, d_model) @ qkv_weight.T
            qkv += qkv_bias
            qkv = qkv.reshape(batch, seq, 3, heads, head_dim).transpose(2, 0, 3, 1, 4)
            query, key, value = qkv[0], qkv[1], qkv[2]
            scores = query @ key.transpose(0, 1, 3, 2)
            scores *= f32(1.0 / np.sqrt(head_dim))
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            merged = (scores @ value).transpose(0, 2, 1, 3).reshape(batch, seq, d_model)
            return linear(merged, attn.out)

        def block_forward(x, block):
            # residuals accumulate in place: the attention/FFN outputs are
            # fresh buffers and x is not aliased elsewhere
            attended = attention(layer_norm(x, block.norm_attn), block.attention)
            attended += x
            hidden = linear(layer_norm(attended, block.norm_ff), block.feed_forward.net[0])
            out = linear(gelu(hidden), block.feed_forward.net[2])
            out += attended
            return layer_norm(out, block.norm_out)

        cfg = self.config
        positional = cache.get("positional")
        if positional is None:
            positional = self.positional_embedding.data.astype(f32)
            cache["positional"] = positional
        encoded = linear(tokens[:, kept_indices, :].astype(f32), self.input_projection)
        encoded += positional[kept_indices]
        for block in self.encoder.blocks():
            encoded = block_forward(encoded, block)
        full = np.zeros((tokens.shape[0], cfg.tokens_per_patch, cfg.d_model), dtype=f32)
        full[:, kept_indices, :] = encoded
        full += positional
        for block in self.decoder.blocks():
            full = block_forward(full, block)
        out = linear(full, self.output_projection)
        np.negative(out, out)
        np.exp(out, out)
        out += f32(1.0)
        np.reciprocal(out, out)
        return out.astype(np.float64)

    # ------------------------------------------------------------------ #
    def reconstruct_tokens(self, tokens, mask, keep_original=True):
        """Numpy convenience wrapper around :meth:`forward` (no gradients).

        When ``keep_original`` is true the returned array keeps the original
        values at kept positions and only substitutes predictions at erased
        positions (this is how the server-side pipeline uses the model).

        Inference runs through the fused float32 fast path whenever dropout
        is inactive (always, with the default configuration); gradients are
        never tracked either way.
        """
        tokens = np.asarray(tokens)
        kept_indices, _ = self._mask_plan(mask)
        if self.config.dropout == 0.0 or not self.training:
            # process the batch in cache-friendly chunks: the float32
            # working set of a full image batch spills L2/L3 and the
            # elementwise chains become memory-bound
            chunk = 512
            if tokens.shape[0] <= chunk:
                predicted = self._forward_fast(tokens, kept_indices)
            else:
                predicted = np.concatenate([
                    self._forward_fast(tokens[start:start + chunk], kept_indices)
                    for start in range(0, tokens.shape[0], chunk)
                ])
        else:
            with nn.no_grad():
                predicted = np.array(self.forward(tokens, mask).data)
        if keep_original:
            flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
            predicted[:, flat_mask, :] = tokens[:, flat_mask, :]  # lint: allow RP001 - one overwrite in the reference path
        return predicted

    # ------------------------------------------------------------------ #
    def batch_engine(self):
        """The (cached) :class:`FusedBatchEngine` compiled from this model.

        Rebuilt automatically when the parameter fingerprint changes — the
        same invalidation rule `_forward_fast` uses for its float32 weight
        cache.
        """
        engine = self.__dict__.get("_batch_engine_cache")
        if engine is None or not engine.is_current():
            engine = FusedBatchEngine(self)
            self.__dict__["_batch_engine_cache"] = engine
        return engine

    def reconstruct_batch(self, filled_images, mask, keep_original=True,
                          chunk=DEFAULT_CHUNK, plan_getter=None):
        """Reconstruct several images sharing one mask in fused batches.

        See :func:`reconstruct_batch` (module function) for semantics.
        """
        return reconstruct_batch(self, filled_images, mask, keep_original=keep_original,
                                 chunk=chunk, plan_getter=plan_getter)

    # ------------------------------------------------------------------ #
    def model_size_bytes(self, bytes_per_param=4):
        """Serialized model size (fp32), comparable to the paper's 8.7 MB."""
        return self.size_bytes(bytes_per_param)

    def reconstruction_flops(self, image_shape):
        """Approximate MACs to reconstruct an image of ``image_shape``."""
        cfg = self.config
        height, width = image_shape[:2]
        padded_h = height + (-height) % cfg.patch_size
        padded_w = width + (-width) % cfg.patch_size
        num_patches = (padded_h // cfg.patch_size) * (padded_w // cfg.patch_size)
        tokens = cfg.tokens_per_patch
        per_patch = self.encoder.flops(tokens) + self.decoder.flops(tokens)
        per_patch += 2 * tokens * cfg.token_dim * cfg.d_model * 2
        channels = image_shape[2] if len(image_shape) == 3 and cfg.channels == 1 else 1
        return float(num_patches * per_patch * channels)


class PixelIndexPlan:
    """Pixel-level gather/scatter indices for one ``(mask, padded shape)``.

    The batched serving path skips the patchify→tokenize→reassemble copy
    chain entirely: kept sub-patch tokens are gathered straight from the
    (padded) image with one fancy index, and predictions are scattered
    straight back into a copy of it.  The index arrays are the "scatter
    indices" the serving workers cache per worker.

    Index array shapes are ``(num_patches, positions, subpatch_pixels)``;
    ``kept_*`` cover the kept grid positions (model input), ``erased_*`` the
    erased ones (scatter targets when original pixels are kept), ``all_*``
    every position (full re-prediction).
    """

    def __init__(self, flat_mask, padded_shape, patch_size, subpatch_size):
        grid = patch_size // subpatch_size
        height, width = padded_shape
        if height % patch_size or width % patch_size:
            raise ValueError(f"padded shape {padded_shape} is not a multiple of {patch_size}")
        rows, cols = height // patch_size, width // patch_size
        num_patches = rows * cols
        patch = np.arange(num_patches, dtype=np.int32)
        patch_row, patch_col = patch // cols, patch % cols
        token = np.arange(grid * grid, dtype=np.int32)
        grid_row, grid_col = token // grid, token % grid
        pixel = np.arange(subpatch_size * subpatch_size, dtype=np.int32)
        sub_row, sub_col = pixel // subpatch_size, pixel % subpatch_size
        y = (patch_row[:, None, None] * patch_size
             + grid_row[None, :, None] * subpatch_size + sub_row[None, None, :])
        x = (patch_col[:, None, None] * patch_size
             + grid_col[None, :, None] * subpatch_size + sub_col[None, None, :])
        self.kept_indices = np.flatnonzero(flat_mask)  # lint: allow RP001 - plan builder
        self.erased_indices = np.flatnonzero(~flat_mask)  # lint: allow RP001 - plan builder
        self.all_indices = np.arange(flat_mask.size)
        self.kept_y, self.kept_x = y[:, self.kept_indices], x[:, self.kept_indices]
        self.erased_y, self.erased_x = y[:, self.erased_indices], x[:, self.erased_indices]
        self.all_y, self.all_x = y, x
        self.num_patches = num_patches


_PIXEL_PLAN_CACHE = OrderedDict()
_PIXEL_PLAN_CACHE_MAX = 16


def get_pixel_plan(mask, padded_shape, patch_size, subpatch_size):
    """Cached :class:`PixelIndexPlan` for a mask and padded image geometry."""
    flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
    key = (flat_mask.tobytes(), tuple(padded_shape), int(patch_size), int(subpatch_size))
    plan = _PIXEL_PLAN_CACHE.get(key)
    if plan is None:
        plan = PixelIndexPlan(flat_mask, padded_shape, patch_size, subpatch_size)
        _PIXEL_PLAN_CACHE[key] = plan
        if len(_PIXEL_PLAN_CACHE) > _PIXEL_PLAN_CACHE_MAX:
            _PIXEL_PLAN_CACHE.popitem(last=False)
    else:
        _PIXEL_PLAN_CACHE.move_to_end(key)
    return plan


def reconstruct_image(model, filled_image, mask, keep_original=True):
    """Reconstruct the erased sub-patches of a zero-filled (unsqueezed) image.

    Parameters
    ----------
    model:
        A trained :class:`EaszReconstructor`.
    filled_image:
        The unsqueezed image (erased sub-patches present but zero/neighbour
        filled), grayscale or RGB.
    mask:
        The shared sub-patch mask used on the edge side (1 = kept).

    RGB images are processed with the channels folded into the batch
    dimension when the model was built with ``channels=1`` (the default) —
    one model call covers all three channels — otherwise jointly as RGB
    tokens.  Patch tokenization and reassembly are single batched
    reshape/transpose operations; there is no per-patch or per-channel
    Python loop.
    """
    cfg = model.config
    filled_image = to_float(filled_image)
    color = is_color(filled_image)
    if not color and cfg.channels == 3:
        raise ValueError("model expects RGB tokens but received a grayscale image")

    patches, grid_shape, original_shape = image_to_patches(filled_image, cfg.patch_size)
    if color and cfg.channels == 1:
        # fold the 3 channels into the batch: (P, n, n, 3) -> (3·P, n, n)
        num_patches = patches.shape[0]
        patches = patches.transpose(3, 0, 1, 2).reshape(-1, cfg.patch_size, cfg.patch_size)
    tokens = patches_to_tokens(patches, cfg.subpatch_size)
    reconstructed = model.reconstruct_tokens(tokens, mask, keep_original)
    rebuilt = tokens_to_patches(reconstructed, cfg.grid_size, cfg.subpatch_size, cfg.channels)
    if color and cfg.channels == 1:
        rebuilt = rebuilt.reshape(3, num_patches, cfg.patch_size, cfg.patch_size)
        rebuilt = rebuilt.transpose(1, 2, 3, 0)
    image = patches_to_image(rebuilt, grid_shape, original_shape)
    return np.clip(image, 0.0, 1.0)


def reconstruct_batch(model, filled_images, mask, keep_original=True,
                      chunk=DEFAULT_CHUNK, plan_getter=None):
    """Reconstruct N images sharing one erase mask in fused transformer calls.

    This is the server-side batched counterpart of :func:`reconstruct_image`:
    tokens from every image are stacked into one patch batch and run through
    the model's :class:`FusedBatchEngine`, so fixed per-call costs and the
    tokenize/reassemble copy chains are amortised across the whole
    micro-batch.  Images may mix shapes and gray/RGB — they are grouped
    internally and each group is processed in one stacked call.

    Parameters
    ----------
    model:
        A trained :class:`EaszReconstructor`.
    filled_images:
        Sequence of unsqueezed images (erased sub-patches zero/neighbour
        filled), each grayscale or RGB.
    mask:
        The shared sub-patch mask (1 = kept), as in :func:`reconstruct_image`.
    keep_original:
        Keep the transmitted pixels and substitute predictions only at
        erased positions (the serving default).
    chunk:
        Patches per engine chunk (see :data:`repro.core.batch_engine.DEFAULT_CHUNK`).
    plan_getter:
        Optional ``(mask, padded_shape, patch_size, subpatch_size) -> plan``
        callable; serving workers pass their per-worker LRU here.  Defaults
        to the module-level :func:`get_pixel_plan` cache.

    Returns the reconstructions as a list in input order.  Kept pixels are
    bit-identical to :func:`reconstruct_image`; predicted pixels agree to
    float32 tolerance (~1e-6, far below one 8-bit quantisation step).
    """
    cfg = model.config
    images = [to_float(image) for image in filled_images]
    if not images:
        return []
    if model.training and cfg.dropout > 0.0:
        # the engine has no dropout; fall back to the exact per-image path
        return [reconstruct_image(model, image, mask, keep_original) for image in images]
    flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
    if flat_mask.size != cfg.tokens_per_patch:
        raise ValueError(
            f"mask has {flat_mask.size} entries, expected {cfg.tokens_per_patch}"
        )
    engine = model.batch_engine()
    plan_getter = plan_getter or get_pixel_plan
    results = [None] * len(images)
    groups = OrderedDict()
    for position, image in enumerate(images):
        color = is_color(image)
        if not color and cfg.channels == 3:
            raise ValueError("model expects RGB tokens but received a grayscale image")
        groups.setdefault((image.shape, color), []).append(position)

    subpixels = cfg.subpatch_size ** 2
    for (shape, color), members in groups.items():
        padded_images = [pad_to_multiple(images[i], cfg.patch_size)[0] for i in members]
        padded_shape = padded_images[0].shape[:2]
        plan = plan_getter(flat_mask, padded_shape, cfg.patch_size, cfg.subpatch_size)
        stack = np.stack(padded_images)
        count = len(members)
        patches = plan.num_patches
        num_kept = plan.kept_indices.size
        fold = color and cfg.channels == 1
        if fold:
            # channels folded into the batch, channel-major per image
            gathered = stack[:, plan.kept_y, plan.kept_x, :]  # (N, P, kept, b², 3)
            kept_tokens = gathered.transpose(0, 4, 1, 2, 3).reshape(-1, num_kept, subpixels)
        elif color:
            gathered = stack[:, plan.kept_y, plan.kept_x, :]
            kept_tokens = gathered.reshape(count * patches, num_kept, subpixels * 3)
        else:
            kept_tokens = stack[:, plan.kept_y, plan.kept_x].reshape(
                count * patches, num_kept, subpixels)

        out_indices = plan.erased_indices if keep_original else plan.all_indices
        out_y = plan.erased_y if keep_original else plan.all_y
        out_x = plan.erased_x if keep_original else plan.all_x
        predictions = engine.predict(kept_tokens, plan.kept_indices, out_indices,
                                     chunk=chunk).astype(np.float64)
        num_out = out_indices.size
        rows_per_image = (3 if fold else 1) * patches
        for offset, position in enumerate(members):
            block = predictions[offset * rows_per_image:(offset + 1) * rows_per_image]
            output = padded_images[offset].copy() if keep_original \
                else np.zeros_like(padded_images[offset])
            if fold:
                pixels = block.reshape(3, patches, num_out, subpixels).transpose(1, 2, 3, 0)
                output[out_y, out_x, :] = pixels
            elif color:
                pixels = block.reshape(patches, num_out, subpixels, 3)
                output[out_y, out_x, :] = pixels
            else:
                output[out_y, out_x] = block.reshape(patches, num_out, subpixels)
            output = output[: shape[0], : shape[1], ...]
            np.clip(output, 0.0, 1.0, out=output)
            results[position] = output
    return results
