"""Fused float32 inference engine for multi-image batched reconstruction.

:meth:`EaszReconstructor._forward_fast` already removes autograd and runs the
per-image hot path in float32; profiling the serving workload shows the next
bottleneck is *reduction* traffic: ``axis=-1`` softmax max/sum and layer-norm
mean/variance reductions cost more than the GEMMs themselves at the model's
small ``d_model``.  This module compiles a reconstructor into a
:class:`FusedBatchEngine` that the batched serving path shares across images:

* all weights are pre-cast to float32 **once** (transposed for row-major
  GEMMs, the attention scale folded into the query projection, the Q/K/V
  projections concatenated) and invalidated by the same cheap parameter
  fingerprint `_forward_fast` uses;
* layer-norm mean and variance are computed as matmuls against a constant
  ``1/d`` vector, turning the slow strided reductions into BLAS calls;
* softmax skips the per-row max subtraction (a guarded fast path: scores of a
  trained reconstructor stay tiny; one cheap whole-array max falls back to
  the safe path if they ever exceed ``_SOFTMAX_GUARD``);
* the output projection and sigmoid run only over the token positions the
  caller actually needs (the erased sub-patches when the original pixels are
  kept) instead of the full grid.

The engine processes stacked tokens from any number of images in
cache-friendly chunks, so one engine call serves a whole micro-batch.
Numerics differ from `_forward_fast` only by float32 rounding (different but
equally valid summation orders); reconstructions agree to ~1e-6, far below a
pixel quantisation step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FusedBatchEngine", "DEFAULT_CHUNK"]

_F32 = np.float32

#: Rows (patches) per engine chunk: the float32 working set of a chunk this
#: size stays inside L2 for the benchmark geometry, which measures faster
#: than both smaller (per-op overhead) and larger (cache-spill) chunks.
DEFAULT_CHUNK = 128

#: Attention scores above this trigger the numerically-safe max-subtracted
#: softmax.  float32 ``exp`` is exact to overflow up to ~88; 60 leaves two
#: orders of magnitude of headroom for the row sums.
_SOFTMAX_GUARD = 60.0


def _fingerprint(model):
    """Cheap parameter identity+content token (see ``_forward_fast``)."""
    return tuple((id(p.data), float(p.data.sum())) for p in model.parameters())


class _CompiledBlock:
    """Float32 views of one transformer block, laid out for the engine."""

    __slots__ = ("qkv_weight", "qkv_bias", "out_weight", "out_bias",
                 "ff1_weight", "ff1_bias", "ff2_weight", "ff2_bias",
                 "norm_attn", "norm_ff", "norm_out", "eps",
                 "num_heads", "head_dim")

    def __init__(self, block):
        attn = block.attention
        scale = 1.0 / np.sqrt(attn.head_dim)
        # folding the 1/sqrt(head_dim) scale into Q removes one full pass
        # over the (batch·heads, seq, seq) score tensor per block
        query_w = attn.query.weight.data * scale
        query_b = attn.query.bias.data * scale
        qkv_weight = np.concatenate(
            [query_w, attn.key.weight.data, attn.value.weight.data]).T
        qkv_bias = np.concatenate(
            [query_b, attn.key.bias.data, attn.value.bias.data])
        # the pre-norm affine (y = unit_norm(x)·w + b) feeds straight into the
        # next projection, so fold it into the projection weights: two fewer
        # full elementwise passes per folded norm
        norm_w, norm_b = block.norm_attn.weight.data, block.norm_attn.bias.data
        self.qkv_weight = np.ascontiguousarray(
            (norm_w[:, None] * qkv_weight).astype(_F32))
        self.qkv_bias = (qkv_bias + norm_b @ qkv_weight).astype(_F32)
        self.out_weight = np.ascontiguousarray(attn.out.weight.data.T.astype(_F32))
        self.out_bias = attn.out.bias.data.astype(_F32)
        ff1, ff2 = block.feed_forward.net[0], block.feed_forward.net[2]
        norm_w, norm_b = block.norm_ff.weight.data, block.norm_ff.bias.data
        ff1_weight = ff1.weight.data.T
        self.ff1_weight = np.ascontiguousarray(
            (norm_w[:, None] * ff1_weight).astype(_F32))
        self.ff1_bias = (ff1.bias.data + norm_b @ ff1_weight).astype(_F32)
        self.ff2_weight = np.ascontiguousarray(ff2.weight.data.T.astype(_F32))
        self.ff2_bias = ff2.bias.data.astype(_F32)
        self.norm_out = (block.norm_out.weight.data.astype(_F32),
                         block.norm_out.bias.data.astype(_F32))
        self.eps = _F32(block.norm_attn.eps)
        self.num_heads = attn.num_heads
        self.head_dim = attn.head_dim


class FusedBatchEngine:
    """Compiled inference engine bound to one :class:`EaszReconstructor`.

    Construction is cheap (a few float32 casts); engines are cached on the
    model by :meth:`EaszReconstructor.batch_engine` and rebuilt whenever the
    parameter fingerprint changes (optimizer step, ``load_state_dict``,
    in-place mutation).
    """

    def __init__(self, model):
        self._model = model
        self._config = model.config
        self._token = _fingerprint(model)
        self.encoder_blocks = [_CompiledBlock(b) for b in model.encoder.blocks()]
        self.decoder_blocks = [_CompiledBlock(b) for b in model.decoder.blocks()]
        self.input_weight = np.ascontiguousarray(
            model.input_projection.weight.data.T.astype(_F32))
        self.input_bias = model.input_projection.bias.data.astype(_F32)
        self.output_weight = np.ascontiguousarray(
            model.output_projection.weight.data.T.astype(_F32))
        self.output_bias = model.output_projection.bias.data.astype(_F32)
        self.positional = model.positional_embedding.data.astype(_F32)
        d_model = self._config.d_model
        self._mean_vector = np.full((d_model, 1), 1.0 / d_model, dtype=_F32)
        self._ones = {}

    def is_current(self):
        """True while the model parameters still match the compiled weights."""
        return self._token == _fingerprint(self._model)

    # ------------------------------------------------------------------ #
    def _ones_column(self, seq):
        ones = self._ones.get(seq)
        if ones is None:
            ones = np.ones((seq, 1), dtype=_F32)
            self._ones[seq] = ones
        return ones

    def _unit_norm(self, x, eps):
        """Layer norm without the affine part (folded into the next GEMM)."""
        mean = x @ self._mean_vector
        centred = x - mean
        variance = (centred * centred) @ self._mean_vector
        variance += eps
        np.sqrt(variance, out=variance)
        centred /= variance
        return centred

    def _layer_norm(self, x, weight_bias, eps):
        weight, bias = weight_bias
        centred = self._unit_norm(x, eps)
        centred *= weight
        centred += bias
        return centred

    @staticmethod
    def _gelu(x):
        t = x * x
        t *= x
        t *= _F32(0.044715)
        t += x
        t *= _F32(np.sqrt(2.0 / np.pi))
        np.tanh(t, out=t)
        t += _F32(1.0)
        t *= _F32(0.5)
        t *= x
        return t

    def _block_forward(self, x, count, seq, block):
        d_model = x.shape[1]
        heads, head_dim = block.num_heads, block.head_dim
        normed = self._unit_norm(x, block.eps)
        qkv = normed @ block.qkv_weight
        qkv += block.qkv_bias
        qkv = qkv.reshape(count, seq, 3, heads, head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4).reshape(3, count * heads, seq, head_dim).copy()
        query, key, value = qkv[0], qkv[1], qkv[2]
        scores = query @ key.transpose(0, 2, 1)
        if float(scores.max()) > _SOFTMAX_GUARD:  # pragma: no cover - guard path
            scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        row_sums = scores @ self._ones_column(seq)
        np.reciprocal(row_sums, out=row_sums)
        scores *= row_sums
        merged = (scores @ value).reshape(count, heads, seq, head_dim)
        merged = merged.transpose(0, 2, 1, 3).reshape(-1, d_model)
        attended = merged @ block.out_weight
        attended += block.out_bias
        attended += x
        normed = self._unit_norm(attended, block.eps)
        hidden = normed @ block.ff1_weight
        hidden += block.ff1_bias
        out = self._gelu(hidden) @ block.ff2_weight
        out += block.ff2_bias
        out += attended
        return self._layer_norm(out, block.norm_out, block.eps)

    # ------------------------------------------------------------------ #
    def _predict_chunk(self, kept_tokens, kept_indices, out_indices):
        """Forward one chunk: kept tokens in, predictions at ``out_indices``."""
        cfg = self._config
        count, num_kept = kept_tokens.shape[0], kept_tokens.shape[1]
        x = kept_tokens.reshape(-1, cfg.token_dim).astype(_F32) @ self.input_weight
        x += self.input_bias
        x3 = x.reshape(count, num_kept, cfg.d_model)
        x3 += self.positional[kept_indices]
        x = x3.reshape(-1, cfg.d_model)
        for block in self.encoder_blocks:
            x = self._block_forward(x, count, num_kept, block)
        full = np.zeros((count, cfg.tokens_per_patch, cfg.d_model), dtype=_F32)
        full[:, kept_indices, :] = x.reshape(count, num_kept, cfg.d_model)
        full += self.positional
        x = full.reshape(-1, cfg.d_model)
        for block in self.decoder_blocks:
            x = self._block_forward(x, count, cfg.tokens_per_patch, block)
        features = x.reshape(count, cfg.tokens_per_patch, cfg.d_model)
        selected = features[:, out_indices, :].reshape(-1, cfg.d_model)
        out = selected @ self.output_weight
        out += self.output_bias
        np.negative(out, out)
        np.exp(out, out)
        out += _F32(1.0)
        np.reciprocal(out, out)
        return out.reshape(count, len(out_indices), cfg.token_dim)

    def predict(self, kept_tokens, kept_indices, out_indices, chunk=DEFAULT_CHUNK):
        """Predict token pixels for a stacked multi-image patch batch.

        Parameters
        ----------
        kept_tokens:
            ``(total_patches, num_kept, token_dim)`` array holding only the
            *kept* sub-patch tokens (grid order) of every patch in the batch,
            images concatenated along the first axis.
        kept_indices / out_indices:
            Flat grid positions of the kept tokens and of the positions to
            predict (typically the erased ones).
        chunk:
            Patches per forward chunk (:data:`DEFAULT_CHUNK`).

        Returns a float32 ``(total_patches, len(out_indices), token_dim)``
        array of sigmoid pixel predictions.
        """
        kept_tokens = np.asarray(kept_tokens)
        total = kept_tokens.shape[0]
        if len(out_indices) == 0:
            return np.zeros((total, 0, self._config.token_dim), dtype=_F32)
        if total <= chunk:
            return self._predict_chunk(kept_tokens, kept_indices, out_indices)
        return np.concatenate([
            self._predict_chunk(kept_tokens[start:start + chunk], kept_indices, out_indices)
            for start in range(0, total, chunk)
        ])
