"""Erase-mask generation strategies.

Masks are uint8 arrays over the sub-patch grid of one patch where **1 means
the sub-patch is kept** and **0 means it is erased**.  The paper's proposed
strategy is the row-based conditional sampler; the alternatives implemented
here (pure random, diagonal, uniform/super-resolution) are the comparison
points of Fig. 2/3 and Fig. 7a-b.
"""

from __future__ import annotations

import numpy as np

from ..entropy.rle import decode_binary_mask, encode_binary_mask
from .sampler import RowConditionalSampler

__all__ = [
    "proposed_mask",
    "random_mask",
    "diagonal_mask",
    "uniform_mask",
    "mask_erase_ratio",
    "serialize_mask",
    "deserialize_mask",
    "mask_summary",
]


def proposed_mask(grid_size, erase_per_row, intra_row_min_distance=1,
                  inter_row_min_distance=0, rng=None, seed=None):
    """The paper's row-based conditional erase mask (1 = keep, 0 = erase)."""
    sampler = RowConditionalSampler(grid_size, erase_per_row,
                                    intra_row_min_distance, inter_row_min_distance)
    return sampler.sample_mask(rng=rng, seed=seed)


def random_mask(grid_size, erase_per_row, rng=None, seed=None, balanced_rows=True):
    """Unconstrained random erase mask (the paper's "random" baseline).

    With ``balanced_rows=True`` the same *number* of sub-patches is erased in
    every row (so the squeeze step still produces a rectangle) but positions
    are chosen without any distance constraint, which allows the large
    contiguous holes the paper shows in Fig. 2(a).  With ``balanced_rows=
    False`` the positions are free across the whole grid.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    mask = np.ones((grid_size, grid_size), dtype=np.uint8)
    if balanced_rows:
        for row in range(grid_size):
            columns = rng.choice(grid_size, size=erase_per_row, replace=False)
            mask[row, columns] = 0
    else:
        total = erase_per_row * grid_size
        flat = rng.choice(grid_size * grid_size, size=total, replace=False)
        mask.reshape(-1)[flat] = 0
    return mask


def diagonal_mask(grid_size, erase_per_row=1, offset=0):
    """Deterministic diagonal erase mask (paper Fig. 2(b)).

    Erases ``erase_per_row`` sub-patches per row at evenly spaced diagonal
    positions — the special case of the row-based sampler the paper uses to
    motivate the generalised definition.
    """
    mask = np.ones((grid_size, grid_size), dtype=np.uint8)
    stride = max(1, grid_size // max(1, erase_per_row))
    for row in range(grid_size):
        for k in range(erase_per_row):
            column = (row + offset + k * stride) % grid_size
            mask[row, column] = 0
    return mask


def uniform_mask(grid_size, factor=2):
    """Uniform down-sampling mask: keep one sub-patch out of every ``factor``.

    With ``factor=2`` and 1×1 sub-patches this is exactly the pixel lattice a
    2× super-resolution pipeline transmits, which is the degenerate case the
    paper compares against in Table I.
    """
    mask = np.zeros((grid_size, grid_size), dtype=np.uint8)
    mask[::1, ::factor] = 1
    # alternate the kept column phase between rows to mimic quincunx sampling
    for row in range(grid_size):
        if row % factor:
            mask[row] = np.roll(mask[row], row % factor)
    return mask


def mask_erase_ratio(mask):
    """Fraction of erased (zero) entries in a mask."""
    mask = np.asarray(mask)
    return float(1.0 - mask.mean())


def serialize_mask(mask):
    """Serialise a mask to compact bytes for transmission.

    The paper notes a 32×32 binary mask costs at most 128 bytes; the RLE
    encoding used here is typically smaller for structured masks.
    """
    return encode_binary_mask(mask)


def deserialize_mask(payload):
    """Inverse of :func:`serialize_mask`."""
    return decode_binary_mask(payload)


def mask_summary(mask):
    """Human-readable statistics of a mask (used in logs and examples)."""
    mask = np.asarray(mask)
    per_row = (mask == 0).sum(axis=1)
    return {
        "grid_size": mask.shape[0],
        "erase_ratio": mask_erase_ratio(mask),
        "erased_per_row_min": int(per_row.min()),
        "erased_per_row_max": int(per_row.max()),
        "serialized_bytes": len(serialize_mask(mask)),
    }
