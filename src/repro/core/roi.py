"""Region-of-interest (ROI) aware erase-and-squeeze.

The paper's related-work section motivates ROI prioritisation on the edge
(HiRISE-style in-sensor selection) and Easz's erase ratio is a per-patch
knob, so the two compose naturally: patches with little visual content can be
erased aggressively while salient patches keep more sub-patches.  This module
implements that extension on top of the standard Easz machinery:

* a cheap, model-free per-patch saliency estimate (local contrast + gradient
  energy — something an MCU-class ISP could compute);
* an allocator that converts the saliency map and a global erase-ratio budget
  into a per-patch erase level;
* :class:`RoiEaszEncoder` / :class:`RoiEaszDecoder`, which group patches by
  erase level, squeeze and compress each group as a strip, and reconstruct
  each group with the *same* shared transformer model (one model serves all
  levels — the Easz agility property carries over unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..codecs.base import CompressedImage
from ..codecs.jpeg import JpegCodec
from ..image import image_num_pixels, to_float
from .config import EaszConfig
from .erase_squeeze import get_squeeze_plan
from .masks import proposed_mask
from .patchify import image_to_patches, patches_to_image
from .reconstruction import EaszReconstructor, reconstruct_image

__all__ = [
    "saliency_map",
    "allocate_erase_levels",
    "RoiCompressed",
    "RoiEaszEncoder",
    "RoiEaszDecoder",
    "RoiEaszCodec",
]


def saliency_map(image, patch_size):
    """Per-patch saliency in ``[0, 1]`` from local contrast and gradient energy.

    Returns an array of shape ``(rows, cols)`` matching the patch grid of
    :func:`repro.core.patchify.image_to_patches`.  The estimate is intentionally
    simple — a couple of passes over the pixels — so it adds nothing to the
    edge-side cost story.
    """
    image = to_float(image)
    if image.ndim == 3:
        image = image.mean(axis=-1)
    patches, grid_shape, _ = image_to_patches(image, patch_size)
    scores = np.empty(len(patches))
    for index, patch in enumerate(patches):
        contrast = patch.std()
        grad_y = np.abs(np.diff(patch, axis=0)).mean()
        grad_x = np.abs(np.diff(patch, axis=1)).mean()
        scores[index] = contrast + grad_y + grad_x
    low, high = scores.min(), scores.max()
    if high - low < 1e-12:
        normalised = np.zeros_like(scores)
    else:
        normalised = (scores - low) / (high - low)
    return normalised.reshape(grid_shape)


def allocate_erase_levels(saliency, config, target_ratio=None, min_erase=0, max_erase=None):
    """Convert a saliency map into per-patch erase levels.

    Parameters
    ----------
    saliency:
        ``(rows, cols)`` array in ``[0, 1]`` (1 = most salient, erase least).
    config:
        :class:`EaszConfig` defining the grid size (levels range over
        ``[min_erase, max_erase]`` sub-patches per row).
    target_ratio:
        Optional average erase ratio to hit across the image; the allocation
        is shifted level-by-level (most/least salient patches first) until
        the mean matches the budget as closely as the integer levels allow.
    min_erase, max_erase:
        Per-patch clamp on the erase level.

    Returns an integer array with the same shape as ``saliency``.
    """
    saliency = np.asarray(saliency, dtype=np.float64)
    grid = config.grid_size
    max_erase = grid - 1 if max_erase is None else min(grid - 1, max_erase)
    if min_erase > max_erase:
        raise ValueError(f"min_erase {min_erase} exceeds max_erase {max_erase}")
    span = max_erase - min_erase
    levels = np.round(min_erase + (1.0 - saliency) * span).astype(int)
    levels = np.clip(levels, min_erase, max_erase)
    if target_ratio is None:
        return levels
    target_level = target_ratio * grid
    # Shift the allocation one patch at a time towards the budget, spending
    # the adjustment on the patches where it costs the least: erase more in
    # the least salient patches, erase less in the most salient ones.
    flat_levels = levels.reshape(-1)
    flat_saliency = saliency.reshape(-1)
    order_low_saliency = np.argsort(flat_saliency)
    order_high_saliency = order_low_saliency[::-1]
    for _ in range(flat_levels.size * span + 1):
        mean_level = flat_levels.mean()
        if abs(mean_level - target_level) < 0.5 / flat_levels.size:
            break
        if mean_level < target_level:
            adjustable = [i for i in order_low_saliency if flat_levels[i] < max_erase]
            if not adjustable:
                break
            flat_levels[adjustable[0]] += 1
        else:
            adjustable = [i for i in order_high_saliency if flat_levels[i] > min_erase]
            if not adjustable:
                break
            flat_levels[adjustable[0]] -= 1
    return flat_levels.reshape(saliency.shape)


@dataclass
class RoiCompressed:
    """Wire format of one ROI-coded image: one strip per erase level."""

    level_payloads: dict
    level_masks: dict
    assignments: np.ndarray
    grid_shape: tuple
    original_shape: tuple
    patch_size: int
    subpatch_size: int
    config_summary: dict = field(default_factory=dict)

    @property
    def num_bytes(self):
        """Total transmitted bytes: strips, masks, and the assignment map."""
        payload = sum(c.num_bytes for c in self.level_payloads.values())
        masks = sum(len(m) for m in self.level_masks.values())
        assignment_bytes = int(np.ceil(self.assignments.size * 0.5))  # 4 bits/patch
        return payload + masks + assignment_bytes

    def bpp(self):
        """Bits per pixel relative to the original image."""
        return 8.0 * self.num_bytes / image_num_pixels(self.original_shape)

    def level_histogram(self):
        """Number of patches assigned to each erase level."""
        values, counts = np.unique(self.assignments, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


class RoiEaszEncoder:
    """Edge-side ROI encoder: per-patch erase levels, one squeezed strip per level."""

    def __init__(self, config=None, base_codec=None, min_erase=0, max_erase=None,
                 target_ratio=None, seed=0):
        self.config = config or EaszConfig()
        self.base_codec = base_codec if base_codec is not None else JpegCodec(quality=75)
        self.min_erase = min_erase
        grid = self.config.grid_size
        self.max_erase = grid - 1 if max_erase is None else min(grid - 1, max_erase)
        self.target_ratio = target_ratio
        self.seed = seed

    def masks_for_levels(self, levels):
        """One shared proposed mask per distinct erase level (level 0 = keep all)."""
        cfg = self.config
        masks = {}
        for level in sorted(set(int(v) for v in np.asarray(levels).reshape(-1))):
            if level == 0:
                masks[level] = np.ones((cfg.grid_size, cfg.grid_size), dtype=np.uint8)
                continue
            delta = cfg.intra_row_min_distance
            if level * (delta + 1) > cfg.grid_size:
                delta = 0
            masks[level] = proposed_mask(
                cfg.grid_size, level, delta, cfg.inter_row_min_distance,
                seed=self.seed + level,
            )
        return masks

    def encode(self, image, saliency=None, levels=None):
        """Compress ``image`` with per-patch erase levels.

        ``saliency`` (or explicit ``levels``) may be supplied; otherwise the
        built-in :func:`saliency_map` is used.
        """
        cfg = self.config
        image = to_float(image)
        patches, grid_shape, original_shape = image_to_patches(image, cfg.patch_size)
        if levels is None:
            if saliency is None:
                saliency = saliency_map(image, cfg.patch_size)
            levels = allocate_erase_levels(saliency, cfg, target_ratio=self.target_ratio,
                                           min_erase=self.min_erase, max_erase=self.max_erase)
        levels = np.asarray(levels, dtype=int)
        if levels.shape != grid_shape:
            raise ValueError(f"levels shape {levels.shape} does not match patch grid {grid_shape}")
        masks = self.masks_for_levels(levels)

        from .mask_codec import encode_mask  # local import to avoid cycle at module load

        flat_levels = levels.reshape(-1)
        level_payloads = {}
        level_masks = {}
        for level, mask in masks.items():
            member_indices = np.flatnonzero(flat_levels == level)
            if member_indices.size == 0:
                continue
            plan = get_squeeze_plan(mask, cfg.subpatch_size).require_patch_size(cfg.patch_size)
            squeezed = plan.squeeze_patches(patches[member_indices])
            # lay the group's squeezed patches side by side as one strip
            if squeezed.ndim == 4:
                strip = squeezed.transpose(1, 0, 2, 3).reshape(
                    squeezed.shape[1], -1, squeezed.shape[3])
            else:
                strip = squeezed.transpose(1, 0, 2).reshape(squeezed.shape[1], -1)
            level_payloads[level] = self.base_codec.compress(strip)
            level_masks[level] = encode_mask(mask)
        return RoiCompressed(
            level_payloads=level_payloads,
            level_masks=level_masks,
            assignments=levels,
            grid_shape=grid_shape,
            original_shape=image.shape,
            patch_size=cfg.patch_size,
            subpatch_size=cfg.subpatch_size,
            config_summary={
                "base_codec": self.base_codec.name,
                "min_erase": self.min_erase,
                "max_erase": self.max_erase,
                "target_ratio": self.target_ratio,
            },
        )


class RoiEaszDecoder:
    """Server-side ROI decoder: per-level unsqueeze + shared-model reconstruction."""

    def __init__(self, model=None, config=None, base_codec=None, fill="zero"):
        self.config = config or (model.config if model is not None else EaszConfig())
        self.model = model or EaszReconstructor(self.config)
        self.base_codec = base_codec if base_codec is not None else JpegCodec(quality=75)
        self.fill = fill

    def decode(self, compressed, reconstruct=True):
        """Recover the full image from a :class:`RoiCompressed` package."""
        from .mask_codec import decode_mask

        cfg = self.config
        flat_levels = compressed.assignments.reshape(-1)
        rows, cols = compressed.grid_shape
        n = compressed.patch_size
        sample_shape = (n, n) + tuple(compressed.original_shape[2:])
        filled_patches = np.zeros((flat_levels.size,) + sample_shape)

        level_masks = {}
        for level, payload in compressed.level_payloads.items():
            mask = decode_mask(compressed.level_masks[level])
            level_masks[level] = mask
            strip = np.clip(np.asarray(self.base_codec.decompress(payload)), 0.0, 1.0)
            plan = get_squeeze_plan(mask, compressed.subpatch_size)
            plan.require_patch_size(compressed.patch_size)
            width = plan.kept_per_row * compressed.subpatch_size
            member_indices = np.flatnonzero(flat_levels == level)
            # split the strip back into the group's squeezed patches and
            # unsqueeze the whole group in one batched scatter
            if strip.ndim == 3:
                blocks = strip.reshape(strip.shape[0], member_indices.size, width,
                                       strip.shape[2]).transpose(1, 0, 2, 3)
            else:
                blocks = strip.reshape(strip.shape[0], member_indices.size, width)
                blocks = blocks.transpose(1, 0, 2)
            filled_patches[member_indices] = plan.unsqueeze_patches(blocks, fill=self.fill)

        padded_shape = (rows * n, cols * n) + tuple(compressed.original_shape[2:])
        filled = patches_to_image(filled_patches, compressed.grid_shape, padded_shape)
        if reconstruct:
            filled = self._reconstruct_groups(filled_patches, flat_levels, level_masks,
                                              compressed, padded_shape)
        return filled[: compressed.original_shape[0], : compressed.original_shape[1], ...]

    def _reconstruct_groups(self, filled_patches, flat_levels, level_masks,
                            compressed, padded_shape):
        """Run the shared reconstructor once per erase level."""
        reconstructed = np.array(filled_patches)
        for level, mask in level_masks.items():
            if level == 0:
                continue
            member_indices = np.flatnonzero(flat_levels == level)
            if member_indices.size == 0:
                continue
            # Lay the group's patches out in a row so reconstruct_image's
            # patchify recovers exactly these patches (keeps colour handling
            # and per-channel processing in one place).
            group = np.concatenate([filled_patches[i] for i in member_indices], axis=1)
            restored = reconstruct_image(self.model, group, mask)
            n = compressed.patch_size
            for position, patch_index in enumerate(member_indices):
                reconstructed[patch_index] = restored[:, position * n:(position + 1) * n, ...]
        return patches_to_image(reconstructed, compressed.grid_shape, padded_shape)


class RoiEaszCodec:
    """ROI-aware Easz wrapped behind the standard codec interface."""

    is_neural = False

    def __init__(self, config=None, base_codec=None, model=None, min_erase=0,
                 max_erase=None, target_ratio=None, fill="zero", seed=0):
        self.config = config or EaszConfig()
        base_codec = base_codec if base_codec is not None else JpegCodec(quality=75)
        self.encoder = RoiEaszEncoder(self.config, base_codec, min_erase=min_erase,
                                      max_erase=max_erase, target_ratio=target_ratio,
                                      seed=seed)
        self.decoder = RoiEaszDecoder(model=model, config=self.config, base_codec=base_codec,
                                      fill=fill)
        self.name = f"{base_codec.name}+easz-roi"

    def compress(self, image):
        """Edge-side ROI encode; returns a :class:`CompressedImage` facade."""
        package = self.encoder.encode(image)
        return CompressedImage(
            payload=b"",
            original_shape=package.original_shape,
            codec_name=self.name,
            metadata={"roi_package": package},
            extra_bytes=package.num_bytes,
        )

    def decompress(self, compressed):
        """Server-side decode + per-level reconstruction."""
        return self.decoder.decode(compressed.metadata["roi_package"])

    def roundtrip(self, image):
        """Compress then decompress; returns ``(reconstruction, compressed)``."""
        compressed = self.compress(image)
        return self.decompress(compressed), compressed

    def with_target_ratio(self, target_ratio):
        """Return a copy of this codec targeting a different average erase ratio."""
        return RoiEaszCodec(
            config=replace(self.config),
            base_codec=self.encoder.base_codec,
            model=self.decoder.model,
            min_erase=self.encoder.min_erase,
            max_erase=self.encoder.max_erase,
            target_ratio=target_ratio,
            fill=self.decoder.fill,
            seed=self.encoder.seed,
        )
