"""``repro.core`` — the Easz framework itself (the paper's contribution).

Erase-mask generation (row-based conditional sampler), two-stage patchify,
erase-and-squeeze, the lightweight transformer reconstructor, training loops
and the end-to-end edge/server pipeline.
"""

from .adaptive import (
    BandwidthAdaptiveController,
    BitrateController,
    EraseRatioSchedule,
    RateControlResult,
)
from .config import EaszConfig
from .erase_squeeze import (
    SqueezePlan,
    erase_and_squeeze_image,
    erase_patch,
    get_squeeze_plan,
    squeeze_patch,
    squeezed_shape,
    unsqueeze_image,
    unsqueeze_patch,
    validate_balanced_mask,
)
from .mask_codec import (
    MaskSpec,
    decode_mask,
    encode_mask,
    mask_payload_format,
    pack_mask_bits,
    unpack_mask_bits,
)
from .masks import (
    deserialize_mask,
    diagonal_mask,
    mask_erase_ratio,
    mask_summary,
    proposed_mask,
    random_mask,
    serialize_mask,
    uniform_mask,
)
from .patchify import (
    attention_complexity,
    image_to_patches,
    patch_to_subpatches,
    patches_to_image,
    patches_to_tokens,
    subpatches_to_patch,
    subpatches_to_tokens,
    tokens_to_patches,
    tokens_to_subpatches,
    two_stage_patchify,
)
from .batch_engine import FusedBatchEngine
from .pipeline import EaszCodec, EaszCompressed, EaszDecoder, EaszEncoder
from .reconstruction import (
    EaszReconstructor,
    PixelIndexPlan,
    get_pixel_plan,
    reconstruct_batch,
    reconstruct_image,
)
from .roi import (
    RoiCompressed,
    RoiEaszCodec,
    RoiEaszDecoder,
    RoiEaszEncoder,
    allocate_erase_levels,
    saliency_map,
)
from .sampler import RowConditionalSampler
from .sequence import (
    EaszStreamDecoder,
    EaszStreamEncoder,
    StreamReport,
    encode_decode_stream,
    flicker_index,
)
from .training import EaszTrainer, TrainingResult, reconstruction_loss
from .transport import (
    load_package,
    pack_compressed,
    pack_package,
    pixels_from_buffer,
    save_package,
    unpack_compressed,
    unpack_package,
)

__all__ = [
    "EaszConfig",
    "RateControlResult",
    "BitrateController",
    "BandwidthAdaptiveController",
    "EraseRatioSchedule",
    "MaskSpec",
    "encode_mask",
    "decode_mask",
    "pack_mask_bits",
    "unpack_mask_bits",
    "mask_payload_format",
    "saliency_map",
    "allocate_erase_levels",
    "RoiCompressed",
    "RoiEaszEncoder",
    "RoiEaszDecoder",
    "RoiEaszCodec",
    "StreamReport",
    "EaszStreamEncoder",
    "EaszStreamDecoder",
    "encode_decode_stream",
    "flicker_index",
    "pack_package",
    "unpack_package",
    "pack_compressed",
    "unpack_compressed",
    "pixels_from_buffer",
    "save_package",
    "load_package",
    "RowConditionalSampler",
    "proposed_mask",
    "random_mask",
    "diagonal_mask",
    "uniform_mask",
    "mask_erase_ratio",
    "mask_summary",
    "serialize_mask",
    "deserialize_mask",
    "image_to_patches",
    "patches_to_image",
    "patch_to_subpatches",
    "subpatches_to_patch",
    "subpatches_to_tokens",
    "tokens_to_subpatches",
    "patches_to_tokens",
    "tokens_to_patches",
    "two_stage_patchify",
    "attention_complexity",
    "SqueezePlan",
    "get_squeeze_plan",
    "erase_patch",
    "squeeze_patch",
    "unsqueeze_patch",
    "erase_and_squeeze_image",
    "unsqueeze_image",
    "squeezed_shape",
    "validate_balanced_mask",
    "EaszReconstructor",
    "FusedBatchEngine",
    "PixelIndexPlan",
    "get_pixel_plan",
    "reconstruct_image",
    "reconstruct_batch",
    "EaszTrainer",
    "TrainingResult",
    "reconstruction_loss",
    "EaszEncoder",
    "EaszDecoder",
    "EaszCodec",
    "EaszCompressed",
]
