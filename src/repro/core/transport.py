"""Self-contained wire format for Easz transmissions.

:class:`repro.core.EaszCompressed` is an in-memory object; to actually ship a
frame over a socket (or store it on flash until the uplink comes back, as a
wildlife camera would), everything the receiver needs has to be flattened
into one byte string.  This module defines that container:

``EASZ`` packages (an erased-and-squeezed frame)::

    magic "EASZ" | version | header length (4B) | JSON header | mask bytes | codec payload

``CIMG`` packages (a plain :class:`repro.codecs.base.CompressedImage`, used
when a base codec runs without Easz)::

    magic "CIMG" | version | header length (4B) | JSON header | payload

The JSON header carries only plain types (shapes as lists, names, the base
codec's decode metadata); the binary payloads are appended verbatim so no
re-encoding happens.  ``unpack_package`` restores an object that decodes to
the same pixels as the original.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..codecs.base import CompressedImage
from .pipeline import EaszCompressed

__all__ = [
    "pack_compressed",
    "unpack_compressed",
    "pack_package",
    "unpack_package",
    "pixels_from_buffer",
    "save_package",
    "load_package",
]

_EASZ_MAGIC = b"EASZ"
_CIMG_MAGIC = b"CIMG"
_VERSION = 1


def _encode_container(magic, header, binary_parts):
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    out = bytearray()
    out += magic
    out.append(_VERSION)
    out += len(header_bytes).to_bytes(4, "big")
    out += header_bytes
    for part in binary_parts:
        out += part
    return bytes(out)


def _decode_container(data, magic):
    if len(data) < 9 or data[:4] != magic:
        raise ValueError(f"not a {magic.decode('ascii')} container")
    version = data[4]
    if version != _VERSION:
        raise ValueError(f"unsupported container version {version}")
    header_length = int.from_bytes(data[5:9], "big")
    header_end = 9 + header_length
    if header_end > len(data):
        raise ValueError("truncated container header")
    header = json.loads(data[9:header_end].decode("utf-8"))
    return header, data[header_end:]


def _tuplify(value):
    """Recursively convert JSON lists back to tuples (shape-like metadata)."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    if isinstance(value, dict):
        return {key: _tuplify(item) for key, item in value.items()}
    return value


# --------------------------------------------------------------------------- #
# plain CompressedImage containers
# --------------------------------------------------------------------------- #
def pack_compressed(compressed):
    """Serialise a :class:`CompressedImage` into a self-contained byte string."""
    try:
        json.dumps(compressed.metadata)
    except TypeError as error:
        raise ValueError(
            "CompressedImage metadata is not JSON-serialisable; wrap the codec in "
            "pack_package (Easz) or keep metadata to plain types"
        ) from error
    header = {
        "codec_name": compressed.codec_name,
        "original_shape": list(compressed.original_shape),
        "extra_bytes": compressed.extra_bytes,
        "metadata": compressed.metadata,
        "payload_length": len(compressed.payload),
    }
    return _encode_container(_CIMG_MAGIC, header, [compressed.payload])


def unpack_compressed(data):
    """Inverse of :func:`pack_compressed`."""
    header, binary = _decode_container(data, _CIMG_MAGIC)
    payload_length = header["payload_length"]
    if len(binary) < payload_length:
        raise ValueError("truncated CompressedImage payload")
    return CompressedImage(
        payload=bytes(binary[:payload_length]),
        original_shape=tuple(header["original_shape"]),
        codec_name=header["codec_name"],
        metadata=_tuplify(header["metadata"]),
        extra_bytes=header["extra_bytes"],
    )


# --------------------------------------------------------------------------- #
# Easz packages
# --------------------------------------------------------------------------- #
def pack_package(package):
    """Serialise an :class:`EaszCompressed` package into one byte string."""
    codec_payload = package.codec_payload
    try:
        json.dumps(codec_payload.metadata)
    except TypeError as error:
        raise ValueError(
            "the base codec's metadata is not JSON-serialisable; transport only "
            "supports codecs with plain-type metadata"
        ) from error
    try:
        json.dumps(package.config_summary)
    except TypeError as error:
        raise ValueError(
            "EaszCompressed.config_summary is not JSON-serialisable; keep encoder "
            "settings to plain types so served responses can echo them"
        ) from error
    header = {
        "codec_name": codec_payload.codec_name,
        "codec_metadata": codec_payload.metadata,
        "codec_extra_bytes": codec_payload.extra_bytes,
        "codec_original_shape": list(codec_payload.original_shape),
        "grid_shape": list(package.grid_shape),
        "original_shape": list(package.original_shape),
        "squeezed_shape": list(package.squeezed_shape),
        "config_summary": package.config_summary,
        "mask_length": len(package.mask_bytes),
        "payload_length": len(codec_payload.payload),
    }
    return _encode_container(_EASZ_MAGIC, header,
                             [package.mask_bytes, codec_payload.payload])


def unpack_package(data):
    """Inverse of :func:`pack_package`."""
    header, binary = _decode_container(data, _EASZ_MAGIC)
    mask_length = header["mask_length"]
    payload_length = header["payload_length"]
    if len(binary) < mask_length + payload_length:
        raise ValueError("truncated Easz package payload")
    mask_bytes = bytes(binary[:mask_length])
    payload = bytes(binary[mask_length:mask_length + payload_length])
    codec_payload = CompressedImage(
        payload=payload,
        original_shape=tuple(header["codec_original_shape"]),
        codec_name=header["codec_name"],
        metadata=_tuplify(header["codec_metadata"]),
        extra_bytes=header["codec_extra_bytes"],
    )
    return EaszCompressed(
        codec_payload=codec_payload,
        mask_bytes=mask_bytes,
        grid_shape=tuple(header["grid_shape"]),
        original_shape=tuple(header["original_shape"]),
        squeezed_shape=tuple(header["squeezed_shape"]),
        # _tuplify so tuple-valued encoder settings survive the JSON
        # round-trip unchanged (served responses echo this dict verbatim);
        # .get() tolerates containers written before the field existed
        config_summary=_tuplify(header.get("config_summary", {})),
    )


# --------------------------------------------------------------------------- #
# zero-copy container views
# --------------------------------------------------------------------------- #
def pixels_from_buffer(buffer, shape, dtype, copy=False):
    """Pixel array over ``buffer`` without copying when the layout permits.

    The serving layer moves reconstructed pixels as raw buffers (queue
    message bytes, shared-memory ring slots); this is the single place that
    turns such a buffer back into an ``ndarray``.  When the buffer start is
    aligned for ``dtype`` the result is a **read-only zero-copy view**
    aliasing the buffer; an unaligned buffer (or ``copy=True``) falls back
    to a fresh owning array, because numpy operations on unaligned views are
    silently slow and a view pinned to a reusable buffer (a ring slot) must
    be copied out before the slot is recycled anyway.

    Oversized buffers are tolerated (trailing bytes ignored — a fixed-size
    slot usually holds a smaller image); a buffer shorter than
    ``prod(shape) * itemsize`` raises ``ValueError``.  Zero-element shapes
    yield an empty array of the right shape.
    """
    dtype = np.dtype(dtype)
    shape = tuple(int(dim) for dim in shape)
    count = 1
    for dim in shape:
        if dim < 0:
            raise ValueError(f"negative dimension in shape {shape}")
        count *= dim
    nbytes = count * dtype.itemsize
    view = memoryview(buffer)
    if not view.contiguous:
        view = memoryview(bytes(view))  # rare: non-contiguous exporters copy once
    view = view.cast("B")
    if view.nbytes < nbytes:
        raise ValueError(
            f"buffer holds {view.nbytes} bytes; shape {shape} of {dtype} needs {nbytes}")
    raw = np.frombuffer(view, dtype=np.uint8, count=nbytes)
    aligned = raw.ctypes.data % max(dtype.alignment, 1) == 0
    if copy or not aligned:
        pixels = np.empty(count, dtype=dtype)
        pixels.view(np.uint8)[...] = raw
        return pixels.reshape(shape)
    pixels = raw.view(dtype).reshape(shape)
    pixels.setflags(write=False)  # aliases the caller's buffer: never scribble
    return pixels


# --------------------------------------------------------------------------- #
# file helpers
# --------------------------------------------------------------------------- #
def save_package(package, path):
    """Write an :class:`EaszCompressed` (or :class:`CompressedImage`) to disk."""
    if isinstance(package, EaszCompressed):
        data = pack_package(package)
    elif isinstance(package, CompressedImage):
        data = pack_compressed(package)
    else:
        raise TypeError(f"cannot serialise object of type {type(package).__name__}")
    with open(path, "wb") as handle:
        handle.write(data)
    return os.path.getsize(path)


def load_package(path):
    """Read a package written by :func:`save_package` (dispatching on the magic)."""
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:4] == _EASZ_MAGIC:
        return unpack_package(data)
    if data[:4] == _CIMG_MAGIC:
        return unpack_compressed(data)
    raise ValueError(f"{path} is not a repro transport container")
