"""Configuration objects for the Easz framework."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EaszConfig"]


@dataclass
class EaszConfig:
    """Hyper-parameters of the Easz erase-and-squeeze + reconstruction pipeline.

    Attributes
    ----------
    patch_size:
        First-stage patch size ``n`` — attention never crosses a patch
        boundary (paper Section III-B, "Two-Stage Image Patchify").
    subpatch_size:
        Second-stage sub-patch (erase block) size ``b``; sub-patches are the
        tokens of the reconstruction transformer and the erase granularity.
    erase_per_row:
        ``T`` — number of sub-patches erased per sub-patch row by the
        row-based conditional sampler.  ``erase_ratio`` is ``T / (n/b)``.
    intra_row_min_distance:
        ``δ`` — minimum column distance between erased sub-patches within
        the same row (Eq. 1).
    inter_row_min_distance:
        ``Δ`` — minimum column distance from the erased sub-patches of the
        previous row.
    channels:
        Image channels the reconstructor operates on (1 = per-channel /
        grayscale operation, 3 = joint RGB tokens).
    d_model, num_heads, encoder_blocks, decoder_blocks, ffn_mult:
        Transformer dimensions (paper: two encoder + two decoder blocks).
    loss_lambda:
        Weight of the perceptual (LPIPS-proxy) term in the training loss
        (paper Eq. 2 uses 0.3).
    learning_rate, weight_decay, batch_size:
        Pre-training hyper-parameters (paper Section IV-A).
    seed:
        Seed controlling weight initialisation and mask sampling.
    """

    patch_size: int = 32
    subpatch_size: int = 4
    erase_per_row: int = 2
    intra_row_min_distance: int = 1
    inter_row_min_distance: int = 0
    channels: int = 1
    d_model: int = 64
    num_heads: int = 4
    encoder_blocks: int = 2
    decoder_blocks: int = 2
    ffn_mult: int = 4
    dropout: float = 0.0
    loss_lambda: float = 0.3
    learning_rate: float = 2.8e-4
    weight_decay: float = 0.05
    batch_size: int = 32
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.patch_size % self.subpatch_size != 0:
            raise ValueError(
                f"patch_size {self.patch_size} must be divisible by subpatch_size {self.subpatch_size}"
            )
        if self.d_model % self.num_heads != 0:
            raise ValueError(
                f"d_model {self.d_model} must be divisible by num_heads {self.num_heads}"
            )
        if not 0 <= self.erase_per_row < self.grid_size:
            raise ValueError(
                f"erase_per_row {self.erase_per_row} must be in [0, {self.grid_size})"
            )

    # ------------------------------------------------------------------ #
    @property
    def grid_size(self):
        """Number of sub-patches per patch side: ``n / b``."""
        return self.patch_size // self.subpatch_size

    @property
    def tokens_per_patch(self):
        """Number of sub-patch tokens in one patch: ``(n/b)²``."""
        return self.grid_size ** 2

    @property
    def token_dim(self):
        """Dimensionality of one flattened sub-patch token: ``b² · channels``."""
        return self.subpatch_size ** 2 * self.channels

    @property
    def erase_ratio(self):
        """Fraction of sub-patches erased: ``T / (n/b)``."""
        return self.erase_per_row / self.grid_size

    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls, **overrides):
        """Paper-scale configuration (≈8.7 MB reconstruction model)."""
        defaults = dict(patch_size=32, subpatch_size=4, erase_per_row=2,
                        d_model=192, num_heads=6, encoder_blocks=2, decoder_blocks=2,
                        ffn_mult=4)
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small(cls, **overrides):
        """CPU-friendly configuration used by tests and benchmarks."""
        defaults = dict(patch_size=16, subpatch_size=4, erase_per_row=1,
                        d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                        ffn_mult=2)
        defaults.update(overrides)
        return cls(**defaults)

    def with_erase_ratio(self, ratio):
        """Return a copy whose ``erase_per_row`` approximates ``ratio``.

        This is how Easz switches compression level without touching the
        model: only the sampler parameter changes.
        """
        erase_per_row = int(round(ratio * self.grid_size))
        erase_per_row = max(0, min(self.grid_size - 1, erase_per_row))
        return EaszConfig(**{**self.__dict__, "erase_per_row": erase_per_row})
