"""Transmission fault injection and decoder-robustness checks.

The paper's testbed uses TCP, so payloads arrive intact or not at all; real
deployments on lossy links (LoRa gateways, congested Wi-Fi, flaky cellular)
also see truncated and corrupted frames.  This module provides deterministic
fault injectors and a harness that reports how a codec behaves when its
bitstream is damaged — either a graceful error or a degraded image, never an
unbounded crash.

These utilities back the failure-injection tests in
``tests/test_edge_faults_transport.py`` and are useful on their own when
hardening a deployment ("what happens if the last packet of every burst is
lost?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "flip_bits",
    "truncate_payload",
    "drop_packets",
    "FaultInjector",
    "RobustnessResult",
    "check_decoder_robustness",
]


def flip_bits(payload, num_flips, seed=0):
    """Flip ``num_flips`` random bits of a byte payload (deterministic per seed)."""
    if num_flips < 0:
        raise ValueError("num_flips must be non-negative")
    data = bytearray(payload)
    if not data or num_flips == 0:
        return bytes(data)
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(data) * 8, size=num_flips)
    for position in positions:
        byte_index, bit_index = divmod(int(position), 8)
        data[byte_index] ^= 1 << bit_index
    return bytes(data)


def truncate_payload(payload, keep_fraction):
    """Keep only the leading ``keep_fraction`` of the payload (a cut-off transfer)."""
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in [0, 1]")
    keep = int(len(payload) * keep_fraction)
    return bytes(payload[:keep])


def drop_packets(payload, packet_bytes=1200, loss_rate=0.1, seed=0, fill=0x00):
    """Zero out whole "packets" of the payload (length is preserved).

    Modelling loss as erased-but-present segments keeps downstream framing
    intact, which matches how an application-level FEC or retransmission gap
    would surface to the decoder.
    """
    if packet_bytes <= 0:
        raise ValueError("packet_bytes must be positive")
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss_rate must be in [0, 1]")
    data = bytearray(payload)
    rng = np.random.default_rng(seed)
    for start in range(0, len(data), packet_bytes):
        if rng.random() < loss_rate:
            end = min(start + packet_bytes, len(data))
            data[start:end] = bytes([fill]) * (end - start)
    return bytes(data)


@dataclass
class FaultInjector:
    """A configurable payload-damaging channel stage.

    Attributes
    ----------
    bit_flips:
        Number of random bit flips applied to every payload.
    truncate_to:
        Fraction of the payload that survives (1.0 = no truncation).
    packet_loss_rate, packet_bytes:
        Whole-packet erasure parameters (0.0 = no loss).
    seed:
        Base RNG seed; each call advances it so repeated transfers see
        different (but reproducible) damage.
    """

    bit_flips: int = 0
    truncate_to: float = 1.0
    packet_loss_rate: float = 0.0
    packet_bytes: int = 1200
    seed: int = 0
    _calls: int = field(default=0, repr=False)

    def __post_init__(self):
        # validate at construction, not first apply(): a chaos scenario built
        # with a bad injector must fail when configured, not minutes into a run
        if self.bit_flips < 0:
            raise ValueError("bit_flips must be non-negative")
        if not 0.0 <= self.truncate_to <= 1.0:
            raise ValueError("truncate_to must be in [0, 1]")
        if not 0.0 <= self.packet_loss_rate <= 1.0:
            raise ValueError("packet_loss_rate must be in [0, 1]")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")

    def apply(self, payload):
        """Damage one payload according to the configured faults."""
        self._calls += 1
        seed = self.seed + self._calls
        damaged = bytes(payload)
        if self.packet_loss_rate > 0.0:
            damaged = drop_packets(damaged, self.packet_bytes, self.packet_loss_rate, seed)
        if self.bit_flips > 0:
            damaged = flip_bits(damaged, self.bit_flips, seed)
        if self.truncate_to < 1.0:
            damaged = truncate_payload(damaged, self.truncate_to)
        return damaged

    @property
    def is_clean(self):
        """True when the injector is configured to pass payloads through unchanged."""
        return (self.bit_flips == 0 and self.truncate_to >= 1.0
                and self.packet_loss_rate == 0.0)


@dataclass
class RobustnessResult:
    """Outcome of decoding one damaged payload."""

    codec_name: str
    fault_description: str
    outcome: str                 # "decoded" or "rejected"
    error_type: str = ""
    quality_db: float = float("nan")

    @property
    def graceful(self):
        """A decoder is graceful if it either decodes or raises a clean error."""
        return self.outcome in ("decoded", "rejected")


def check_decoder_robustness(codec, image, injector, metric=None, description=""):
    """Compress ``image``, damage the payload, and try to decode it.

    Returns a :class:`RobustnessResult`.  Only ``ValueError`` / ``KeyError`` /
    ``IndexError`` / ``EOFError`` are treated as a graceful rejection; any
    other exception propagates, because that is precisely the bug class this
    harness exists to catch.
    """
    compressed = codec.compress(image)
    compressed.payload = injector.apply(compressed.payload)
    try:
        reconstruction = codec.decompress(compressed)
    except (ValueError, KeyError, IndexError, EOFError) as error:
        return RobustnessResult(
            codec_name=codec.name,
            fault_description=description or repr(injector),
            outcome="rejected",
            error_type=type(error).__name__,
        )
    quality = float("nan")
    if metric is not None:
        quality = float(metric(np.asarray(image), np.asarray(reconstruction)))
    return RobustnessResult(
        codec_name=codec.name,
        fault_description=description or repr(injector),
        outcome="decoded",
        quality_db=quality,
    )
