"""Memory-footprint model for encode-side resource accounting (paper Fig. 6c)."""

from __future__ import annotations

__all__ = ["MemoryModel"]


class MemoryModel:
    """Estimates resident memory of running one codec stage on a device.

    footprint = runtime base
              + NN-framework / accelerator-context overhead (neural stages only)
              + model weights (with an expansion factor for optimiser-free
                inference buffers)
              + working activations / image buffers.
    """

    def __init__(self, weight_expansion=2.0):
        self.weight_expansion = weight_expansion

    def footprint_gb(self, profile, device):
        """Resident memory in GiB for ``profile`` on ``device``."""
        total_bytes = profile.model_bytes * self.weight_expansion + profile.working_memory_bytes
        footprint = device.base_memory_gb + total_bytes / 2 ** 30
        if profile.uses_gpu or profile.model_bytes > 0:
            footprint += device.nn_runtime_overhead_gb
        return float(footprint)
