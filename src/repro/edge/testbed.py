"""Edge → server testbed simulation (the paper's physical TX2 + 2080Ti setup).

:class:`EdgeServerTestbed` composes the device profiles, the latency / power /
memory models and the wireless channel to produce the end-to-end breakdown
the paper reports in Fig. 6a (erase-and-squeeze / compression / transmit /
decompression / reconstruction) as well as the encode-side power and memory
numbers of Fig. 6b-c, the motivation measurements of Fig. 1 and the
latency-vs-bitrate curve of Fig. 8d.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codecs.base import ComplexityProfile
from ..core.pipeline import EaszCodec
from ..image import image_num_pixels
from .device import JETSON_TX2, SERVER_2080TI
from .latency import LatencyModel
from .memory import MemoryModel
from .network import WIFI_TCP
from .power import PowerModel

__all__ = ["StageTiming", "TestbedReport", "EdgeServerTestbed"]


@dataclass
class StageTiming:
    """Latency breakdown of one image traversing the pipeline (milliseconds)."""

    load_ms: float = 0.0
    erase_squeeze_ms: float = 0.0
    encode_ms: float = 0.0
    transmit_ms: float = 0.0
    decode_ms: float = 0.0
    reconstruction_ms: float = 0.0

    @property
    def total_ms(self):
        """End-to-end latency excluding one-time model load."""
        return (self.erase_squeeze_ms + self.encode_ms + self.transmit_ms
                + self.decode_ms + self.reconstruction_ms)

    @property
    def total_with_load_ms(self):
        """End-to-end latency including model load (cold start)."""
        return self.total_ms + self.load_ms

    def as_dict(self):
        """Plain-dict view used by the benchmark harness when printing rows."""
        return {
            "load_ms": self.load_ms,
            "erase_squeeze_ms": self.erase_squeeze_ms,
            "encode_ms": self.encode_ms,
            "transmit_ms": self.transmit_ms,
            "decode_ms": self.decode_ms,
            "reconstruction_ms": self.reconstruction_ms,
            "total_ms": self.total_ms,
        }


@dataclass
class TestbedReport:
    """Full efficiency report for one codec / image combination."""

    codec_name: str
    image_shape: tuple
    payload_bytes: int
    timing: StageTiming
    edge_cpu_power_w: float
    edge_gpu_power_w: float
    edge_memory_gb: float
    bpp: float
    extra: dict = field(default_factory=dict)

    @property
    def edge_total_power_w(self):
        """Total encode-side power draw."""
        return self.edge_cpu_power_w + self.edge_gpu_power_w


class EdgeServerTestbed:
    """Simulated edge-device → Wi-Fi → server pipeline."""

    def __init__(self, edge_device=JETSON_TX2, server_device=SERVER_2080TI,
                 channel=WIFI_TCP, latency_model=None, power_model=None, memory_model=None):
        self.edge_device = edge_device
        self.server_device = server_device
        self.channel = channel
        self.latency = latency_model or LatencyModel()
        self.power = power_model or PowerModel()
        self.memory = memory_model or MemoryModel()

    # ------------------------------------------------------------------ #
    def _easz_stage_profiles(self, codec, shape):
        """Split an Easz codec into its edge and server stage profiles."""
        squeeze, base_encode = codec.encoder.complexity(shape)
        base_decode, reconstruction = codec.decoder.complexity(shape)
        return squeeze, base_encode, base_decode, reconstruction

    def run(self, codec, image=None, shape=None, payload_bytes=None, include_load=True):
        """Simulate one image through ``codec`` on this testbed.

        Either a real ``image`` (compressed for a true payload size) or a
        ``shape`` plus an expected ``payload_bytes`` must be provided.  When
        an image is given the actual compressed size from running the codec
        is used for the transmission term, so rate-dependent behaviour
        (Fig. 8d) is captured.
        """
        if image is not None:
            compressed = codec.compress(image)
            payload_bytes = compressed.num_bytes
            shape = image.shape
        if shape is None or payload_bytes is None:
            raise ValueError("provide either an image, or both shape and payload_bytes")

        timing = StageTiming()
        if isinstance(codec, EaszCodec):
            squeeze, base_encode, base_decode, reconstruction = self._easz_stage_profiles(codec, shape)
            timing.erase_squeeze_ms = self.latency.compute_latency_ms(squeeze, self.edge_device)
            timing.encode_ms = self.latency.compute_latency_ms(base_encode, self.edge_device)
            timing.decode_ms = self.latency.compute_latency_ms(base_decode, self.server_device)
            timing.reconstruction_ms = self.latency.compute_latency_ms(reconstruction, self.server_device)
            edge_profile = ComplexityProfile(
                macs=squeeze.macs + base_encode.macs,
                model_bytes=base_encode.model_bytes,
                working_memory_bytes=squeeze.working_memory_bytes + base_encode.working_memory_bytes,
                uses_gpu=base_encode.uses_gpu,
            )
        else:
            encode_profile = codec.encode_complexity(shape)
            decode_profile = codec.decode_complexity(shape)
            timing.encode_ms = self.latency.compute_latency_ms(encode_profile, self.edge_device)
            timing.decode_ms = self.latency.compute_latency_ms(decode_profile, self.server_device)
            edge_profile = encode_profile
        if include_load:
            timing.load_ms = self.latency.load_latency_ms(edge_profile.model_bytes, self.edge_device)
        timing.transmit_ms = self.channel.transmit_latency_ms(payload_bytes)

        power = self.power.estimate(edge_profile, self.edge_device)
        memory_gb = self.memory.footprint_gb(edge_profile, self.edge_device)
        return TestbedReport(
            codec_name=codec.name,
            image_shape=tuple(shape),
            payload_bytes=int(payload_bytes),
            timing=timing,
            edge_cpu_power_w=power.cpu_w,
            edge_gpu_power_w=power.gpu_w,
            edge_memory_gb=memory_gb,
            bpp=8.0 * payload_bytes / image_num_pixels(shape),
        )

    # ------------------------------------------------------------------ #
    def compression_level_switch_ms(self, codec, shape=None):
        """Cost of switching to a different compression level (paper Fig. 1).

        Conventional NN codecs must load a different set of weights; Easz
        (and the classical codecs) only change a scalar parameter.
        """
        if isinstance(codec, EaszCodec):
            return 0.0
        profile = codec.encode_complexity(shape or (512, 768, 3))
        return self.latency.switch_latency_ms(profile.model_bytes, self.edge_device)
