"""Energy and battery-lifetime models for edge deployments.

The paper reports instantaneous encode power (Fig. 6b); what a deployment
planner actually cares about is energy per image (power × latency) and how
long a battery-powered camera node lasts.  This module converts the testbed's
power/latency estimates into per-image energy and node lifetime, which the
wildlife-monitoring and fleet examples use to show the practical consequence
of Easz's edge-compute-free design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyBreakdown", "EnergyModel", "BatteryModel"]


@dataclass
class EnergyBreakdown:
    """Per-image energy split by pipeline stage (joules)."""

    compute_j: float = 0.0
    transmit_j: float = 0.0
    idle_j: float = 0.0
    details: dict = field(default_factory=dict)

    @property
    def total_j(self):
        """Total energy spent on one image."""
        return self.compute_j + self.transmit_j + self.idle_j

    @property
    def total_mwh(self):
        """Total energy in milliwatt-hours (battery-datasheet units)."""
        return self.total_j / 3.6


class EnergyModel:
    """Converts a :class:`repro.edge.TestbedReport` into edge-side energy.

    Parameters
    ----------
    radio_transmit_w:
        Radio power while actively transmitting (Wi-Fi client ≈ 1.3 W).
    radio_idle_w:
        Radio power while associated but idle.
    """

    def __init__(self, radio_transmit_w=1.3, radio_idle_w=0.25):
        self.radio_transmit_w = float(radio_transmit_w)
        self.radio_idle_w = float(radio_idle_w)

    def per_image(self, report, include_load=False):
        """Edge-side energy of one image given a testbed report.

        Compute energy covers erase-and-squeeze plus base-codec encode (and
        the one-time model load when ``include_load`` is set); transmit
        energy is the radio's active power over the transmission time.
        """
        timing = report.timing
        compute_ms = timing.erase_squeeze_ms + timing.encode_ms
        if include_load:
            compute_ms += timing.load_ms
        compute_j = report.edge_total_power_w * compute_ms * 1e-3
        transmit_j = self.radio_transmit_w * timing.transmit_ms * 1e-3
        idle_j = self.radio_idle_w * compute_ms * 1e-3
        return EnergyBreakdown(
            compute_j=compute_j,
            transmit_j=transmit_j,
            idle_j=idle_j,
            details={
                "codec": report.codec_name,
                "compute_ms": compute_ms,
                "transmit_ms": timing.transmit_ms,
                "edge_power_w": report.edge_total_power_w,
            },
        )


@dataclass
class BatteryModel:
    """A battery-powered camera node's energy budget.

    Attributes
    ----------
    capacity_wh:
        Usable battery capacity in watt-hours (e.g. 2 × 18650 ≈ 18 Wh).
    standby_w:
        Baseline draw while the node sleeps between captures.
    usable_fraction:
        Fraction of nominal capacity that is actually usable (discharge
        cutoff, converter losses).
    """

    capacity_wh: float = 18.0
    standby_w: float = 0.08
    usable_fraction: float = 0.85

    @property
    def usable_j(self):
        """Usable energy in joules."""
        return self.capacity_wh * 3600.0 * self.usable_fraction

    def images_per_charge(self, energy_per_image):
        """How many images one charge supports, ignoring standby draw."""
        per_image_j = energy_per_image.total_j if isinstance(energy_per_image, EnergyBreakdown) \
            else float(energy_per_image)
        if per_image_j <= 0:
            raise ValueError("energy per image must be positive")
        return int(self.usable_j // per_image_j)

    def lifetime_hours(self, energy_per_image, images_per_hour):
        """Node lifetime in hours at a given capture rate, including standby."""
        per_image_j = energy_per_image.total_j if isinstance(energy_per_image, EnergyBreakdown) \
            else float(energy_per_image)
        if images_per_hour < 0:
            raise ValueError("images_per_hour must be non-negative")
        hourly_j = per_image_j * images_per_hour + self.standby_w * 3600.0
        if hourly_j <= 0:
            return float("inf")
        return self.usable_j / hourly_j

    def lifetime_days(self, energy_per_image, images_per_hour):
        """Node lifetime in days at a given capture rate."""
        return self.lifetime_hours(energy_per_image, images_per_hour) / 24.0
