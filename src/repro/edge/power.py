"""Power model for encode-side resource accounting (paper Fig. 6b)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerEstimate", "PowerModel"]


@dataclass
class PowerEstimate:
    """Average power draw of one stage, split by engine."""

    cpu_w: float
    gpu_w: float

    @property
    def total_w(self):
        """Total average power in watts."""
        return self.cpu_w + self.gpu_w


class PowerModel:
    """Maps a :class:`ComplexityProfile` onto average CPU/GPU power.

    CPU power scales between idle and active with a utilisation estimate
    (codec work that fits well below the device's throughput draws less than
    the fully-active figure); GPU power is active whenever the stage runs on
    the GPU, plus the extra CPU cost of feeding the accelerator.
    """

    def __init__(self, cpu_feeding_fraction=0.45):
        self.cpu_feeding_fraction = cpu_feeding_fraction

    def estimate(self, profile, device, reference_macs=5e9):
        """Average power of running ``profile`` on ``device``.

        ``reference_macs`` sets the work level considered "fully active" for
        CPU-only stages; light stages (e.g. erase-and-squeeze) therefore draw
        close to idle power, as the Tegrastats measurements in the paper show.
        """
        if profile.uses_gpu and device.has_gpu:
            cpu_w = device.cpu_idle_w + self.cpu_feeding_fraction * (
                device.cpu_active_w - device.cpu_idle_w
            )
            gpu_w = device.gpu_active_w
            return PowerEstimate(cpu_w=cpu_w, gpu_w=gpu_w)
        utilisation = min(1.0, profile.macs / reference_macs)
        cpu_w = device.cpu_idle_w + utilisation * (device.cpu_active_w - device.cpu_idle_w)
        return PowerEstimate(cpu_w=cpu_w, gpu_w=device.gpu_idle_w if device.has_gpu else 0.0)
