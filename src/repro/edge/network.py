"""Wireless transmission channel model (edge → server over Wi-Fi TCP).

The paper's testbed connects the Jetson TX2 and the server through a Wi-Fi
router with a TCP socket; transmission of a compressed 512×768 image takes
≈150 ms almost independently of the codec, i.e. the latency is dominated by
connection/propagation overhead rather than raw throughput.  The channel
model therefore has a fixed per-transfer overhead plus a serialisation term.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WirelessChannel", "WIFI_TCP"]


@dataclass
class WirelessChannel:
    """A simple fixed-overhead + throughput channel model.

    Attributes
    ----------
    bandwidth_mbps:
        Sustained TCP goodput in megabits per second.
    per_transfer_overhead_ms:
        Fixed cost per image transfer (TCP handshake reuse, framing, ACK
        round-trips over Wi-Fi).
    loss_retransmission_factor:
        Multiplier ≥ 1 applied to the serialisation delay to account for
        retransmissions on a lossy link.
    """

    bandwidth_mbps: float = 6.0
    per_transfer_overhead_ms: float = 120.0
    loss_retransmission_factor: float = 1.0

    def transmit_latency_ms(self, num_bytes):
        """Latency in milliseconds to deliver ``num_bytes``."""
        serialisation_ms = (num_bytes * 8) / (self.bandwidth_mbps * 1e6) * 1e3
        return self.per_transfer_overhead_ms + serialisation_ms * self.loss_retransmission_factor

    def throughput_bytes_per_s(self):
        """Steady-state payload throughput of the channel."""
        return self.bandwidth_mbps * 1e6 / 8.0


#: Default channel calibrated to the paper's ≈150 ms transfers.
WIFI_TCP = WirelessChannel()
