"""Device profiles for the edge/server testbed simulation.

The paper's efficiency results (Fig. 1, Fig. 6, Fig. 8d) were measured on a
physical NVIDIA Jetson TX2 edge board and an i7-9700K + RTX 2080Ti server.
Neither is available here, so devices are modelled by a small set of
sustained-throughput and power parameters.  The numbers are calibrated so
that the published motivating measurements are reproduced to first order
(e.g. ≈18 s to encode a 512×768 image with Cheng-anchor on the TX2, ≈150 ms
to transmit the compressed file over Wi-Fi).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "JETSON_TX2", "RASPBERRY_PI4", "SERVER_2080TI", "SERVER_A100"]


@dataclass(frozen=True)
class DeviceProfile:
    """Sustained-performance and power model of one device.

    Attributes
    ----------
    name:
        Human-readable device name.
    cpu_gmacs_per_s:
        Effective CPU throughput (GMAC/s) for codec-style integer/DSP work.
    gpu_gmacs_per_s:
        Effective GPU throughput (GMAC/s) for neural-network inference;
        ``0`` means no usable GPU.
    storage_read_mb_per_s:
        Sequential read bandwidth used when loading model weights.
    model_init_s_per_100mb:
        Framework graph-build/initialisation time per 100 MB of weights
        (dominates "load latency" for large context models on the TX2).
    cpu_idle_w, cpu_active_w:
        CPU package power at idle and under sustained load.
    gpu_idle_w, gpu_active_w:
        GPU power at idle and under sustained inference load.
    base_memory_gb:
        Resident memory of the runtime before any model is loaded.
    nn_runtime_overhead_gb:
        Additional resident memory of the NN framework + CUDA context when a
        neural model is in use.
    """

    name: str
    cpu_gmacs_per_s: float
    gpu_gmacs_per_s: float
    storage_read_mb_per_s: float
    model_init_s_per_100mb: float
    cpu_idle_w: float
    cpu_active_w: float
    gpu_idle_w: float
    gpu_active_w: float
    base_memory_gb: float
    nn_runtime_overhead_gb: float

    @property
    def has_gpu(self):
        """Whether the device has a usable GPU."""
        return self.gpu_gmacs_per_s > 0


#: NVIDIA Jetson TX2 (edge device used throughout the paper).
JETSON_TX2 = DeviceProfile(
    name="jetson-tx2",
    cpu_gmacs_per_s=4.0,
    gpu_gmacs_per_s=13.0,
    storage_read_mb_per_s=90.0,
    model_init_s_per_100mb=4.5,
    cpu_idle_w=0.25,
    cpu_active_w=1.0,
    gpu_idle_w=0.05,
    gpu_active_w=1.9,
    base_memory_gb=0.95,
    nn_runtime_overhead_gb=0.70,
)

#: Raspberry Pi 4 (the "less potent than TX2" endpoint mentioned in Sec. II).
RASPBERRY_PI4 = DeviceProfile(
    name="raspberry-pi4",
    cpu_gmacs_per_s=1.5,
    gpu_gmacs_per_s=0.0,
    storage_read_mb_per_s=45.0,
    model_init_s_per_100mb=9.0,
    cpu_idle_w=0.6,
    cpu_active_w=2.2,
    gpu_idle_w=0.0,
    gpu_active_w=0.0,
    base_memory_gb=0.45,
    nn_runtime_overhead_gb=0.70,
)

#: Desktop server with an RTX 2080Ti (the paper's receiver).
SERVER_2080TI = DeviceProfile(
    name="server-2080ti",
    cpu_gmacs_per_s=60.0,
    gpu_gmacs_per_s=900.0,
    storage_read_mb_per_s=1500.0,
    model_init_s_per_100mb=0.4,
    cpu_idle_w=10.0,
    cpu_active_w=65.0,
    gpu_idle_w=15.0,
    gpu_active_w=220.0,
    base_memory_gb=1.2,
    nn_runtime_overhead_gb=1.2,
)

#: Datacenter A100 (the upgrade path discussed in Sec. IV-B).
SERVER_A100 = DeviceProfile(
    name="server-a100",
    cpu_gmacs_per_s=120.0,
    gpu_gmacs_per_s=6000.0,
    storage_read_mb_per_s=3000.0,
    model_init_s_per_100mb=0.2,
    cpu_idle_w=20.0,
    cpu_active_w=90.0,
    gpu_idle_w=40.0,
    gpu_active_w=300.0,
    base_memory_gb=1.5,
    nn_runtime_overhead_gb=1.5,
)
