"""``repro.edge`` — analytical edge/server testbed simulation.

Replaces the paper's physical Jetson TX2 + RTX 2080Ti + Wi-Fi testbed with
calibrated device, latency, power, memory and channel models (see DESIGN.md
§2 for the substitution rationale).
"""

from .device import (
    DeviceProfile,
    JETSON_TX2,
    RASPBERRY_PI4,
    SERVER_2080TI,
    SERVER_A100,
)
from .energy import BatteryModel, EnergyBreakdown, EnergyModel
from .faults import (
    FaultInjector,
    RobustnessResult,
    check_decoder_robustness,
    drop_packets,
    flip_bits,
    truncate_payload,
)
from .fleet import CameraNode, FleetReport, FleetSimulation, erlang_c, md_c_wait_s
from .latency import LatencyModel
from .memory import MemoryModel
from .network import WIFI_TCP, WirelessChannel
from .power import PowerEstimate, PowerModel
from .testbed import EdgeServerTestbed, StageTiming, TestbedReport

__all__ = [
    "DeviceProfile",
    "JETSON_TX2",
    "RASPBERRY_PI4",
    "SERVER_2080TI",
    "SERVER_A100",
    "LatencyModel",
    "PowerModel",
    "PowerEstimate",
    "MemoryModel",
    "EnergyModel",
    "EnergyBreakdown",
    "BatteryModel",
    "FaultInjector",
    "RobustnessResult",
    "check_decoder_robustness",
    "flip_bits",
    "truncate_payload",
    "drop_packets",
    "CameraNode",
    "FleetReport",
    "FleetSimulation",
    "erlang_c",
    "md_c_wait_s",
    "WirelessChannel",
    "WIFI_TCP",
    "EdgeServerTestbed",
    "StageTiming",
    "TestbedReport",
]
