"""Latency model: turns a :class:`ComplexityProfile` into milliseconds on a device."""

from __future__ import annotations

__all__ = ["LatencyModel"]


class LatencyModel:
    """Maps computational profiles onto wall-clock latency for a device.

    The model is deliberately simple: compute time is MACs divided by the
    device's sustained throughput for the execution engine the stage uses
    (CPU or GPU), plus a small fixed dispatch overhead; model-load time is a
    storage-read term plus a framework-initialisation term proportional to
    the model size.  That is enough to reproduce the orders-of-magnitude
    separation in the paper's Fig. 1 / Fig. 6a.
    """

    def __init__(self, dispatch_overhead_ms=2.0):
        self.dispatch_overhead_ms = dispatch_overhead_ms

    def compute_latency_ms(self, profile, device):
        """Latency of running ``profile`` (a :class:`ComplexityProfile`) on ``device``."""
        if profile.uses_gpu and device.has_gpu:
            throughput = device.gpu_gmacs_per_s
        else:
            throughput = device.cpu_gmacs_per_s
        seconds = profile.macs / (throughput * 1e9)
        return self.dispatch_overhead_ms + seconds * 1e3

    def load_latency_ms(self, model_bytes, device):
        """Latency of loading (and initialising) ``model_bytes`` of weights."""
        if model_bytes <= 0:
            return 0.0
        read_s = model_bytes / (device.storage_read_mb_per_s * 2 ** 20)
        init_s = device.model_init_s_per_100mb * (model_bytes / (100 * 2 ** 20))
        return (read_s + init_s) * 1e3

    def switch_latency_ms(self, model_bytes, device):
        """Latency of switching compression level when it requires a model swap.

        For conventional NN codecs every quality level is a separate set of
        weights, so switching costs a full reload; Easz switches by changing
        the sampler parameter only, which is free.
        """
        return self.load_latency_ms(model_bytes, device)
