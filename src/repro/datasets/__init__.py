"""``repro.datasets`` — deterministic synthetic stand-ins for Kodak, CLIC and CIFAR-10.

See DESIGN.md §2 for why synthetic data is used and what properties it
preserves for the paper's experiments.
"""

from .base import ImageDataset
from .cifar import CifarLikeDataset
from .clic import ClicDataset
from .kodak import KodakDataset
from .loaders import PatchBatcher, extract_patches
from .synthetic import SyntheticImageGenerator

__all__ = [
    "ImageDataset",
    "SyntheticImageGenerator",
    "KodakDataset",
    "ClicDataset",
    "CifarLikeDataset",
    "PatchBatcher",
    "extract_patches",
]
