"""Procedural natural-image synthesis.

The paper evaluates on Kodak (24 photos at 768×512), CLIC and CIFAR-10; none
can be downloaded offline, so the datasets in this package generate
*natural-image-like* content procedurally.  The generator combines the
ingredients that matter for compression and masking experiments:

* a 1/f-style multi-octave noise field (natural power spectrum → realistic
  local pixel correlation, which is what the Easz reconstruction exploits);
* smooth illumination gradients and colour casts;
* piecewise-constant regions with sharp boundaries (objects / occlusions,
  which stress blocking artifacts and erase-mask placement);
* oriented texture patches (stripes / gratings) that behave like fabric,
  grass or water in real photos.

Every image is fully determined by a seed, so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

__all__ = ["SyntheticImageGenerator"]


class SyntheticImageGenerator:
    """Deterministic generator of natural-looking RGB or grayscale images.

    Parameters
    ----------
    height, width:
        Output resolution.
    color:
        Generate RGB (``True``) or grayscale (``False``) images.
    texture_strength, edge_density:
        Knobs controlling how much high-frequency texture and how many
        object boundaries appear; the dataset profiles (Kodak-like vs
        CLIC-like) use different presets.
    """

    def __init__(self, height=512, width=768, color=True,
                 texture_strength=1.0, edge_density=1.0):
        self.height = height
        self.width = width
        self.color = color
        self.texture_strength = texture_strength
        self.edge_density = edge_density

    # ------------------------------------------------------------------ #
    def _octave_noise(self, rng):
        """Multi-octave smoothed noise with an approximately 1/f spectrum."""
        field = np.zeros((self.height, self.width))
        amplitude = 1.0
        sigma = max(self.height, self.width) / 8.0
        while sigma >= 1.0:
            noise = rng.standard_normal((self.height, self.width))
            field += amplitude * gaussian_filter(noise, sigma, mode="reflect")
            amplitude *= 0.55
            sigma /= 2.0
        field -= field.min()
        field /= max(field.max(), 1e-9)
        return field

    def _illumination(self, rng):
        """Smooth global illumination gradient."""
        yy, xx = np.mgrid[0:self.height, 0:self.width]
        yy = yy / self.height
        xx = xx / self.width
        gradient = rng.uniform(-0.4, 0.4) * xx + rng.uniform(-0.4, 0.4) * yy
        vignette = 1.0 - 0.3 * ((xx - 0.5) ** 2 + (yy - 0.5) ** 2)
        return gradient + vignette

    def _objects(self, rng):
        """Piecewise-constant elliptical and rectangular regions."""
        field = np.zeros((self.height, self.width))
        yy, xx = np.mgrid[0:self.height, 0:self.width]
        num_objects = max(1, int(rng.integers(3, 8) * self.edge_density))
        for _ in range(num_objects):
            kind = rng.choice(["ellipse", "rectangle"])
            value = rng.uniform(-0.45, 0.45)
            cy, cx = rng.uniform(0.1, 0.9) * self.height, rng.uniform(0.1, 0.9) * self.width
            ry = rng.uniform(0.05, 0.25) * self.height
            rx = rng.uniform(0.05, 0.25) * self.width
            if kind == "ellipse":
                mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 < 1.0
            else:
                angle = rng.uniform(0, np.pi)
                u = (xx - cx) * np.cos(angle) + (yy - cy) * np.sin(angle)
                v = -(xx - cx) * np.sin(angle) + (yy - cy) * np.cos(angle)
                mask = (np.abs(u) < rx) & (np.abs(v) < ry)
            field[mask] += value
        return field

    def _texture(self, rng):
        """Oriented gratings restricted to random regions."""
        field = np.zeros((self.height, self.width))
        yy, xx = np.mgrid[0:self.height, 0:self.width]
        num_patches = max(1, int(rng.integers(2, 5) * self.texture_strength))
        for _ in range(num_patches):
            angle = rng.uniform(0, np.pi)
            frequency = rng.uniform(0.05, 0.35)
            phase = rng.uniform(0, 2 * np.pi)
            grating = np.sin(frequency * ((xx * np.cos(angle) + yy * np.sin(angle))) + phase)
            cy, cx = rng.uniform(0.2, 0.8) * self.height, rng.uniform(0.2, 0.8) * self.width
            ry = rng.uniform(0.1, 0.4) * self.height
            rx = rng.uniform(0.1, 0.4) * self.width
            window = np.exp(-(((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2))
            field += 0.12 * grating * window
        return field

    # ------------------------------------------------------------------ #
    def generate_luma(self, seed):
        """Generate one grayscale image in ``[0, 1]`` for ``seed``."""
        rng = np.random.default_rng(seed)
        luma = (
            0.55 * self._octave_noise(rng)
            + 0.25 * self._illumination(rng)
            + self._objects(rng)
            + self.texture_strength * self._texture(rng)
        )
        # fine grain: sensor-like noise, kept subtle
        luma += 0.01 * rng.standard_normal(luma.shape)
        luma -= luma.min()
        luma /= max(luma.max(), 1e-9)
        return luma

    def generate(self, seed):
        """Generate one image (RGB when ``color=True``) for ``seed``."""
        luma = self.generate_luma(seed)
        if not self.color:
            return luma
        rng = np.random.default_rng(seed + 10_000)
        # chroma: low-frequency colour fields modulated by the luma structure
        chroma_a = gaussian_filter(rng.standard_normal(luma.shape), 24, mode="reflect")
        chroma_b = gaussian_filter(rng.standard_normal(luma.shape), 24, mode="reflect")
        chroma_a = 0.12 * chroma_a / max(np.abs(chroma_a).max(), 1e-9)
        chroma_b = 0.12 * chroma_b / max(np.abs(chroma_b).max(), 1e-9)
        cast = rng.uniform(-0.05, 0.05, size=3)
        red = luma + chroma_a + cast[0]
        green = luma - 0.5 * chroma_a - 0.5 * chroma_b + cast[1]
        blue = luma + chroma_b + cast[2]
        rgb = np.stack([red, green, blue], axis=-1)
        return np.clip(rgb, 0.0, 1.0)
