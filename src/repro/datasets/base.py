"""Dataset base class shared by the Kodak/CLIC/CIFAR stand-ins."""

from __future__ import annotations

__all__ = ["ImageDataset"]


class ImageDataset:
    """A lazily generated, seed-deterministic collection of images.

    Sub-classes set :attr:`name`, :attr:`num_images` and implement
    :meth:`_generate`.  Generated images are cached so repeated access (the
    benchmark harness scores the same image under many codecs) is cheap.
    """

    name = "dataset"

    def __init__(self, num_images, cache=True):
        self.num_images = int(num_images)
        self._cache = {} if cache else None

    def __len__(self):
        return self.num_images

    def __getitem__(self, index):
        if index < 0:
            index += self.num_images
        if not 0 <= index < self.num_images:
            raise IndexError(f"index {index} out of range for {self.name} ({self.num_images} images)")
        if self._cache is not None and index in self._cache:
            return self._cache[index]
        image = self._generate(index)
        if self._cache is not None:
            self._cache[index] = image
        return image

    def __iter__(self):
        for index in range(self.num_images):
            yield self[index]

    def _generate(self, index):  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self):
        return f"{self.__class__.__name__}(name={self.name!r}, num_images={self.num_images})"
