"""CLIC-like evaluation dataset (synthetic stand-in).

The CLIC (Challenge on Learned Image Compression) professional validation set
contains higher-resolution, lower-texture photographs than Kodak.  The
stand-in mirrors that profile: larger images, smoother content (lower texture
strength), more pronounced object structure.
"""

from __future__ import annotations

from .base import ImageDataset
from .synthetic import SyntheticImageGenerator

__all__ = ["ClicDataset"]


class ClicDataset(ImageDataset):
    """CLIC-like RGB images (smoother, larger than Kodak-like)."""

    name = "clic"

    def __init__(self, num_images=16, height=160, width=256, color=True,
                 full_resolution=False, seed=500):
        super().__init__(num_images)
        if full_resolution:
            height, width = 1080, 1620
        self.height = height
        self.width = width
        self.seed = seed
        self._generator = SyntheticImageGenerator(height, width, color=color,
                                                  texture_strength=0.6, edge_density=1.3)

    def _generate(self, index):
        return self._generator.generate(self.seed + index)
