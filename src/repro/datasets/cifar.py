"""CIFAR-like pre-training dataset (synthetic stand-in).

The paper pre-trains the Easz reconstruction transformer on CIFAR-10 32×32
images so it learns generic local-image statistics.  The stand-in produces
32×32 crops of procedurally generated natural images — exactly the content
the reconstructor has to inpaint at test time, without ever seeing the
evaluation images themselves.
"""

from __future__ import annotations

import numpy as np

from .base import ImageDataset
from .synthetic import SyntheticImageGenerator

__all__ = ["CifarLikeDataset"]


class CifarLikeDataset(ImageDataset):
    """32×32 natural-image crops used for offline pre-training."""

    name = "cifar-like"

    def __init__(self, num_images=2048, size=32, color=False, seed=9000,
                 source_size=160, crops_per_source=64):
        super().__init__(num_images)
        self.size = size
        self.color = color
        self.seed = seed
        self.crops_per_source = crops_per_source
        self._generator = SyntheticImageGenerator(source_size, source_size, color=color,
                                                  texture_strength=1.2, edge_density=1.0)
        self._source_cache = {}

    def _source(self, source_index):
        if source_index not in self._source_cache:
            self._source_cache[source_index] = self._generator.generate(self.seed + source_index)
        return self._source_cache[source_index]

    def _generate(self, index):
        source_index = index // self.crops_per_source
        source = self._source(source_index)
        rng = np.random.default_rng(self.seed + 31 * index)
        max_y = source.shape[0] - self.size
        max_x = source.shape[1] - self.size
        top = int(rng.integers(0, max_y + 1))
        left = int(rng.integers(0, max_x + 1))
        return source[top:top + self.size, left:left + self.size, ...]
