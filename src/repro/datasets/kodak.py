"""Kodak-like evaluation dataset (synthetic stand-in).

The Kodak Lossless True Color Image Suite has 24 photographs at 768×512.
This stand-in generates 24 deterministic natural-looking RGB images with the
same aspect ratio.  The default resolution is reduced (192×128) so the whole
evaluation pipeline runs in CPU-minutes; pass ``full_resolution=True`` to get
768×512 images when runtime is not a concern.
"""

from __future__ import annotations

from .base import ImageDataset
from .synthetic import SyntheticImageGenerator

__all__ = ["KodakDataset"]


class KodakDataset(ImageDataset):
    """24 Kodak-like RGB images (3:2 aspect ratio)."""

    name = "kodak"

    def __init__(self, num_images=24, height=128, width=192, color=True,
                 full_resolution=False, seed=100):
        super().__init__(num_images)
        if full_resolution:
            height, width = 512, 768
        self.height = height
        self.width = width
        self.seed = seed
        self._generator = SyntheticImageGenerator(height, width, color=color,
                                                  texture_strength=1.0, edge_density=1.0)

    def _generate(self, index):
        return self._generator.generate(self.seed + index)
