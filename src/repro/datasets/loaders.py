"""Batching utilities for training the Easz reconstruction network."""

from __future__ import annotations

import numpy as np

from ..image import ensure_gray

__all__ = ["PatchBatcher", "extract_patches"]


def extract_patches(image, patch_size, stride=None):
    """Extract non-overlapping (or strided) square patches from an image.

    Returns an array of shape ``(count, patch_size, patch_size[, channels])``.
    """
    image = np.asarray(image)
    stride = stride or patch_size
    height, width = image.shape[:2]
    patches = []
    for top in range(0, height - patch_size + 1, stride):
        for left in range(0, width - patch_size + 1, stride):
            patches.append(image[top:top + patch_size, left:left + patch_size, ...])
    return np.stack(patches) if patches else np.zeros((0, patch_size, patch_size))


class PatchBatcher:
    """Yields batches of grayscale training patches from an image dataset.

    The paper pre-trains on whole CIFAR images; here every dataset item is
    converted to luma, optionally randomly cropped to ``patch_size``, and
    grouped into ``(batch, patch_size, patch_size)`` arrays.
    """

    def __init__(self, dataset, patch_size=32, batch_size=32, seed=0):
        self.dataset = dataset
        self.patch_size = patch_size
        self.batch_size = batch_size
        self.seed = seed

    def _patch_from(self, image, rng):
        gray = ensure_gray(image)
        height, width = gray.shape
        if height == self.patch_size and width == self.patch_size:
            return gray
        if height < self.patch_size or width < self.patch_size:
            raise ValueError(
                f"dataset images ({height}x{width}) are smaller than patch_size {self.patch_size}"
            )
        top = int(rng.integers(0, height - self.patch_size + 1))
        left = int(rng.integers(0, width - self.patch_size + 1))
        return gray[top:top + self.patch_size, left:left + self.patch_size]

    def batches(self, num_batches):
        """Yield ``num_batches`` batches, cycling deterministically over the dataset."""
        rng = np.random.default_rng(self.seed)
        index = 0
        for _ in range(num_batches):
            batch = []
            for _ in range(self.batch_size):
                image = self.dataset[index % len(self.dataset)]
                index += 1
                batch.append(self._patch_from(image, rng))
            yield np.stack(batch)
