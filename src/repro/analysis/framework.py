"""Rule framework for the repo-specific static-analysis pass.

The design is deliberately small: a rule is a class with an ``id``, a
``name`` and a ``check(source)`` method returning :class:`Violation`\\ s; a
:class:`SourceFile` is one parsed module with everything a rule needs
precomputed (AST, a parent map for lexical-ancestry walks, and the comment
map that drives suppressions).  ``python -m repro.analysis`` wires the two
together over a file tree.

Suppressions
------------

A violation is suppressed by a trailing comment on the reported line::

    flat = np.flatnonzero(mask)  # lint: allow RP001 - plan builder, the one place indices are derived

The rule id is mandatory and so is the ``- reason`` tail: an allow without a
reason is itself a violation (``RP000``), because the whole point of the
mechanism is that every exception to a convention is written down.  Several
ids may share one comment (``# lint: allow RP001,RP004 - reason``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Violation", "SourceFile", "Rule", "all_rules", "register",
           "lint_paths", "lint_file", "iter_python_files"]

#: ``# lint: allow RP001 - reason`` / ``# lint: allow RP001,RP101 - reason``
_ALLOW_PATTERN = re.compile(
    r"#\s*lint:\s*allow\s+(?P<ids>RP\d{3}(?:\s*,\s*RP\d{3})*)\s*(?P<reason>-.*)?$")


@dataclass(frozen=True)
class Violation:
    """One rule hit, formatted ``path:line:col RPxxx message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"


class SourceFile:
    """One parsed python module plus the derived structures rules share.

    ``relpath`` is the path rendered with forward slashes; rules scope
    themselves with suffix matches on it (``repro/core/erase_squeeze.py``)
    so the checker behaves identically on the installed tree, the src/
    layout and test fixture trees.
    """

    def __init__(self, path, text=None):
        self.path = Path(path)
        self.text = self.path.read_text() if text is None else text
        self.relpath = self.path.as_posix()
        self.tree = ast.parse(self.text, filename=str(self.path))
        self._parents = None
        self._comments = None
        self._allows = None

    # ------------------------------------------------------------------ #
    @property
    def parents(self):
        """Child AST node -> parent AST node, for lexical-ancestry walks."""
        if self._parents is None:
            self._parents = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    self._parents[child] = node
        return self._parents

    def ancestors(self, node):
        """Yield the enclosing nodes of ``node``, innermost first."""
        parent = self.parents.get(node)
        while parent is not None:
            yield parent
            parent = self.parents.get(parent)

    # ------------------------------------------------------------------ #
    @property
    def comments(self):
        """Line number -> comment text (``#`` included), via tokenize."""
        if self._comments is None:
            self._comments = {}
            try:
                tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
                for token in tokens:
                    if token.type == tokenize.COMMENT:
                        self._comments[token.start[0]] = token.string
            except tokenize.TokenError:
                pass
        return self._comments

    @property
    def allows(self):
        """Line number -> (set of allowed rule ids, reason present?)."""
        if self._allows is None:
            self._allows = {}
            for line, comment in self.comments.items():
                match = _ALLOW_PATTERN.search(comment)
                if match is not None:
                    ids = {part.strip() for part in match.group("ids").split(",")}
                    has_reason = bool(match.group("reason")
                                      and match.group("reason").strip("- ").strip())
                    self._allows[line] = (ids, has_reason)
        return self._allows

    def is_allowed(self, rule_id, line):
        entry = self.allows.get(line)
        return entry is not None and rule_id in entry[0] and entry[1]

    def comment_on(self, line):
        return self.comments.get(line, "")

    def matches(self, *suffixes):
        """True when the file path ends with any of the given posix suffixes."""
        return any(self.relpath.endswith(suffix) for suffix in suffixes)

    def in_directory(self, *fragments):
        """True when the path contains any ``/fragment/`` directory component."""
        return any(f"/{fragment}/" in self.relpath for fragment in fragments)


@dataclass
class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    rule_id: str = "RP000"
    name: str = "unnamed"
    summary: str = ""

    def check(self, source):  # pragma: no cover - abstract
        raise NotImplementedError

    def violation(self, source, node_or_line, message, col=None):
        if isinstance(node_or_line, int):
            line, column = node_or_line, col or 0
        else:
            line, column = node_or_line.lineno, node_or_line.col_offset
        return Violation(source.relpath, line, column, self.rule_id, message)


_REGISTRY = []


def register(rule_class):
    """Class decorator adding a rule to the global registry."""
    _REGISTRY.append(rule_class)
    return rule_class


def all_rules():
    """Instantiate every registered rule (import side effect brings them in)."""
    from . import invariants, locks  # noqa: F401 - registration side effect
    return [rule_class() for rule_class in _REGISTRY]


class _AllowHygieneRule(Rule):
    """RP000: every ``lint: allow`` must carry a rule id and a reason.

    Not registered — the runner applies it unconditionally, so a tree cannot
    silence the linter with reason-less blanket allows.
    """

    def __init__(self):
        super().__init__(rule_id="RP000", name="allow-needs-reason",
                        summary="lint: allow comments must name rule ids and a reason")

    def check(self, source):
        violations = []
        for line, comment in sorted(source.comments.items()):
            if "lint:" in comment and "allow" in comment:
                entry = source.allows.get(line)
                if entry is None:
                    violations.append(self.violation(
                        source, line,
                        "malformed suppression; use '# lint: allow RPxxx - reason'"))
                elif not entry[1]:
                    violations.append(self.violation(
                        source, line,
                        "suppression is missing its '- reason' justification"))
        return violations


def iter_python_files(paths):
    """Expand files/directories into a sorted list of ``*.py`` paths."""
    files = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py")
                                if "__pycache__" not in p.parts))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_file(source, rules=None):
    """Run ``rules`` (default: all registered) over one :class:`SourceFile`."""
    rules = list(rules) if rules is not None else all_rules()
    violations = list(_AllowHygieneRule().check(source))
    for rule in rules:
        for violation in rule.check(source):
            if not source.is_allowed(violation.rule_id, violation.line):
                violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.col, v.rule_id))


def lint_paths(paths, rules=None):
    """Lint every python file under ``paths``; returns all violations."""
    rules = list(rules) if rules is not None else all_rules()
    violations = []
    for path in iter_python_files(paths):
        try:
            source = SourceFile(path)
        except (SyntaxError, UnicodeDecodeError) as error:
            violations.append(Violation(Path(path).as_posix(), 1, 0, "RP000",
                                        f"file does not parse: {error}"))
            continue
        violations.extend(lint_file(source, rules))
    return violations
