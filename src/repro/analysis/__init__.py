"""Repo-specific static analysis: invariant linter + lock-discipline checker.

Run ``python -m repro.analysis [paths...]`` (default path: ``src``) or the
``repro-lint`` console script.  Exit status 0 means clean, 1 means
violations, 2 means usage error.  CI runs this blocking on every push.

Rule catalogue
--------------

===== ==========================  =================================================
id    name                        enforces / how to suppress
===== ==========================  =================================================
RP000 allow-needs-reason          Every ``# lint: allow`` comment must name rule
                                  ids and carry a ``- reason`` tail.  Cannot be
                                  suppressed (it *is* the suppression mechanism).
RP001 mask-index-rederivation     No ``np.nonzero``/``flatnonzero``/``argwhere``
                                  on a mask, and no boolean fancy-indexing with a
                                  mask, outside ``core/erase_squeeze.py`` — use a
                                  cached ``SqueezePlan``.  Plan builders suppress
                                  with ``# lint: allow RP001 - <why>``.
RP002 entropy-format-tag          Constructing a range/arithmetic coder outside
                                  ``repro/entropy/`` requires the one-byte
                                  ``FORMAT_*`` header dispatch and a
                                  ``legacy_entropy`` escape hatch in the module.
RP003 hot-path-pixel-loop         No nested for-range loops in declared hot-path
                                  modules (``invariants.HOT_PATH_MODULES``).
RP004 hot-path-slow-idiom         No ``.tolist()`` or integer ``** n`` (n >= 3)
                                  in hot-path modules.  Deliberate python-object
                                  round-trips suppress with a reason.
RP005 bare-except-justification   ``except Exception`` (or broader) that does not
                                  re-raise needs ``# noqa: BLE001 - reason`` on
                                  the except line.
RP101 guarded-attr-outside-lock   Reads/writes of ``# guarded-by: L`` attributes
                                  must sit inside ``with self.L`` (or a Condition
                                  built on L).  Exempt: ``__init__``,
                                  ``*_locked`` methods, ``def ...:  # locked``.
RP102 nested-lock-reacquisition   ``with self.L`` lexically inside another
                                  ``with self.L`` — instant deadlock on a plain
                                  ``threading.Lock``.
RP103 lock-order-cycle            The same class must not nest lock A inside B
                                  on one path and B inside A on another.
RP104 guarded-by-unknown-lock     A ``guarded-by`` annotation must name a lock
                                  attribute the class actually assigns from
                                  ``threading.Lock``/``RLock``/``Condition``.
===== ==========================  =================================================

Suppression syntax (trailing comment on the flagged line)::

    flat = np.flatnonzero(flat_mask)  # lint: allow RP001 - plan builder

Multiple ids share one comment: ``# lint: allow RP001,RP004 - reason``.  The
reason is mandatory; RP000 flags reason-less allows.

The runtime half lives in :mod:`repro.analysis.lockorder`: under
``lock_order_recording()`` every ``threading.Lock()`` is wrapped to record
per-thread acquisition edges keyed by creation site, and cycles in that graph
(or same-instance re-acquisition) fail the enclosing test.  A conftest
fixture enables it for all ``test_serve*`` modules; ``REPRO_LOCK_ORDER=0``
opts out.
"""

from .framework import (Rule, SourceFile, Violation, all_rules,
                        iter_python_files, lint_file, lint_paths, register)
from .lockorder import (InstrumentedLock, LockOrderError, LockOrderRecorder,
                        lock_order_recording)

__all__ = ["Rule", "SourceFile", "Violation", "all_rules", "register",
           "lint_file", "lint_paths", "iter_python_files",
           "InstrumentedLock", "LockOrderError", "LockOrderRecorder",
           "lock_order_recording"]
