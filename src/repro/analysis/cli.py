"""Command-line entry point: ``python -m repro.analysis`` / ``repro-lint``."""

from __future__ import annotations

import argparse
import sys

from .framework import all_rules, lint_paths

__all__ = ["main"]


def _list_rules(rules, out):
    width = max(len(rule.name) for rule in rules)
    for rule in sorted(rules, key=lambda r: r.rule_id):
        out.write(f"{rule.rule_id}  {rule.name:<{width}}  {rule.summary}\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific invariant + lock-discipline linter "
                    "(rule catalogue: python -m repro.analysis --list-rules).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        _list_rules(rules, sys.stdout)
        return 0

    violations = lint_paths(args.paths, rules)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repro-lint: {len(violations)} violation(s) "
              f"across {len({v.path for v in violations})} file(s)")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
