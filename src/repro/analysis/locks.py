"""Lock-discipline rules for the serving stack.

The convention: a shared mutable attribute is annotated where it is created::

    self._inflight = [0] * n  # guarded-by: _lock

and every later read or write of ``self._inflight`` must sit lexically inside
``with self._lock:`` (or inside a ``with`` on a Condition constructed from
that lock), or in a method that is exempt — ``__init__``, a ``*_locked``
helper (callers hold the lock by contract), or a ``def`` line carrying a
trailing ``# locked`` comment.

This is a lexical approximation, not an escape analysis: a closure that reads
a guarded attribute is checked against the ``with`` blocks that enclose its
*definition*.  That approximation has matched how the serve layer is written
since PR-3, and the annotation + checker make drift visible in review.
"""

from __future__ import annotations

import ast
import re

from .framework import Rule, register

__all__ = ["GuardedAttributeRule", "NestedAcquisitionRule",
           "LockOrderCycleRule", "UnknownLockRule", "ClassLockInfo",
           "collect_class_info"]

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_LOCKED_MARK = re.compile(r"#\s*locked\b")

#: Constructor tails recognised as lock factories when mapping a class's
#: lock attributes (``self._lock = threading.Lock()`` and friends).
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _self_attr(node):
    """Return the attribute name for a ``self.<name>`` node, else ``None``."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _call_tail(node):
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class ClassLockInfo:
    """Lock metadata for one class: guards, lock attrs, Condition aliases."""

    def __init__(self, source, classdef):
        self.source = source
        self.classdef = classdef
        self.guarded = {}      # attr name -> lock name from its annotation
        self.guard_lines = {}  # attr name -> annotation line (for reporting)
        self.locks = set()     # attrs assigned from a lock factory
        self.aliases = {}      # Condition attr -> the lock it wraps
        self._collect()

    def _collect(self):
        for node in ast.walk(self.classdef):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            names = [name for name in map(_self_attr, targets) if name]
            if not names:
                continue
            tail = _call_tail(value)
            if tail in _LOCK_FACTORIES:
                self.locks.update(names)
                if tail == "Condition" and value.args:
                    wrapped = _self_attr(value.args[0])
                    if wrapped:
                        for name in names:
                            self.aliases[name] = wrapped
            match = _GUARDED_BY.search(self.source.comment_on(node.lineno))
            if match:
                for name in names:
                    self.guarded[name] = match.group("lock")
                    self.guard_lines[name] = node.lineno

    # ------------------------------------------------------------------ #
    def resolve(self, lock_name):
        """Condition attr -> underlying lock; plain locks map to themselves."""
        return self.aliases.get(lock_name, lock_name)

    def method_exempt(self, funcdef):
        if funcdef.name == "__init__" or funcdef.name.endswith("_locked"):
            return True
        return bool(_LOCKED_MARK.search(self.source.comment_on(funcdef.lineno)))

    def held_at(self, node):
        """Locks (alias-resolved) held by ``with`` blocks enclosing ``node``."""
        held = set()
        for ancestor in self.source.ancestors(node):
            if ancestor is self.classdef:
                break
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    name = _self_attr(item.context_expr)
                    if name:
                        held.add(self.resolve(name))
        return held

    def enclosing_method(self, node):
        for ancestor in self.source.ancestors(node):
            if ancestor is self.classdef:
                return None
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parent = self.source.parents.get(ancestor)
                if parent is self.classdef:
                    return ancestor
        return None


def collect_class_info(source):
    """One :class:`ClassLockInfo` per class that declares guards or locks."""
    infos = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            info = ClassLockInfo(source, node)
            if info.guarded or info.locks:
                infos.append(info)
    return infos


@register
class GuardedAttributeRule(Rule):
    """RP101: guarded attributes are touched only under their lock.

    Every read or write of a ``# guarded-by: L`` attribute must be lexically
    inside ``with self.L`` (or a Condition built on ``L``), unless the method
    is ``__init__``, named ``*_locked``, or marked ``# locked``.
    """

    def __init__(self):
        super().__init__(rule_id="RP101", name="guarded-attr-outside-lock",
                        summary="reads/writes of '# guarded-by:' attributes must "
                                "hold the named lock")

    def check(self, source):
        violations = []
        for info in collect_class_info(source):
            if not info.guarded:
                continue
            for node in ast.walk(info.classdef):
                attr = _self_attr(node)
                if attr is None or attr not in info.guarded:
                    continue
                method = info.enclosing_method(node)
                if method is None or info.method_exempt(method):
                    continue
                lock = info.resolve(info.guarded[attr])
                if lock not in info.held_at(node):
                    violations.append(self.violation(
                        source, node,
                        f"self.{attr} is guarded-by {info.guarded[attr]} "
                        f"(declared line {info.guard_lines[attr]}) but accessed "
                        f"outside 'with self.{info.guarded[attr]}' in "
                        f"{info.classdef.name}.{method.name}"))
        return violations


@register
class NestedAcquisitionRule(Rule):
    """RP102: no re-acquisition of a held non-reentrant lock.

    ``with self.L`` lexically inside another ``with self.L`` (directly or via
    a Condition wrapping ``L``) deadlocks a plain ``threading.Lock`` the
    moment the inner block runs.
    """

    def __init__(self):
        super().__init__(rule_id="RP102", name="nested-lock-reacquisition",
                        summary="'with self.L' inside another 'with self.L' "
                                "deadlocks a non-reentrant lock")

    def check(self, source):
        violations = []
        for info in collect_class_info(source):
            for node in ast.walk(info.classdef):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    name = _self_attr(item.context_expr)
                    if name and info.resolve(name) in info.held_at(node):
                        violations.append(self.violation(
                            source, node,
                            f"'with self.{name}' re-acquires "
                            f"{info.resolve(name)} already held by an "
                            f"enclosing with in {info.classdef.name}"))
        return violations


@register
class LockOrderCycleRule(Rule):
    """RP103: lock-acquisition order within a class must be acyclic.

    Lexical nesting ``with self.A: ... with self.B`` defines the edge A→B;
    if the same class also nests B→A, two threads taking the two paths can
    deadlock.  The runtime recorder (:mod:`repro.analysis.lockorder`) covers
    cross-class and cross-module orders this lexical view cannot see.
    """

    def __init__(self):
        super().__init__(rule_id="RP103", name="lock-order-cycle",
                        summary="conflicting lexical lock-nesting orders within "
                                "one class")

    def check(self, source):
        violations = []
        for info in collect_class_info(source):
            edges = {}
            for node in ast.walk(info.classdef):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    name = _self_attr(item.context_expr)
                    if not name:
                        continue
                    inner = info.resolve(name)
                    for outer in info.held_at(node):
                        if outer != inner:
                            edges.setdefault((outer, inner), node.lineno)
            for (outer, inner), line in sorted(edges.items()):
                if (inner, outer) in edges and outer < inner:
                    violations.append(self.violation(
                        source, line,
                        f"{info.classdef.name} nests {outer}->{inner} (line "
                        f"{line}) and {inner}->{outer} (line "
                        f"{edges[(inner, outer)]}); pick one order"))
        return violations


@register
class UnknownLockRule(Rule):
    """RP104: a ``guarded-by`` annotation must name a real lock attribute.

    The named lock must be assigned from a lock factory somewhere in the
    class (``self._lock = threading.Lock()`` / ``RLock`` / ``Condition``),
    otherwise the annotation guards nothing and RP101 checks the wrong name.
    """

    def __init__(self):
        super().__init__(rule_id="RP104", name="guarded-by-unknown-lock",
                        summary="'# guarded-by:' must name a lock attribute "
                                "assigned in the class")

    def check(self, source):
        violations = []
        for info in collect_class_info(source):
            for attr, lock in sorted(info.guarded.items()):
                if lock not in info.locks:
                    violations.append(self.violation(
                        source, info.guard_lines[attr],
                        f"self.{attr} declares guarded-by {lock}, but "
                        f"{info.classdef.name} never assigns self.{lock} "
                        "from a lock factory"))
        return violations
