"""Runtime lock-order recorder: wrapped locks, acquisition edges, cycles.

The static rules in :mod:`repro.analysis.locks` see lexical nesting inside
one class; this module sees what actually happens at runtime across the whole
process.  Under :func:`lock_order_recording`, ``threading.Lock()`` returns an
:class:`InstrumentedLock` that records, per thread, the stack of held locks
and an edge ``A -> B`` whenever ``B`` is acquired while ``A`` is held.  Locks
are identified by their *creation site* (``file:line``), so every
``ShardRouter`` instance's ``self._lock`` collapses onto one graph node and
an order inversion between two instances is still a cycle.

Two failure modes are reported:

* same-instance re-acquisition — acquiring a non-reentrant lock the current
  thread already holds (an immediate deadlock, recorded rather than hung
  because the underlying acquire would block forever);
* a cycle in the site graph — two code paths that take the same pair of lock
  sites in opposite orders, i.e. a deadlock waiting for the right
  interleaving.

The pytest fixture in ``tests/conftest.py`` enables this for every
``test_serve*`` module and fails the test on either report
(opt out with ``REPRO_LOCK_ORDER=0``).
"""

from __future__ import annotations

import _thread
import sys
import threading

__all__ = ["InstrumentedLock", "LockOrderRecorder", "lock_order_recording",
           "LockOrderError"]

_HERE = __file__


class LockOrderError(AssertionError):
    """Raised by :meth:`LockOrderRecorder.check` when discipline is violated."""


def _creation_site():
    """``file:line`` of the frame that called ``threading.Lock()``."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != _HERE and "threading" not in filename.rsplit("/", 1)[-1]:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class InstrumentedLock:
    """A ``threading.Lock`` stand-in that reports acquisitions to a recorder.

    Only the plain-lock surface is implemented (``acquire`` / ``release`` /
    context manager / ``locked``); ``threading.Condition`` falls back to
    exactly that surface when ``_release_save`` and friends are missing, so
    Conditions built on instrumented locks record their release/re-acquire
    cycle through ``wait()`` correctly.
    """

    def __init__(self, recorder, site):
        self._lock = _thread.allocate_lock()
        self._recorder = recorder
        self.site = site

    def acquire(self, blocking=True, timeout=-1):
        self._recorder.before_acquire(self, blocking)
        acquired = (self._lock.acquire(blocking, timeout) if timeout != -1
                    else self._lock.acquire(blocking))
        if acquired:
            self._recorder.on_acquired(self)
        return acquired

    def release(self):
        self._recorder.on_release(self)
        self._lock.release()

    def locked(self):
        return self._lock.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __repr__(self):
        state = "locked" if self._lock.locked() else "unlocked"
        return f"<InstrumentedLock {state} from {self.site}>"


class LockOrderRecorder:
    """Per-thread held stacks plus a global site graph of acquisition edges."""

    def __init__(self):
        # the recorder's own mutex must be a *raw* lock: it may be taken while
        # arbitrary instrumented locks are held and must never recurse into
        # the instrumentation itself
        self._mutex = _thread.allocate_lock()
        self._local = threading.local()
        self.edges = {}       # (outer site, inner site) -> example thread name
        self.violations = []  # same-instance re-acquisition reports

    # ------------------------------------------------------------------ #
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def before_acquire(self, lock, blocking):
        stack = self._stack()
        if blocking and any(held is lock for held in stack):
            message = (f"thread {threading.current_thread().name} re-acquired "
                       f"lock from {lock.site} it already holds "
                       "(deadlock on a non-reentrant lock)")
            with self._mutex:
                self.violations.append(message)
            raise LockOrderError(message)

    def on_acquired(self, lock):
        stack = self._stack()
        if stack:
            name = threading.current_thread().name
            with self._mutex:
                for held in stack:
                    if held.site != lock.site:
                        self.edges.setdefault((held.site, lock.site), name)
        stack.append(lock)

    def on_release(self, lock):
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                break

    # ------------------------------------------------------------------ #
    def cycles(self):
        """Site-graph cycles, each as a list of sites ``[a, b, ..., a]``."""
        with self._mutex:
            adjacency = {}
            for outer, inner in self.edges:
                adjacency.setdefault(outer, set()).add(inner)
        found = []
        seen_cycles = set()
        for start in sorted(adjacency):
            path = [start]
            on_path = {start}

            def visit(site):
                for succ in sorted(adjacency.get(site, ())):
                    if succ in on_path:
                        cycle = path[path.index(succ):] + [succ]
                        key = frozenset(cycle)
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            found.append(list(cycle))
                        continue
                    path.append(succ)
                    on_path.add(succ)
                    visit(succ)
                    on_path.discard(succ)
                    path.pop()

            visit(start)
        return found

    def report(self):
        """Human-readable problem list: re-acquisitions plus order cycles."""
        with self._mutex:
            problems = list(self.violations)
        for cycle in self.cycles():
            problems.append("lock-order cycle: " + " -> ".join(cycle))
        return problems

    def check(self):
        """Raise :class:`LockOrderError` if anything was recorded."""
        problems = self.report()
        if problems:
            raise LockOrderError("; ".join(problems))


class lock_order_recording:
    """Context manager: patch ``threading.Lock`` and record through a scope.

    ::

        with lock_order_recording() as recorder:
            exercise_the_serving_stack()
        recorder.check()

    Locks created *before* entry are untouched (they keep working, they just
    are not recorded), so the patch is safe to enable around a subset of a
    test session.  Instrumentation is process-local; forked/spawned workers
    run with real locks.
    """

    def __init__(self):
        self.recorder = LockOrderRecorder()
        self._original = None

    def __enter__(self):
        recorder = self.recorder

        def make_lock():
            return InstrumentedLock(recorder, _creation_site())

        self._original = threading.Lock
        threading.Lock = make_lock
        return recorder

    def __exit__(self, *exc):
        threading.Lock = self._original
        return False
