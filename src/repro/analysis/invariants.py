"""Invariant rules: the ROADMAP's standing conventions, machine-checked.

Each rule here encodes a convention that previously lived only in review
memory (see ``ROADMAP.md`` "Standing conventions"): mask work goes through
cached :class:`~repro.core.erase_squeeze.SqueezePlan`\\ s, entropy containers
are format-tagged with a legacy escape hatch, hot-path modules stay free of
known-slow scalar idioms, and broad exception handlers justify themselves.
"""

from __future__ import annotations

import ast

from .framework import Rule, register

__all__ = ["HOT_PATH_MODULES", "MaskRederivationRule", "EntropyFormatTagRule",
           "HotPathPixelLoopRule", "HotPathSlowIdiomRule", "BareExceptRule"]

#: The declared hot-path module list (posix path suffixes).  Per-pixel python
#: loops, ``.tolist()`` round-trips and ``x ** 3``-style scalar powers in
#: these files are measured regressions waiting to happen (PR-1 recorded a
#: 20x slowdown from numpy's pow fallback on negative floats alone).
HOT_PATH_MODULES = (
    "repro/entropy/arithmetic.py",
    "repro/entropy/range_coder.py",
    "repro/entropy/bitio.py",
    "repro/entropy/huffman.py",
    "repro/entropy/rle.py",
    "repro/core/erase_squeeze.py",
    "repro/core/patchify.py",
    "repro/core/batch_engine.py",
    "repro/core/reconstruction.py",
    "repro/codecs/jpeg.py",
)

#: The one module allowed to derive indices from an erase mask.
MASK_PLAN_HOME = "repro/core/erase_squeeze.py"

#: Directories where the squeeze-plan discipline applies.  Masks elsewhere
#: (synthetic datasets, metric perturbations) are unrelated boolean arrays.
MASK_SCOPED_DIRS = ("core", "codecs", "serve")

_INDEX_DERIVERS = {"nonzero", "flatnonzero", "argwhere"}


#: Identifier fragments that mean "derived from a mask, but not the array":
#: ``mask_bytes`` dict keys, ``mask_key`` cache keys and the like.
_NOT_AN_ARRAY = ("bytes", "key", "name", "hash", "id", "count")


def _is_mask_identifier(identifier):
    lowered = identifier.lower()
    return ("mask" in lowered
            and not any(tag in lowered for tag in _NOT_AN_ARRAY))


def _mentions_mask(node):
    """True when any identifier in ``node``'s subtree names a mask array."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_mask_identifier(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_mask_identifier(sub.attr):
            return True
    return False


def _call_name(node):
    """Dotted tail of a call target: ``np.flatnonzero`` -> "flatnonzero"."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register
class MaskRederivationRule(Rule):
    """RP001: never re-derive indices from an erase mask at a call site.

    ``np.nonzero`` / ``np.flatnonzero`` / ``np.argwhere`` on a mask, and
    boolean fancy-indexing with a mask (``pixels[mask]``), belong in
    ``core/erase_squeeze.py`` where :class:`SqueezePlan` caches the result —
    everywhere else they silently redo per-mask work the plan already paid
    for.  Plan-builder call sites outside that module carry an explicit
    ``lint: allow`` so the exception is documented where it happens.
    """

    def __init__(self):
        super().__init__(rule_id="RP001", name="mask-index-rederivation",
                        summary="derive mask indices only in core/erase_squeeze.py "
                                "(use a cached SqueezePlan at call sites)")

    def check(self, source):
        if not source.in_directory(*MASK_SCOPED_DIRS):
            return []
        if source.matches(MASK_PLAN_HOME):
            return []
        violations = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if (name in _INDEX_DERIVERS and node.args
                        and _mentions_mask(node.args[0])):
                    violations.append(self.violation(
                        source, node,
                        f"{name}() on a mask re-derives plan indices; go through "
                        "repro.core.erase_squeeze.get_squeeze_plan"))
            elif isinstance(node, ast.Subscript):
                index = node.slice
                candidates = index.elts if isinstance(index, ast.Tuple) else [index]
                for candidate in candidates:
                    if isinstance(candidate, ast.UnaryOp):
                        candidate = candidate.operand
                    if (isinstance(candidate, (ast.Name, ast.Attribute))
                            and _mentions_mask(candidate)):
                        violations.append(self.violation(
                            source, node,
                            "boolean fancy-indexing with a mask re-derives plan "
                            "work; use SqueezePlan gather/scatter"))
                        break
        return violations


@register
class EntropyFormatTagRule(Rule):
    """RP002: entropy containers must carry the format tag + legacy hatch.

    A module outside ``repro/entropy/`` that constructs a range or arithmetic
    coder is building an entropy container; its payload header must dispatch
    on ``FORMAT_RANGE`` / ``FORMAT_LEGACY`` and the owning codec must expose
    a ``legacy_entropy`` escape hatch, or old payloads become unreadable the
    day the default backend changes.
    """

    _CODERS = {"RangeEncoder", "RangeDecoder", "ArithmeticEncoder",
               "ArithmeticDecoder"}

    def __init__(self):
        super().__init__(rule_id="RP002", name="entropy-format-tag",
                        summary="coder construction outside repro/entropy/ requires "
                                "FORMAT_* tag dispatch and a legacy_entropy hatch")

    def check(self, source):
        if source.in_directory("entropy"):
            return []
        coder_calls = [node for node in ast.walk(source.tree)
                       if isinstance(node, ast.Call)
                       and _call_name(node) in self._CODERS]
        if not coder_calls:
            return []
        has_tag = False
        has_hatch = False
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name) and node.id.startswith("FORMAT_"):
                has_tag = True
            identifier = None
            if isinstance(node, ast.Name):
                identifier = node.id
            elif isinstance(node, ast.Attribute):
                identifier = node.attr
            elif isinstance(node, ast.arg):
                identifier = node.arg
            elif isinstance(node, ast.keyword):
                identifier = node.arg
            if identifier == "legacy_entropy":
                has_hatch = True
        violations = []
        for call in coder_calls:
            missing = []
            if not has_tag:
                missing.append("a FORMAT_RANGE/FORMAT_LEGACY header tag")
            if not has_hatch:
                missing.append("a legacy_entropy escape hatch")
            if missing:
                violations.append(self.violation(
                    source, call,
                    f"{_call_name(call)}() without {' or '.join(missing)} "
                    "in this module"))
        return violations


def _is_range_for(node):
    return (isinstance(node, ast.For) and isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range")


@register
class HotPathPixelLoopRule(Rule):
    """RP003: no per-pixel python loops in declared hot-path modules.

    A ``for ... in range(...)`` nested inside another ``for ... in range(...)``
    is the per-pixel/per-coefficient iteration signature the PR-1/PR-5
    vectorisation sweeps removed; new ones belong in numpy index space.
    """

    def __init__(self):
        super().__init__(rule_id="RP003", name="hot-path-pixel-loop",
                        summary="no nested for-range loops in hot-path modules")

    def check(self, source):
        if not source.matches(*HOT_PATH_MODULES):
            return []
        violations = []
        for node in ast.walk(source.tree):
            if not _is_range_for(node):
                continue
            for inner in ast.walk(node):
                if inner is not node and _is_range_for(inner):
                    violations.append(self.violation(
                        source, inner,
                        "nested for-range loop in a hot-path module; vectorise "
                        "or move off the declared hot path"))
        return violations


@register
class HotPathSlowIdiomRule(Rule):
    """RP004: no known-slow scalar idioms in hot-path modules.

    ``.tolist()`` materialises python objects for every element, and integer
    powers >= 3 on float arrays hit numpy's generic pow fallback (the
    ``x ** 3`` GELU path PR-1 measured at 20x; write ``x * x * x``).  Sites
    where the python-object round-trip genuinely wins (tight scalar loops
    over small arrays) carry a ``lint: allow`` stating so.
    """

    def __init__(self):
        super().__init__(rule_id="RP004", name="hot-path-slow-idiom",
                        summary="no .tolist() or integer ** powers >= 3 in "
                                "hot-path modules")

    def check(self, source):
        if not source.matches(*HOT_PATH_MODULES):
            return []
        violations = []
        for node in ast.walk(source.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "tolist" and not node.args):
                violations.append(self.violation(
                    source, node,
                    ".tolist() in a hot-path module materialises per-element "
                    "python objects"))
            if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow)
                    and isinstance(node.right, ast.Constant)
                    and isinstance(node.right.value, int)
                    and node.right.value >= 3
                    and not isinstance(node.left, ast.Constant)):
                violations.append(self.violation(
                    source, node,
                    f"** {node.right.value} hits numpy's generic pow fallback "
                    "on float arrays; expand to repeated multiplication"))
        return violations


@register
class BareExceptRule(Rule):
    """RP005: a swallowing ``except Exception`` must justify itself.

    Handlers for ``Exception`` / ``BaseException`` / bare ``except:`` that do
    not re-raise need the established ``# noqa: BLE001 - reason`` comment on
    the except line, so every intentional swallow states why losing the error
    is safe (marshalled to a future, fallback path, ...).
    """

    _BROAD = {"Exception", "BaseException"}

    def __init__(self):
        super().__init__(rule_id="RP005", name="bare-except-justification",
                        summary="except Exception without re-raise needs "
                                "'# noqa: BLE001 - reason'")

    def _reraises(self, handler):
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise) and node.exc is None:
                return True
        return False

    def check(self, source):
        violations = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and node.type.id in self._BROAD)
            if not broad or self._reraises(node):
                continue
            comment = source.comment_on(node.lineno)
            if "noqa: BLE001" in comment and comment.split("BLE001", 1)[1].strip("- ").strip():
                continue
            violations.append(self.violation(
                source, node,
                "broad except without re-raise; add '# noqa: BLE001 - reason' "
                "explaining why swallowing is safe"))
        return violations
