"""Text rendering of figure data (series of x/y points).

The paper's figures are line plots; since the benchmark harness runs in a
terminal, each figure is regenerated as its underlying data series plus an
optional coarse ASCII sparkline so trends are visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Series", "format_series_table", "sparkline"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


@dataclass
class Series:
    """One labelled curve of a figure."""

    label: str
    xs: list
    ys: list
    metadata: dict = field(default_factory=dict)

    def as_rows(self):
        """Rows of ``(x, y)`` pairs for table rendering."""
        return list(zip(self.xs, self.ys))


def sparkline(values):
    """Unicode sparkline of a numeric sequence (empty string for < 2 points)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size < 2 or np.allclose(values.max(), values.min()):
        return ""
    normalised = (values - values.min()) / (values.max() - values.min())
    indices = np.clip((normalised * (len(_SPARK_CHARS) - 1)).round().astype(int),
                      0, len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[i] for i in indices)


def format_series_table(series_list, x_label="x", y_label="y", title=None):
    """Render several :class:`Series` as aligned text with sparklines."""
    lines = []
    if title:
        lines.append(title)
    for series in series_list:
        lines.append(f"[{series.label}]  {y_label} vs {x_label}   {sparkline(series.ys)}")
        xs = "  ".join(f"{x:8.3f}" if isinstance(x, float) else f"{x!s:>8}" for x in series.xs)
        ys = "  ".join(f"{y:8.3f}" if isinstance(y, float) else f"{y!s:>8}" for y in series.ys)
        lines.append(f"  {x_label:>12}: {xs}")
        lines.append(f"  {y_label:>12}: {ys}")
    return "\n".join(lines)
