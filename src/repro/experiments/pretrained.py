"""Train-once-and-cache helper for the Easz reconstruction model.

Several benchmarks and examples need a reasonably trained reconstructor.
Training it from scratch in every process would dominate runtime, so this
module pre-trains a model for a given configuration once and caches the
checkpoint on disk (keyed by the configuration and step count).  Subsequent
calls load the cached weights in milliseconds.
"""

from __future__ import annotations

import hashlib
import os

from ..core.config import EaszConfig
from ..core.reconstruction import EaszReconstructor
from ..core.training import EaszTrainer
from ..datasets.cifar import CifarLikeDataset
from ..nn.serialization import load_checkpoint, save_checkpoint

__all__ = ["default_benchmark_config", "pretrained_model", "cache_directory"]


def cache_directory():
    """Directory used for cached checkpoints (override with REPRO_CACHE_DIR)."""
    directory = os.environ.get("REPRO_CACHE_DIR")
    if not directory:
        directory = os.path.join(os.path.expanduser("~"), ".cache", "repro-easz")
    os.makedirs(directory, exist_ok=True)
    return directory


def default_benchmark_config(**overrides):
    """The CPU-scale Easz configuration shared by the benchmark suite."""
    defaults = dict(patch_size=16, subpatch_size=4, erase_per_row=1,
                    d_model=48, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                    ffn_mult=2, loss_lambda=0.0)
    defaults.update(overrides)
    return EaszConfig(**defaults)


def _config_key(config, steps, batch_size, dataset_images):
    payload = (f"{config.patch_size}-{config.subpatch_size}-{config.d_model}-"
               f"{config.num_heads}-{config.encoder_blocks}-{config.decoder_blocks}-"
               f"{config.ffn_mult}-{config.channels}-{config.seed}-"
               f"{steps}-{batch_size}-{dataset_images}")
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def pretrained_model(config=None, steps=500, batch_size=32, dataset_images=1024,
                     use_perceptual_loss=False, force_retrain=False, verbose=False):
    """Return a pre-trained :class:`EaszReconstructor`, training it if needed.

    The model is pre-trained on :class:`CifarLikeDataset` patches (the
    paper's offline phase) and cached under :func:`cache_directory`.
    """
    config = config or default_benchmark_config()
    key = _config_key(config, steps, batch_size, dataset_images)
    path = os.path.join(cache_directory(), f"easz-{key}.npz")
    model = EaszReconstructor(config)
    if not force_retrain and os.path.exists(path):
        load_checkpoint(model, path)
        model.eval()
        return model
    if verbose:
        print(f"pre-training Easz reconstructor ({steps} steps) -> {path}")
    dataset = CifarLikeDataset(num_images=dataset_images, size=config.patch_size,
                               seed=9000 + config.seed)
    trainer = EaszTrainer(model=model, config=config,
                          use_perceptual_loss=use_perceptual_loss)
    result = trainer.pretrain(dataset, steps=steps, batch_size=batch_size)
    save_checkpoint(model, path, metadata={
        "steps": result.steps,
        "final_loss": result.final_loss,
        "patch_size": config.patch_size,
        "subpatch_size": config.subpatch_size,
    })
    model.eval()
    return model
