"""Markdown report generation for experiment results.

EXPERIMENTS.md in this repository is hand-written; deployments that re-run
the benchmark suite on their own hardware usually want the same
paper-vs-measured layout regenerated automatically.  This module provides a
small report builder: record each experiment's measured rows (and optionally
the paper's reference values), then render everything as one Markdown
document or write it to disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ExperimentRecord", "MarkdownReport", "format_markdown_table"]


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_markdown_table(headers, rows):
    """Render ``rows`` under ``headers`` as a GitHub-flavoured Markdown table."""
    headers = [str(h) for h in headers]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


@dataclass
class ExperimentRecord:
    """Measured (and optionally paper-reported) results of one experiment."""

    experiment_id: str
    title: str
    headers: list
    rows: list = field(default_factory=list)
    paper_reference: str = ""
    notes: str = ""
    status: str = "reproduced"

    _STATUSES = ("reproduced", "partially reproduced", "not reproduced")

    def __post_init__(self):
        if self.status not in self._STATUSES:
            raise ValueError(f"status must be one of {self._STATUSES}, got {self.status!r}")

    def add_row(self, *cells):
        """Append one measured row (cell count must match the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells ({self.headers}), got {len(cells)}"
            )
        self.rows.append(list(cells))
        return self

    def to_markdown(self):
        """Render this record as a Markdown section."""
        marker = {"reproduced": "✔", "partially reproduced": "◐", "not reproduced": "✗"}[self.status]
        lines = [f"## {self.experiment_id} — {self.title} {marker}", ""]
        if self.paper_reference:
            lines += [f"*Paper reports:* {self.paper_reference}", ""]
        lines.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            lines += ["", self.notes]
        return "\n".join(lines)


class MarkdownReport:
    """An ordered collection of :class:`ExperimentRecord` rendered as one document."""

    def __init__(self, title="Experiment report", preamble=""):
        self.title = title
        self.preamble = preamble
        self.records = []

    def add(self, record):
        """Append a record (records keep their insertion order)."""
        if not isinstance(record, ExperimentRecord):
            raise TypeError("add() expects an ExperimentRecord")
        self.records.append(record)
        return record

    def new_record(self, experiment_id, title, headers, **kwargs):
        """Create, register and return a new record in one call."""
        record = ExperimentRecord(experiment_id=experiment_id, title=title,
                                  headers=list(headers), **kwargs)
        return self.add(record)

    def summary_rows(self):
        """One row per experiment: id, title, status — the report's index table."""
        return [[record.experiment_id, record.title, record.status]
                for record in self.records]

    def to_markdown(self):
        """Render the whole report."""
        lines = [f"# {self.title}", ""]
        if self.preamble:
            lines += [self.preamble, ""]
        if self.records:
            lines += [format_markdown_table(["experiment", "title", "status"],
                                            self.summary_rows()), ""]
        for record in self.records:
            lines += [record.to_markdown(), ""]
        return "\n".join(lines).rstrip() + "\n"

    def write(self, path):
        """Write the rendered report to ``path`` and return the byte count."""
        content = self.to_markdown()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        return os.path.getsize(path)
