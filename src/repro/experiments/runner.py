"""Experiment runner: codec sweeps, dataset scoring, rate/perception curves.

These functions are the shared machinery behind the benchmark files in
``benchmarks/`` — each benchmark composes them into the specific table or
figure it regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics import brisque, ms_ssim, mse, pi, psnr, ssim, tres
from .figures import Series

__all__ = [
    "NO_REFERENCE_METRICS",
    "FULL_REFERENCE_METRICS",
    "CodecEvaluation",
    "evaluate_codec",
    "evaluate_codec_on_dataset",
    "rate_sweep",
    "series_from_sweep",
]

#: No-reference metric functions keyed by the names used in the paper.
NO_REFERENCE_METRICS = {"brisque": brisque, "pi": pi, "tres": tres}

#: Full-reference metric functions keyed by the names used in the paper.
FULL_REFERENCE_METRICS = {"psnr": psnr, "ssim": ssim, "ms_ssim": ms_ssim, "mse": mse}


@dataclass
class CodecEvaluation:
    """Aggregated scores of one codec over a set of images."""

    codec_name: str
    bpp: float
    scores: dict = field(default_factory=dict)
    num_images: int = 0
    parameters: dict = field(default_factory=dict)

    def row(self, metric_names):
        """Table row: codec, bpp, then the requested metrics in order."""
        return [self.codec_name, self.bpp] + [self.scores.get(m, float("nan"))
                                              for m in metric_names]


def evaluate_codec(codec, image, no_reference=("brisque", "pi", "tres"),
                   full_reference=("psnr", "ms_ssim", "mse")):
    """Compress/decompress one image and score the reconstruction.

    Returns ``(scores, bpp)`` where ``scores`` maps metric names to values.
    """
    reconstruction, compressed = codec.roundtrip(image)
    scores = {}
    for name in no_reference:
        scores[name] = float(NO_REFERENCE_METRICS[name](reconstruction))
    for name in full_reference:
        scores[name] = float(FULL_REFERENCE_METRICS[name](image, reconstruction))
    return scores, compressed.bpp()


def evaluate_codec_on_dataset(codec, dataset, max_images=None,
                              no_reference=("brisque", "pi", "tres"),
                              full_reference=("psnr", "ms_ssim", "mse")):
    """Average :func:`evaluate_codec` over (a subset of) a dataset."""
    count = len(dataset) if max_images is None else min(max_images, len(dataset))
    accumulated = {}
    bpps = []
    for index in range(count):
        scores, bpp = evaluate_codec(codec, dataset[index], no_reference, full_reference)
        bpps.append(bpp)
        for name, value in scores.items():
            accumulated.setdefault(name, []).append(value)
    averaged = {name: float(np.mean(values)) for name, values in accumulated.items()}
    return CodecEvaluation(
        codec_name=codec.name,
        bpp=float(np.mean(bpps)),
        scores=averaged,
        num_images=count,
    )


def rate_sweep(codec_factory, qualities, dataset, max_images=2,
               no_reference=("brisque", "pi", "tres"), full_reference=("psnr",)):
    """Evaluate ``codec_factory(quality)`` across ``qualities``.

    Returns a list of :class:`CodecEvaluation`, one per quality, sorted by
    average BPP — the raw material of the paper's rate/perception curves
    (Fig. 7a-b, Fig. 8a-c).
    """
    evaluations = []
    for quality in qualities:
        codec = codec_factory(quality)
        evaluation = evaluate_codec_on_dataset(codec, dataset, max_images,
                                               no_reference, full_reference)
        evaluation.parameters = {"quality": quality}
        evaluations.append(evaluation)
    return sorted(evaluations, key=lambda e: e.bpp)


def series_from_sweep(evaluations, metric, label):
    """Convert a rate sweep into a :class:`Series` of (bpp, metric) points."""
    return Series(
        label=label,
        xs=[e.bpp for e in evaluations],
        ys=[e.scores[metric] for e in evaluations],
        metadata={"metric": metric},
    )
