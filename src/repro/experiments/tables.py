"""Plain-text table formatting for the benchmark harness.

The benchmarks print the same rows the paper's tables report; these helpers
keep the formatting consistent and readable in pytest/benchmark output.
"""

from __future__ import annotations

__all__ = ["format_table", "format_kv_block"]


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render ``rows`` (sequences) under ``headers`` as an aligned ASCII table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv_block(title, values):
    """Render a ``{key: value}`` mapping as an aligned key/value block."""
    width = max(len(str(k)) for k in values) if values else 0
    lines = [title]
    for key, value in values.items():
        lines.append(f"  {str(key).ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)
