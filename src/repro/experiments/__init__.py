"""``repro.experiments`` — shared harness for regenerating the paper's tables and figures."""

from .cli import build_parser, main as cli_main
from .figures import Series, format_series_table, sparkline
from .report import ExperimentRecord, MarkdownReport, format_markdown_table
from .pretrained import cache_directory, default_benchmark_config, pretrained_model
from .runner import (
    CodecEvaluation,
    FULL_REFERENCE_METRICS,
    NO_REFERENCE_METRICS,
    evaluate_codec,
    evaluate_codec_on_dataset,
    rate_sweep,
    series_from_sweep,
)
from .tables import format_kv_block, format_table

__all__ = [
    "build_parser",
    "cli_main",
    "ExperimentRecord",
    "MarkdownReport",
    "format_markdown_table",
    "Series",
    "format_series_table",
    "sparkline",
    "format_table",
    "format_kv_block",
    "CodecEvaluation",
    "evaluate_codec",
    "evaluate_codec_on_dataset",
    "rate_sweep",
    "series_from_sweep",
    "NO_REFERENCE_METRICS",
    "FULL_REFERENCE_METRICS",
    "pretrained_model",
    "default_benchmark_config",
    "cache_directory",
]
