"""Command-line interface for the Easz reproduction.

``python -m repro <command>`` exposes the library's main entry points without
writing a script:

* ``info`` — library version, registered codecs, device profiles;
* ``codecs`` — codec registry with the default quality grids;
* ``roundtrip`` — compress/decompress one image (from an ``.npy``/``.npz``
  file or a synthetic dataset) with any codec, optionally wrapped in Easz,
  and report rate/quality;
* ``compress`` / ``decompress`` — write and read actual ``.easz`` transport
  containers (what the edge device would store-and-forward);
* ``evaluate`` — average a codec's rate and perceptual scores over a
  synthetic dataset (the building block of Table II);
* ``train`` — pre-train (and cache) the Easz reconstruction model;
* ``experiment`` — regenerate a quick, reduced-size version of one of the
  paper's experiments (fig1, fig6, fig8d, table2) directly in the terminal;
* ``serve-bench`` — replay Poisson load against a live server and compare
  the observed queueing with the M/D/c prediction; with ``--scenario NAME``
  (or ``--scenario-file PATH`` for a custom ScenarioSpec JSON) it instead
  replays a multi-tenant chaos scenario
  (:mod:`repro.serve.scenarios`) and exits 4 on invariant violations
  (lost/duplicated futures, decoder crashes) or 3 on a saturated run, so
  the nightly chaos CI can gate on the exit code alone.

The full-fidelity versions of the experiments live in ``benchmarks/``; the
CLI drivers use smaller images and fewer operating points so they finish in
seconds.
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np

from .. import __version__
from ..codecs import available_codecs, create_codec, quality_grid
from ..core import EaszCodec, EaszDecoder, EaszEncoder
from ..core.pipeline import EaszCompressed
from ..core.transport import load_package, save_package
from ..datasets import CifarLikeDataset, ClicDataset, KodakDataset
from ..edge import EdgeServerTestbed, JETSON_TX2, RASPBERRY_PI4, SERVER_2080TI, SERVER_A100
from ..image import to_float
from ..metrics import brisque, ms_ssim, pi, psnr, tres
from .pretrained import cache_directory, default_benchmark_config, pretrained_model
from .runner import evaluate_codec_on_dataset
from .tables import format_kv_block, format_table

__all__ = ["build_parser", "main"]

_DATASET_CLASSES = {
    "kodak": KodakDataset,
    "clic": ClicDataset,
    "cifar": CifarLikeDataset,
}

_DEVICE_PROFILES = (JETSON_TX2, RASPBERRY_PI4, SERVER_2080TI, SERVER_A100)


# --------------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------------- #
def build_parser():
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Easz (DAC 2025) reproduction - agile transformer-based image "
                    "compression for resource-constrained IoT devices.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="library, codec and device overview")
    subparsers.add_parser("codecs", help="registered codecs and their quality grids")

    roundtrip = subparsers.add_parser("roundtrip", help="compress/decompress one image")
    _add_image_source_arguments(roundtrip)
    _add_codec_arguments(roundtrip)
    roundtrip.add_argument("--output", help="write the reconstruction to this .npy file")

    compress = subparsers.add_parser("compress",
                                     help="compress one image into a transport container")
    _add_image_source_arguments(compress)
    _add_codec_arguments(compress)
    compress.add_argument("output", help="path of the .easz container to write")

    decompress = subparsers.add_parser("decompress",
                                       help="decode a transport container back to pixels")
    decompress.add_argument("input", help="path of a container written by 'compress'")
    decompress.add_argument("output", help="path of the .npy file to write")
    _add_codec_arguments(decompress)

    evaluate = subparsers.add_parser("evaluate", help="average scores over a dataset")
    evaluate.add_argument("--dataset", choices=sorted(_DATASET_CLASSES), default="kodak")
    evaluate.add_argument("--images", type=int, default=2, help="number of images to score")
    evaluate.add_argument("--height", type=int, default=96)
    evaluate.add_argument("--width", type=int, default=144)
    _add_codec_arguments(evaluate)

    train = subparsers.add_parser("train", help="pre-train and cache the reconstruction model")
    train.add_argument("--steps", type=int, default=300)
    train.add_argument("--patch-size", type=int, default=16)
    train.add_argument("--subpatch-size", type=int, default=4)
    train.add_argument("--d-model", type=int, default=48)
    train.add_argument("--force", action="store_true", help="retrain even if a cached model exists")

    experiment = subparsers.add_parser("experiment", help="run a reduced-size paper experiment")
    experiment.add_argument("name", choices=["fig1", "fig6", "fig8d", "table2"])
    experiment.add_argument("--images", type=int, default=1)
    experiment.add_argument("--height", type=int, default=96)
    experiment.add_argument("--width", type=int, default=144)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="drive the micro-batching compression server with Poisson load")
    serve_bench.add_argument("--requests", type=int, default=48,
                             help="number of requests to replay")
    serve_bench.add_argument("--rate", type=float, default=60.0,
                             help="Poisson arrival rate (requests/s)")
    serve_bench.add_argument("--workers", type=int, default=2, help="worker threads")
    serve_bench.add_argument("--shards", type=int, default=0,
                             help="serve from N worker processes instead of threads "
                                  "(0 = threaded server)")
    serve_bench.add_argument("--shm", action=argparse.BooleanOptionalAction,
                             default=True,
                             help="serve sharded responses through the zero-copy "
                                  "shared-memory ring (--no-shm forces the queue "
                                  "path; ignored without --shards)")
    serve_bench.add_argument("--watchdog", action="store_true",
                             help="run the shard health watchdog (auto-restart of "
                                  "crashed shards; ignored without --shards)")
    serve_bench.add_argument("--watchdog-interval", type=float, default=1.0,
                             help="watchdog probe interval in seconds (must be > 0)")
    serve_bench.add_argument("--result-cache", type=int, default=0,
                             help="cross-request result cache capacity (0 = off)")
    serve_bench.add_argument("--adaptive-wait", action="store_true",
                             help="tune the micro-batch wait online from the "
                                  "observed arrival rate instead of a fixed budget")
    serve_bench.add_argument("--max-batch", type=int, default=8,
                             help="micro-batcher batch-size cap")
    serve_bench.add_argument("--batch-wait-ms", type=float, default=4.0,
                             help="micro-batcher wait budget per batch")
    serve_bench.add_argument("--queue-depth", type=int, default=64,
                             help="admission queue bound")
    serve_bench.add_argument("--dct-threads", type=int, default=1,
                             help="opt-in thread pool for >1MP batched DCT "
                                  "calls (1 = single-threaded GEMM)")
    serve_bench.add_argument("--height", type=int, default=96)
    serve_bench.add_argument("--width", type=int, default=144)
    serve_bench.add_argument("--images", type=int, default=4,
                             help="distinct frames cycled through the replay")
    serve_bench.add_argument("--train-steps", type=int, default=300,
                             help="pre-training steps for the (cached) model")
    serve_bench.add_argument("--scenario", default=None,
                             help="replay a named multi-tenant chaos scenario "
                                  "instead of the plain Poisson load (see "
                                  "--list-scenarios); exit code 4 on invariant "
                                  "violations (lost/duplicated futures, decoder "
                                  "crashes)")
    serve_bench.add_argument("--scenario-file", default=None, metavar="PATH",
                             help="replay a custom scenario loaded from a "
                                  "ScenarioSpec JSON file (see ScenarioSpec."
                                  "to_json); mutually exclusive with "
                                  "--scenario")
    serve_bench.add_argument("--scenario-report", default=None, metavar="PATH",
                             help="write the machine-readable ScenarioReport "
                                  "JSON here (the chaos CI artifact)")
    serve_bench.add_argument("--list-scenarios", action="store_true",
                             help="print the built-in scenario matrix and exit")
    return parser


def _add_image_source_arguments(parser):
    parser.add_argument("--input", help="path to an .npy/.npz image file (float [0,1] or uint8)")
    parser.add_argument("--dataset", choices=sorted(_DATASET_CLASSES), default="kodak",
                        help="synthetic dataset used when --input is not given")
    parser.add_argument("--index", type=int, default=0, help="image index within the dataset")
    parser.add_argument("--height", type=int, default=96)
    parser.add_argument("--width", type=int, default=144)


def _add_codec_arguments(parser):
    parser.add_argument("--codec", default="jpeg", choices=available_codecs(),
                        help="base codec (registry name)")
    parser.add_argument("--quality", type=int, default=None, help="codec quality / QP setting")
    parser.add_argument("--easz", action="store_true", help="wrap the base codec in Easz")
    parser.add_argument("--erase-ratio", type=float, default=0.25,
                        help="Easz erase ratio (fraction of sub-patches removed)")
    parser.add_argument("--patch-size", type=int, default=16, help="Easz first-stage patch size n")
    parser.add_argument("--subpatch-size", type=int, default=4, help="Easz erase-block size b")
    parser.add_argument("--train-steps", type=int, default=300,
                        help="pre-training steps for the (cached) reconstruction model")


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _load_image(args):
    """Image selected by the CLI arguments (file input or synthetic dataset)."""
    if args.input:
        loaded = np.load(args.input, allow_pickle=False)
        if hasattr(loaded, "files"):  # npz archive: take the first array
            loaded = loaded[loaded.files[0]]
        return to_float(loaded)
    dataset = _make_dataset(args.dataset, num_images=args.index + 1,
                            height=args.height, width=args.width)
    return dataset[args.index]


def _make_dataset(name, num_images, height, width):
    cls = _DATASET_CLASSES[name]
    if cls is CifarLikeDataset:
        return cls(num_images=num_images, size=32)
    return cls(num_images=num_images, height=height, width=width)


def _build_codec(args):
    """Instantiate the codec requested by the CLI (optionally Easz-wrapped)."""
    base = create_codec(args.codec, quality=args.quality)
    if not args.easz:
        return base
    config = default_benchmark_config(patch_size=args.patch_size,
                                      subpatch_size=args.subpatch_size)
    config = config.with_erase_ratio(args.erase_ratio)
    model = pretrained_model(config, steps=args.train_steps)
    return EaszCodec(config=config, base_codec=base, model=model)


# --------------------------------------------------------------------------- #
# commands
# --------------------------------------------------------------------------- #
def _command_info(_args):
    print(format_kv_block("repro — Easz reproduction", {
        "version": __version__,
        "codecs": ", ".join(available_codecs()),
        "model cache": cache_directory(),
    }))
    rows = [[d.name, d.cpu_gmacs_per_s, d.gpu_gmacs_per_s, d.cpu_active_w + d.gpu_active_w]
            for d in _DEVICE_PROFILES]
    print()
    print(format_table(["device", "cpu GMAC/s", "gpu GMAC/s", "active power (W)"], rows,
                       title="device profiles (edge/server testbed)"))
    return 0


def _command_codecs(_args):
    rows = []
    for name in available_codecs():
        try:
            grid = quality_grid(name)
        except KeyError:
            grid = []
        rows.append([name, ", ".join(str(q) for q in grid) or "(single setting)"])
    print(format_table(["codec", "quality grid"], rows, title="registered codecs"))
    return 0


def _command_roundtrip(args):
    image = _load_image(args)
    codec = _build_codec(args)
    reconstruction, compressed = codec.roundtrip(image)
    scores = {
        "codec": codec.name,
        "image shape": "x".join(str(s) for s in image.shape),
        "compressed bytes": compressed.num_bytes,
        "bpp": compressed.bpp(),
        "psnr (dB)": psnr(image, reconstruction),
        "ms-ssim": ms_ssim(image, reconstruction),
        "brisque": brisque(reconstruction),
        "pi": pi(reconstruction),
        "tres": tres(reconstruction),
    }
    print(format_kv_block("roundtrip", scores))
    if args.output:
        np.save(args.output, reconstruction)
        print(f"reconstruction written to {args.output}")
    return 0


def _command_compress(args):
    image = _load_image(args)
    base = create_codec(args.codec, quality=args.quality)
    if args.easz:
        config = default_benchmark_config(patch_size=args.patch_size,
                                          subpatch_size=args.subpatch_size)
        config = config.with_erase_ratio(args.erase_ratio)
        package = EaszEncoder(config, base, seed=0).encode(image)
        bpp = package.bpp()
    else:
        package = base.compress(image)
        bpp = package.bpp()
    size = save_package(package, args.output)
    print(format_kv_block("compress", {
        "codec": f"{base.name}+easz" if args.easz else base.name,
        "image shape": "x".join(str(s) for s in image.shape),
        "container": args.output,
        "container bytes": size,
        "bpp": bpp,
    }))
    return 0


def _command_decompress(args):
    package = load_package(args.input)
    base = create_codec(args.codec, quality=args.quality)
    if isinstance(package, EaszCompressed):
        config = default_benchmark_config(patch_size=args.patch_size,
                                          subpatch_size=args.subpatch_size)
        config = config.with_erase_ratio(args.erase_ratio)
        model = pretrained_model(config, steps=args.train_steps)
        image = EaszDecoder(model=model, config=config, base_codec=base).decode(package)
    else:
        image = base.decompress(package)
    image = np.asarray(image)
    np.save(args.output, image)
    print(format_kv_block("decompress", {
        "container": args.input,
        "decoded shape": "x".join(str(s) for s in image.shape),
        "output": args.output,
    }))
    return 0


def _command_evaluate(args):
    dataset = _make_dataset(args.dataset, num_images=args.images,
                            height=args.height, width=args.width)
    codec = _build_codec(args)
    evaluation = evaluate_codec_on_dataset(codec, dataset, max_images=args.images)
    block = {"codec": evaluation.codec_name, "images": evaluation.num_images,
             "bpp": evaluation.bpp}
    block.update(evaluation.scores)
    print(format_kv_block(f"{args.dataset} evaluation", block))
    return 0


def _command_train(args):
    config = default_benchmark_config(patch_size=args.patch_size,
                                      subpatch_size=args.subpatch_size,
                                      d_model=args.d_model)
    model = pretrained_model(config, steps=args.steps, force_retrain=args.force, verbose=True)
    print(format_kv_block("reconstruction model", {
        "parameters": sum(p.data.size for p in model.parameters()),
        "size (MB)": model.model_size_bytes() / 2 ** 20,
        "patch size": config.patch_size,
        "erase block": config.subpatch_size,
        "cache": cache_directory(),
    }))
    return 0


def _command_experiment(args):
    if args.name == "fig1":
        return _experiment_fig1()
    if args.name == "fig6":
        return _experiment_fig6(args)
    if args.name == "fig8d":
        return _experiment_fig8d(args)
    return _experiment_table2(args)


def _experiment_fig1():
    """Fig. 1 — NN-codec load/encode latency vs transmission on the TX2."""
    testbed = EdgeServerTestbed()
    shape = (512, 768, 3)
    payload = int(0.4 * shape[0] * shape[1] / 8)
    rows = []
    for name in ("balle-factorized", "balle-hyperprior", "mbt", "cheng"):
        codec = create_codec(name, quality=4)
        report = testbed.run(codec, shape=shape, payload_bytes=payload)
        rows.append([name, report.timing.transmit_ms, report.timing.load_ms,
                     report.timing.encode_ms])
    print(format_table(["codec", "transmit (ms)", "load (ms)", "edge encode (ms)"], rows,
                       title="Fig. 1 — NN compressors on a simulated Jetson TX2 (512x768)"))
    return 0


def _experiment_fig6(args):
    """Fig. 6 — efficiency comparison of Easz vs MBT/Cheng on the TX2."""
    image = KodakDataset(num_images=1, height=args.height, width=args.width)[0]
    testbed = EdgeServerTestbed()
    config = default_benchmark_config()
    model = pretrained_model(config, steps=300)
    codecs = {
        "easz": EaszCodec(config=config, model=model),
        "mbt": create_codec("mbt", quality=4),
        "cheng": create_codec("cheng", quality=4),
    }
    rows = []
    for label, codec in codecs.items():
        report = testbed.run(codec, image=image)
        timing = report.timing
        rows.append([label, timing.erase_squeeze_ms, timing.encode_ms, timing.transmit_ms,
                     timing.decode_ms, timing.reconstruction_ms,
                     report.edge_total_power_w, report.edge_memory_gb])
    print(format_table(
        ["codec", "erase (ms)", "encode (ms)", "transmit (ms)", "decode (ms)",
         "recon (ms)", "edge power (W)", "edge mem (GB)"],
        rows, title=f"Fig. 6 — efficiency on a simulated Jetson TX2 ({args.height}x{args.width})"))
    return 0


def _experiment_fig8d(args):
    """Fig. 8d — end-to-end latency vs bitrate."""
    image = KodakDataset(num_images=1, height=args.height, width=args.width)[0]
    testbed = EdgeServerTestbed()
    config = default_benchmark_config()
    model = pretrained_model(config, steps=300)
    rows = []
    for quality in (30, 60, 85):
        easz = EaszCodec(config=config, base_codec=create_codec("jpeg", quality=quality),
                         model=model)
        mbt = create_codec("mbt", quality=max(1, quality // 15))
        for codec in (easz, mbt):
            report = testbed.run(codec, image=image)
            rows.append([codec.name, report.bpp, report.timing.total_ms])
    print(format_table(["codec", "bpp", "end-to-end latency (ms)"], rows,
                       title="Fig. 8d — end-to-end latency vs bitrate (simulated testbed)"))
    return 0


def _experiment_table2(args):
    """Table II (reduced) — perceptual enhancement from wrapping codecs in Easz."""
    dataset = KodakDataset(num_images=args.images, height=args.height, width=args.width)
    config = default_benchmark_config()
    model = pretrained_model(config, steps=300)
    rows = []
    for name, quality in (("jpeg", 75), ("bpg", 32)):
        base = create_codec(name, quality=quality)
        wrapped = EaszCodec(config=config, base_codec=create_codec(name, quality=quality),
                            model=model)
        for codec in (base, wrapped):
            evaluation = evaluate_codec_on_dataset(codec, dataset, max_images=args.images,
                                                   full_reference=("psnr",))
            rows.append([codec.name, evaluation.bpp, evaluation.scores["brisque"],
                         evaluation.scores["pi"], evaluation.scores["tres"]])
    print(format_table(["codec", "bpp", "brisque (lower=better)", "pi (lower=better)",
                        "tres (higher=better)"], rows,
                       title="Table II (reduced) — enhancement of existing codecs"))
    return 0


def _command_list_scenarios():
    from ..serve.scenarios import builtin_scenarios

    rows = []
    for name, scenario in sorted(builtin_scenarios().items()):
        chaos = scenario.chaos
        faults = []
        if chaos.kill_shard_at_s:
            faults.append(f"kill x{len(chaos.kill_shard_at_s)}")
        if chaos.freeze_shard_at_s:
            faults.append(f"freeze x{len(chaos.freeze_shard_at_s)}")
        if chaos.corrupt_fraction > 0:
            faults.append(f"corrupt {chaos.corrupt_fraction * 100:.0f}%")
        if chaos.exhaust_shm_at_s:
            faults.append(f"shm-exhaust x{len(chaos.exhaust_shm_at_s)}")
        rows.append([name, len(scenario.tenants), f"{scenario.duration_s:.0f}s",
                     ", ".join(faults) or "none"])
    print(format_table(["scenario", "tenants", "duration", "chaos"], rows,
                       title="built-in chaos scenarios (serve-bench --scenario NAME)"))
    return 0


def _resolve_scenario(name):
    from ..serve.scenarios import builtin_scenarios

    scenarios = builtin_scenarios()
    scenario = scenarios.get(name)
    if scenario is None:
        raise ValueError(f"unknown scenario {name!r}; choose from "
                         f"{', '.join(sorted(scenarios))}")
    return scenario


def _load_scenario_file(path):
    """Parse a ScenarioSpec from a JSON file; bad fields exit 2 via ValueError."""
    from pathlib import Path

    from ..serve.scenarios import ScenarioSpec

    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ValueError(f"cannot read scenario file {path!r}: {error}") from error
    try:
        return ScenarioSpec.from_json(text)
    except ValueError as error:
        raise ValueError(f"scenario file {path!r}: {error}") from error


def _run_scenario_bench(args, scenario, config, model, batch_policy):
    """serve-bench --scenario: replay one chaos scenario, report per tenant."""
    from pathlib import Path

    from ..serve import CompressionServer, ShardedCompressionServer
    from ..serve.scenarios import run_scenario

    if args.shards > 0:
        # scenario hints (watchdog cadence, ring sizing) override the generic
        # CLI defaults — each scenario is tuned to exercise one failure mode
        kwargs = {
            "num_shards": args.shards,
            "workers_per_shard": max(1, args.workers // args.shards),
            "queue_depth": args.queue_depth,
            "batch_policy": batch_policy,
            "result_cache_size": args.result_cache,
            "use_shm": args.shm,
            "watchdog_interval_s": args.watchdog_interval if args.watchdog else 0.25,
        }
        kwargs.update(dict(scenario.server_hints))
        server = ShardedCompressionServer(model=model, config=config, **kwargs)
    else:
        if scenario.chaos.kill_shard_at_s or scenario.chaos.freeze_shard_at_s \
                or scenario.chaos.exhaust_shm_at_s:
            print("warning: scenario has process/ring chaos but --shards is 0; "
                  "those events will be skipped (threaded server)", file=sys.stderr)
        kwargs = {
            "num_workers": args.workers,
            "queue_depth": args.queue_depth,
            "batch_policy": batch_policy,
            "result_cache_size": args.result_cache,
        }
        # scenario hints still override here, minus the process/ring knobs a
        # threaded server has no equivalent for (shm sizing, watchdog cadence)
        kwargs.update({key: value for key, value in dict(scenario.server_hints).items()
                       if key in kwargs})
        server = CompressionServer(model=model, config=config, **kwargs)
    with server:
        report = run_scenario(scenario, server, config=config, model=model)

    print(format_kv_block(f"scenario {scenario.name}", {
        "description": scenario.description or "(none)",
        "duration (s)": report.duration_s,
        "servers (c)": report.servers,
        "offered / submitted / completed":
            f"{report.offered} / {report.submitted} / {report.completed}",
        "futures lost / duplicated":
            f"{report.futures_lost} / {report.futures_duplicated}",
        "decoder crashes": report.decoder_crashes,
        "watchdog restarts": report.watchdog_restarts,
        "retries / hedges / deadline-shed":
            f"{report.retries} / {report.hedges} / {report.deadline_shed}",
        "utilisation": report.utilisation,
        "service time / image (ms)": report.service_time_per_image_ms,
        "chaos events": len(report.chaos_events),
    }))
    print()
    rows = [[t.name, t.qos, t.arrival, f"{t.deadline_ms:.0f}",
             t.offered, t.completed, t.degraded, t.shed,
             t.retries, t.hedges, t.deadline_shed,
             f"{t.latency_p50_ms:.1f}", f"{t.latency_p99_ms:.1f}",
             f"{t.predicted_wait_ms_mean:.1f}",
             f"{t.slo_miss_rate * 100:.1f}%"]
            for t in report.tenants]
    print(format_table(
        ["tenant", "qos", "arrival", "budget ms", "offered", "done", "degr",
         "shed", "retry", "hedge", "dl-shed", "p50 ms", "p99 ms",
         "M/D/c pred ms", "SLO miss"],
        rows, title="per-tenant service levels"))
    for event in report.chaos_events:
        print(f"chaos @ {event['at_s']:7.3f}s  {event['kind']}: {event['detail']}")
    print(report.headline())

    if args.scenario_report:
        Path(args.scenario_report).write_text(report.to_json())
        print(f"wrote {args.scenario_report}")
    if not report.ok():
        print("error: chaos invariants violated — "
              f"lost={report.futures_lost} duplicated={report.futures_duplicated} "
              f"decoder_crashes={report.decoder_crashes}", file=sys.stderr)
        return 4
    if report.saturated:
        print("error: scenario run saturated the pool; per-tenant SLO numbers "
              "are not meaningful at utilisation >= 1", file=sys.stderr)
        return 3
    return 0


def _command_serve_bench(args):
    """Replay Poisson load against a live micro-batching server."""
    from ..serve import (BatchPolicy, CompressionServer, PoissonLoadGenerator,
                         ShardedCompressionServer, available_cpus)

    if args.list_scenarios:
        return _command_list_scenarios()
    # resolve the scenario before the (expensive) model build: a typo in
    # --scenario or a malformed --scenario-file should fail in milliseconds,
    # not after pretraining
    if args.scenario and args.scenario_file:
        raise ValueError("--scenario and --scenario-file are mutually exclusive")
    scenario = _resolve_scenario(args.scenario) if args.scenario else None
    if args.scenario_file:
        scenario = _load_scenario_file(args.scenario_file)
    if args.shards > 0 and not args.watchdog_interval > 0:
        # fail before the model is built, like BatchPolicy's poll_interval_ms
        raise ValueError("--watchdog-interval must be positive")
    if args.shards > 0 and available_cpus() < 2:
        # not silent: sharding cannot beat the threaded server here, and the
        # throughput benchmark records a `skipped` marker on such hosts
        print(f"warning: host exposes {available_cpus()} CPU; {args.shards} "
              "process shards will not run in parallel (numbers reflect "
              "transport overhead only)", file=sys.stderr)

    if args.dct_threads != 1:
        from ..codecs.jpeg import set_dct_threads

        set_dct_threads(args.dct_threads)

    config = default_benchmark_config()
    model = pretrained_model(config, steps=args.train_steps)
    batch_policy = BatchPolicy(max_batch_size=args.max_batch,
                               max_wait_ms=args.batch_wait_ms,
                               mode="adaptive" if args.adaptive_wait else "fixed")
    if scenario is not None:
        return _run_scenario_bench(args, scenario, config, model, batch_policy)

    dataset = KodakDataset(num_images=args.images, height=args.height, width=args.width)
    encoder = EaszEncoder(config, seed=0)
    mask = encoder.generate_mask()
    packages = encoder.encode_batch([dataset[i] for i in range(args.images)], mask=mask)

    if args.shards > 0:
        server = ShardedCompressionServer(
            model=model, config=config, num_shards=args.shards,
            workers_per_shard=max(1, args.workers // args.shards),
            queue_depth=args.queue_depth, batch_policy=batch_policy,
            result_cache_size=args.result_cache, use_shm=args.shm,
            watchdog_interval_s=args.watchdog_interval if args.watchdog else None,
        )
    else:
        server = CompressionServer(
            model=model, config=config, num_workers=args.workers,
            queue_depth=args.queue_depth, batch_policy=batch_policy,
            result_cache_size=args.result_cache,
        )
    with server:
        generator = PoissonLoadGenerator(server)
        report = generator.run(packages, arrival_rate_rps=args.rate,
                               num_requests=args.requests)
        snapshot = server.stats.snapshot()

    mode = (f"{args.shards} process shards" if args.shards > 0
            else f"{args.workers} worker threads")
    block = {
        "requests": f"{report.completed}/{report.num_requests} "
                    f"(rejected {report.rejected}, failed {report.failed})",
        "offered rate (rps)": report.offered_rps,
        "achieved rate (rps)": report.achieved_rps,
        "latency p50 (ms)": report.latency_p50_ms,
        "latency p99 (ms)": report.latency_p99_ms,
        "queue wait mean (ms)": report.observed_wait_mean_ms,
        f"M/D/{report.servers} predicted wait (ms)": report.predicted_wait_mdc_ms,
        "utilisation": report.utilisation,
        "service time / image (ms)": report.service_time_per_image_ms,
        "mean batch size": report.mean_batch_size,
        "result-cache hits": snapshot["result_cache"]["hits"],
    }
    if args.shards > 0:
        transports = snapshot.get("response_transport", {})
        block["response transport"] = (", ".join(
            f"{name}={count}" for name, count in sorted(transports.items()))
            or "(none)")
        shm_stats = snapshot.get("shm", {})
        block["shm ring"] = (
            f"{shm_stats.get('num_slots', 0)} x {shm_stats.get('slot_bytes', 0)} B"
            if shm_stats.get("enabled") else "off (queue path)")
        watchdog = snapshot.get("watchdog", {})
        if watchdog.get("enabled"):
            block["watchdog restarts"] = watchdog.get("restarts_total", 0)
    print(format_kv_block(f"serve-bench (observed, {mode})", block))
    print()
    rows = [[size, count] for size, count in snapshot["batch_size_histogram"].items()]
    print(format_table(["batch size", "batches"], rows, title="micro-batch histogram"))
    cache_rows = []
    for worker, caches in snapshot["caches"].items():
        for cache in caches:
            cache_rows.append([worker, cache["name"], cache["hits"], cache["misses"],
                               f"{cache['hit_rate'] * 100:.0f}%"])
    if cache_rows:
        print()
        print(format_table(["worker", "cache", "hits", "misses", "hit rate"], cache_rows,
                           title="per-worker caches"))

    # a saturated or NaN run is not a benchmark, it is a misconfiguration —
    # exit non-zero so CI (and scripts) cannot mistake it for a result
    if report.utilisation >= 1.0:
        print(f"error: offered load saturated the pool (utilisation "
              f"{report.utilisation:.2f} >= 1); lower --rate or raise "
              "--workers/--shards for meaningful latency numbers", file=sys.stderr)
        return 3
    if math.isnan(report.latency_p50_ms) or math.isnan(report.latency_p99_ms):
        print("error: no successful responses (latency is NaN); the run was all "
              "rejections/failures — check server sizing and --rate", file=sys.stderr)
        return 3
    return 0


_COMMANDS = {
    "info": _command_info,
    "codecs": _command_codecs,
    "roundtrip": _command_roundtrip,
    "compress": _command_compress,
    "decompress": _command_decompress,
    "evaluate": _command_evaluate,
    "train": _command_train,
    "experiment": _command_experiment,
    "serve-bench": _command_serve_bench,
}


def main(argv=None):
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.command:
        parser.print_help()
        return 1
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
