"""Super-resolution baselines: bicubic and proxies for SwinIR / RealESRGAN / BSRGAN.

The original models are 67 MB GAN/transformer networks with pretrained
weights that cannot be downloaded offline.  Table I only needs their
*behavioural role*: 2× upscalers that recover less pixel-accurate detail than
Easz's direct sub-patch prediction (the paper reports ≈24.9–25.4 dB PSNR vs
Easz's 28.96 dB).  Each proxy therefore combines bicubic interpolation with a
method-specific detail-enhancement step (unsharp masking of different radii /
strengths — GAN-style SR tends to hallucinate sharper but less faithful
texture), plus an optional learnable residual CNN
(:class:`ResidualRefinementNetwork`) for users who want to fine-tune the
proxies on their own data.  The published model sizes are kept as metadata.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter

from .. import nn
from ..image import ensure_gray, is_color, resize_bicubic, to_float
from .base import SuperResolver

__all__ = [
    "BicubicUpscaler",
    "ResidualRefinementNetwork",
    "SwinIRProxy",
    "RealEsrganProxy",
    "BsrganProxy",
    "SR_BASELINES",
]


class BicubicUpscaler(SuperResolver):
    """Plain bicubic interpolation (the weakest, model-free baseline)."""

    name = "bicubic"
    model_size_bytes = 0

    def upscale(self, image, output_shape):
        return resize_bicubic(to_float(image), output_shape[0], output_shape[1])


class ResidualRefinementNetwork(nn.Module):
    """Small residual CNN used by the learned-SR proxies.

    Three 3×3 conv layers on the luma channel predicting a residual on top of
    the bicubic upscale; the final layer is zero-initialised so an untrained
    network is exactly bicubic.
    """

    def __init__(self, hidden_channels=8, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(11)
        self.conv_in = nn.Conv2d(1, hidden_channels, 3, padding=1, rng=rng)
        self.conv_mid = nn.Conv2d(hidden_channels, hidden_channels, 3, padding=1, rng=rng)
        self.conv_out = nn.Conv2d(hidden_channels, 1, 3, padding=1, rng=rng)
        self.conv_out.weight.data = np.zeros_like(self.conv_out.weight.data)

    def forward(self, x):
        hidden = self.conv_in(x).relu()
        hidden = self.conv_mid(hidden).relu()
        return x + self.conv_out(hidden)


class _LearnedSrProxy(SuperResolver):
    """Shared implementation of the learned-SR proxies.

    ``sharpen_sigma`` / ``sharpen_strength`` control the unsharp-mask detail
    enhancement that differentiates the proxies; ``texture_noise`` adds the
    faint high-frequency hallucination typical of GAN-based SR.
    """

    sharpen_sigma = 1.0
    sharpen_strength = 0.5
    texture_noise = 0.0

    def __init__(self, factor=2, refine=False, rng=None):
        super().__init__(factor)
        self._rng = rng or np.random.default_rng(13)
        self.refiner = ResidualRefinementNetwork(rng=self._rng) if refine else None

    def _enhance(self, channel):
        blurred = gaussian_filter(channel, self.sharpen_sigma, mode="nearest")
        enhanced = channel + self.sharpen_strength * (channel - blurred)
        if self.texture_noise > 0:
            noise = self._rng.standard_normal(channel.shape)
            enhanced = enhanced + self.texture_noise * gaussian_filter(noise, 0.7, mode="nearest")
        return np.clip(enhanced, 0.0, 1.0)

    def _refine(self, channel):
        if self.refiner is None:
            return channel
        with nn.no_grad():
            refined = self.refiner(nn.Tensor(channel[None, None, :, :])).data[0, 0]
        return np.clip(refined, 0.0, 1.0)

    def upscale(self, image, output_shape):
        image = to_float(image)
        upscaled = resize_bicubic(image, output_shape[0], output_shape[1])
        if is_color(upscaled):
            channels = [self._refine(self._enhance(upscaled[..., c])) for c in range(3)]
            return np.stack(channels, axis=-1)
        return self._refine(self._enhance(upscaled))

    def train_refiner(self, images, steps=30, lr=1e-3):
        """Fine-tune the residual refiner on full-resolution reference images."""
        if self.refiner is None:
            self.refiner = ResidualRefinementNetwork(rng=self._rng)
        optimizer = nn.Adam(self.refiner.parameters(), lr=lr)
        losses = []
        for step in range(steps):
            image = to_float(images[step % len(images)])
            gray = ensure_gray(image)
            low = self.downsample(gray)
            upscaled = resize_bicubic(low, gray.shape[0], gray.shape[1])
            optimizer.zero_grad()
            prediction = self.refiner(nn.Tensor(upscaled[None, None, :, :]))
            loss = nn.functional.mse_loss(prediction, nn.Tensor(gray[None, None, :, :]))
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
        return losses


class SwinIRProxy(_LearnedSrProxy):
    """SwinIR stand-in: moderate, faithful sharpening (no hallucinated texture)."""

    name = "swinir"
    model_size_bytes = 67 * 2 ** 20
    sharpen_sigma = 1.2
    sharpen_strength = 0.45
    texture_noise = 0.0


class RealEsrganProxy(_LearnedSrProxy):
    """RealESRGAN stand-in: aggressive sharpening plus GAN-style texture noise."""

    name = "realesrgan"
    model_size_bytes = 67 * 2 ** 20
    sharpen_sigma = 0.9
    sharpen_strength = 0.8
    texture_noise = 0.008


class BsrganProxy(_LearnedSrProxy):
    """BSRGAN stand-in: strong sharpening with milder texture noise."""

    name = "bsrgan"
    model_size_bytes = 67 * 2 ** 20
    sharpen_sigma = 1.0
    sharpen_strength = 0.65
    texture_noise = 0.004


#: The Table I baseline set, in the paper's column order.
SR_BASELINES = (SwinIRProxy, RealEsrganProxy, BsrganProxy)
