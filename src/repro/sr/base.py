"""Super-resolution baseline interface (paper Table I / Fig. 4).

The alternative edge-friendly pipeline the paper compares against is
"downsample on the edge, super-resolve on the server".  A
:class:`SuperResolver` therefore exposes both halves: :meth:`downsample`
(what the edge would transmit) and :meth:`upscale` (what the server
reconstructs), plus the model-size metadata used in Table I.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..image import downsample_box, to_float

__all__ = ["SuperResolver"]


class SuperResolver(ABC):
    """Base class for ×`factor` super-resolution pipelines."""

    #: Human-readable name used in Table I.
    name = "sr"
    #: Serialized model size in bytes (Table I row "Recon Model Size").
    model_size_bytes = 0

    def __init__(self, factor=2):
        self.factor = int(factor)

    def downsample(self, image):
        """Edge-side reduction: anti-aliased box downsampling by ``factor``."""
        return downsample_box(to_float(image), self.factor)

    @abstractmethod
    def upscale(self, image, output_shape):
        """Server-side reconstruction of ``image`` to ``output_shape[:2]``."""

    def roundtrip(self, image):
        """Downsample then upscale; returns the reconstructed image."""
        image = to_float(image)
        low = self.downsample(image)
        return self.upscale(low, image.shape)

    def reduction_ratio(self):
        """Pixel-count reduction achieved by the downsampling step."""
        return 1.0 / (self.factor ** 2)

    def __repr__(self):
        return f"{self.__class__.__name__}(factor={self.factor})"
