"""``repro.sr`` — super-resolution baselines used in the paper's Table I."""

from .base import SuperResolver
from .models import (
    BicubicUpscaler,
    BsrganProxy,
    RealEsrganProxy,
    ResidualRefinementNetwork,
    SR_BASELINES,
    SwinIRProxy,
)

__all__ = [
    "SuperResolver",
    "BicubicUpscaler",
    "SwinIRProxy",
    "RealEsrganProxy",
    "BsrganProxy",
    "ResidualRefinementNetwork",
    "SR_BASELINES",
]
