"""Easz reproduction: agile transformer-based image compression for IoT edge devices.

Top-level package layout:

* :mod:`repro.core` — the Easz framework (erase-and-squeeze, lightweight
  transformer reconstruction, end-to-end pipeline);
* :mod:`repro.nn` — numpy autograd / neural-network substrate;
* :mod:`repro.codecs` — JPEG, BPG-proxy, MBT/Cheng learned-codec proxies, PNG;
* :mod:`repro.entropy` — Huffman / arithmetic coding / RLE;
* :mod:`repro.metrics` — PSNR, SSIM, MS-SSIM, LPIPS-proxy, BRISQUE/NIQE/PI/TReS;
* :mod:`repro.datasets` — synthetic Kodak / CLIC / CIFAR stand-ins;
* :mod:`repro.sr` — super-resolution baselines (Table I);
* :mod:`repro.edge` — Jetson-TX2-class edge/server testbed simulation;
* :mod:`repro.serve` — micro-batching compression service layer (bounded
  request queue, dynamic batcher, worker pool, caches, telemetry, load
  generator);
* :mod:`repro.experiments` — experiment harness shared by the benchmarks.
"""

__version__ = "0.1.0"

from . import image  # noqa: F401  (lightweight, commonly used helpers)

__all__ = ["image", "__version__"]
