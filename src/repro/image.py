"""Basic image utilities shared across the whole reproduction.

Images are represented as numpy float64 arrays in ``[0, 1]`` with shape
``(height, width)`` for grayscale or ``(height, width, 3)`` for RGB.  This
module provides dtype conversion, colour-space transforms, padding and
resampling helpers that the codecs, metrics, datasets and Easz core all rely
on (the paper uses Pillow/torchvision for this, which are not available).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "to_float",
    "to_uint8",
    "is_color",
    "ensure_color",
    "ensure_gray",
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "rgb_to_gray",
    "pad_to_multiple",
    "crop_to_shape",
    "resize_bilinear",
    "resize_bicubic",
    "downsample_box",
    "image_num_pixels",
]


def to_float(image):
    """Convert an image to float64 in ``[0, 1]``.

    Integer inputs are assumed to be 8-bit; float inputs are clipped.
    """
    image = np.asarray(image)
    if image.dtype.kind in "ui":
        return image.astype(np.float64) / 255.0
    return np.clip(image.astype(np.float64), 0.0, 1.0)


def to_uint8(image):
    """Convert a float image in ``[0, 1]`` to uint8 with rounding."""
    image = np.asarray(image, dtype=np.float64)
    return np.clip(np.round(image * 255.0), 0, 255).astype(np.uint8)


def is_color(image):
    """Return ``True`` if the image has a trailing 3-channel axis."""
    image = np.asarray(image)
    return image.ndim == 3 and image.shape[-1] == 3


def ensure_color(image):
    """Return a 3-channel view of the image (replicating grayscale)."""
    image = np.asarray(image)
    if is_color(image):
        return image
    if image.ndim == 2:
        return np.repeat(image[..., None], 3, axis=-1)
    raise ValueError(f"unsupported image shape {image.shape}")


def ensure_gray(image):
    """Return a single-channel view of the image (luma for RGB input)."""
    image = np.asarray(image)
    if image.ndim == 2:
        return image
    if is_color(image):
        return rgb_to_gray(image)
    raise ValueError(f"unsupported image shape {image.shape}")


def rgb_to_gray(image):
    """ITU-R BT.601 luma from an RGB image."""
    image = np.asarray(image, dtype=np.float64)
    return image[..., 0] * 0.299 + image[..., 1] * 0.587 + image[..., 2] * 0.114


def rgb_to_ycbcr(image):
    """Convert RGB in ``[0, 1]`` to YCbCr in ``[0, 1]`` (JPEG convention)."""
    image = np.asarray(image, dtype=np.float64)
    r, g, b = image[..., 0], image[..., 1], image[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = -0.168736 * r - 0.331264 * g + 0.5 * b + 0.5
    cr = 0.5 * r - 0.418688 * g - 0.081312 * b + 0.5
    return np.stack([y, cb, cr], axis=-1)


def ycbcr_to_rgb(image):
    """Convert YCbCr in ``[0, 1]`` back to RGB in ``[0, 1]``."""
    image = np.asarray(image, dtype=np.float64)
    y, cb, cr = image[..., 0], image[..., 1] - 0.5, image[..., 2] - 0.5
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    return np.clip(np.stack([r, g, b], axis=-1), 0.0, 1.0)


def pad_to_multiple(image, multiple, mode="edge"):
    """Pad height/width up to the next multiple of ``multiple``.

    Returns ``(padded_image, original_shape)`` so callers can crop back.
    """
    image = np.asarray(image)
    height, width = image.shape[:2]
    pad_h = (-height) % multiple
    pad_w = (-width) % multiple
    if pad_h == 0 and pad_w == 0:
        return image, image.shape
    pad_spec = [(0, pad_h), (0, pad_w)] + [(0, 0)] * (image.ndim - 2)
    return np.pad(image, pad_spec, mode=mode), image.shape


def crop_to_shape(image, shape):
    """Crop an image back to the leading ``shape[:2]`` spatial size."""
    return np.asarray(image)[: shape[0], : shape[1], ...]


def _resample_axis(length, new_length):
    """Source sampling coordinates for resizing one axis (align-corners off)."""
    if new_length == 1:
        return np.zeros(1)
    scale = length / new_length
    return (np.arange(new_length) + 0.5) * scale - 0.5


def resize_bilinear(image, new_height, new_width):
    """Bilinear resampling to ``(new_height, new_width)``."""
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape[:2]
    ys = np.clip(_resample_axis(height, new_height), 0, height - 1)
    xs = np.clip(_resample_axis(width, new_width), 0, width - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, height - 1)
    x1 = np.minimum(x0 + 1, width - 1)
    wy = (ys - y0).reshape(-1, 1)
    wx = (xs - x0).reshape(1, -1)
    if image.ndim == 3:
        wy = wy[..., None]
        wx = wx[..., None]
    top = image[y0][:, x0] * (1 - wx) + image[y0][:, x1] * wx
    bottom = image[y1][:, x0] * (1 - wx) + image[y1][:, x1] * wx
    return top * (1 - wy) + bottom * wy


def _cubic_kernel(t, a=-0.5):
    """Keys cubic convolution kernel used by bicubic resampling."""
    t = np.abs(t)
    t2 = t * t
    t3 = t2 * t
    out = np.zeros_like(t)
    mask1 = t <= 1
    mask2 = (t > 1) & (t < 2)
    out[mask1] = (a + 2) * t3[mask1] - (a + 3) * t2[mask1] + 1
    out[mask2] = a * t3[mask2] - 5 * a * t2[mask2] + 8 * a * t[mask2] - 4 * a
    return out


def _bicubic_axis(image, new_length, axis):
    image = np.moveaxis(np.asarray(image, dtype=np.float64), axis, 0)
    length = image.shape[0]
    coords = _resample_axis(length, new_length)
    base = np.floor(coords).astype(int)
    out_shape = (new_length,) + image.shape[1:]
    out = np.zeros(out_shape)
    weight_total = np.zeros(new_length)
    for offset in range(-1, 3):
        idx = np.clip(base + offset, 0, length - 1)
        w = _cubic_kernel(coords - (base + offset))
        weight_total += w
        out += image[idx] * w.reshape((-1,) + (1,) * (image.ndim - 1))
    out /= weight_total.reshape((-1,) + (1,) * (image.ndim - 1))
    return np.moveaxis(out, 0, axis)


def resize_bicubic(image, new_height, new_width):
    """Bicubic resampling to ``(new_height, new_width)`` (Keys kernel)."""
    out = _bicubic_axis(image, new_height, axis=0)
    out = _bicubic_axis(out, new_width, axis=1)
    return np.clip(out, 0.0, 1.0) if np.asarray(image).max() <= 1.0 + 1e-9 else out


def downsample_box(image, factor):
    """Box-filter downsampling by an integer ``factor`` (anti-aliased)."""
    image = np.asarray(image, dtype=np.float64)
    height, width = image.shape[:2]
    new_h, new_w = height // factor, width // factor
    image = image[: new_h * factor, : new_w * factor, ...]
    if image.ndim == 3:
        reshaped = image.reshape(new_h, factor, new_w, factor, image.shape[2])
        return reshaped.mean(axis=(1, 3))
    reshaped = image.reshape(new_h, factor, new_w, factor)
    return reshaped.mean(axis=(1, 3))


def image_num_pixels(image_or_shape):
    """Number of spatial pixels (height × width) of an image or shape tuple."""
    if isinstance(image_or_shape, np.ndarray):
        shape = image_or_shape.shape
    else:
        shape = tuple(image_or_shape)
    return int(shape[0]) * int(shape[1])
