"""Client-side resilience: retry budgets, circuit breakers, hedging, closed loops.

The serving stack up to PR 7 is *server-side* robust — crashed shards are
restarted, in-flight work is re-routed, damaged payloads fail gracefully —
but a client still sees every transient as a hard error: a shard dying
mid-request surfaces as :class:`~repro.serve.sharding.ShardFailedError`, an
admission rejection as :class:`~repro.serve.queueing.ServerOverloadedError`.
This module closes the loop on the client side of ``submit()``:

* :class:`RetryPolicy` — exponential backoff with full jitter, a hard
  attempt cap, and (crucially) a token-bucket :class:`RetryBudget` so
  retries can never amplify an overload into a metastable collapse: each
  first-attempt submission deposits a fraction of a token, each retry
  withdraws a whole one, so pool-wide retry traffic is bounded at
  ``ratio`` of the offered load no matter how many clients retry.
* :class:`CircuitBreaker` — per-shard closed/open/half-open state driven by
  an EWMA of the failure rate.  The sharded server consults the breakers in
  its consistent-routing step (an open shard's traffic spills to the
  least-loaded live shard) and resets them when the watchdog replaces a
  shard, so routing and recovery agree about which shards are trustworthy.
* :class:`ResilientClient` — the facade over ``server.submit()``: callers
  get back the same :class:`~repro.serve.server.PendingResult` surface, but
  transient infra errors are retried under the policy, and (optionally) a
  *hedge* request is launched after a p95 delay when the first attempt is
  slow.  The exactly-once contract is preserved: the caller-visible future
  settles exactly once, the hedge loser is deduplicated, and every retry or
  hedge is a fresh server-side request id (so the server's own exactly-once
  invariants are untouched).
* :class:`ClosedLoopClient` — a think-time client for the scenario harness:
  it keeps at most one request outstanding and backs off exponentially on
  rejection or an open circuit, which is what turns an overload into a
  self-limiting backlog instead of an arrival process that never relents.

Which errors retry?  The classification reuses the scenario runner's
taxonomy (:data:`repro.serve.scenarios.INFRA_ERRORS` /
``GRACEFUL_ERRORS``): *infrastructure* verdicts that a healthy pool could
absolve — :class:`ShardFailedError`, :class:`ServerOverloadedError`,
:class:`TimeoutError` — are retryable; everything the server *decided*
(graceful decode rejections, :class:`DeadlineExceededError`,
:class:`QueueClosedError` at shutdown) is permanent.
"""

from __future__ import annotations

import itertools
import random
import threading
import time

from .queueing import (DeadlineExceededError, QueueClosedError,
                       ServerOverloadedError, deadline_expired,
                       deadline_remaining_s)
from .server import PendingResult
from .sharding import ShardFailedError
from .telemetry import LatencyWindow

__all__ = ["CircuitBreaker", "ClosedLoopClient", "DeadlineExceededError",
           "ResilientClient", "RetryBudget", "RetryPolicy"]

#: Transient infrastructure failures a retry against a healthy pool can fix.
#: ``QueueClosedError`` is deliberately absent: the server is shutting down,
#: so retrying only delays the caller's own shutdown.
RETRYABLE_ERRORS = (ShardFailedError, ServerOverloadedError, TimeoutError)


# --------------------------------------------------------------------------- #
# retry budget (token bucket)
# --------------------------------------------------------------------------- #
class RetryBudget:
    """Token-bucket bound on pool-wide retry traffic.

    Every first-attempt submission deposits ``ratio`` of a token; every
    retry (or hedge) withdraws one whole token.  Sustained retry throughput
    is therefore capped at ``ratio`` of the offered load, with ``burst``
    tokens of headroom for short incidents — the standard defence against
    retry-amplified overload (each layer retrying 3x turns one failure into
    3^N requests; a 10% budget turns it into 1.1x).
    """

    def __init__(self, ratio=0.1, burst=10.0):
        if not ratio >= 0:
            raise ValueError("ratio must be non-negative")
        if not burst >= 1:
            raise ValueError("burst must be at least 1")
        self.ratio = float(ratio)
        self.burst = float(burst)
        self._lock = threading.Lock()
        self._tokens = float(burst)  # guarded-by: _lock
        self._deposited = 0  # guarded-by: _lock
        self._withdrawn = 0  # guarded-by: _lock
        self._denied = 0  # guarded-by: _lock

    def deposit(self, count=1):
        """Credit the bucket for ``count`` first-attempt submissions."""
        with self._lock:
            self._deposited += count
            self._tokens = min(self._tokens + count * self.ratio, self.burst)

    def withdraw(self):
        """Spend one token for a retry; False (and counted) when broke."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self._withdrawn += 1
                return True
            self._denied += 1
            return False

    def snapshot(self):
        with self._lock:
            return {"tokens": self._tokens, "ratio": self.ratio,
                    "burst": self.burst, "deposited": self._deposited,
                    "withdrawn": self._withdrawn, "denied": self._denied}


class RetryPolicy:
    """Exponential backoff with full jitter behind a retry budget.

    ``max_attempts`` counts the first attempt: 3 means at most 2 retries.
    Backoff for retry *k* is drawn uniformly from ``[0, min(base * 2^(k-1),
    cap)]`` ("full jitter" — synchronized retry waves are the other half of
    a retry storm).  ``budget=None`` disables the token bucket: every
    retryable error retries up to the attempt cap, which is exactly the
    configuration the ``retry-storm`` scenario demonstrates collapsing.
    """

    def __init__(self, max_attempts=3, base_backoff_s=0.02, max_backoff_s=0.5,
                 jitter="full", budget=None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not base_backoff_s >= 0:
            raise ValueError("base_backoff_s must be non-negative")
        if max_backoff_s < base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if jitter not in ("full", "none"):
            raise ValueError("jitter must be 'full' or 'none'")
        if budget is not None and not isinstance(budget, RetryBudget):
            raise ValueError("budget must be a RetryBudget or None")
        self.max_attempts = int(max_attempts)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = jitter
        self.budget = budget

    def retryable(self, error):
        """Whether a retry could plausibly absolve this error.

        Mirrors the scenario taxonomy: infra failures retry, server verdicts
        (graceful decode rejections, deadline sheds, shutdown) never do.
        """
        if isinstance(error, (DeadlineExceededError, QueueClosedError)):
            return False
        return isinstance(error, RETRYABLE_ERRORS)

    def backoff_s(self, attempt, rng):
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        cap = min(self.base_backoff_s * (2.0 ** max(attempt - 1, 0)),
                  self.max_backoff_s)
        if self.jitter == "full":
            return rng.uniform(0.0, cap)
        return cap


# --------------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------------- #
class CircuitBreaker:
    """Closed/open/half-open breaker on an EWMA failure rate.

    * **closed** — requests flow; outcomes feed the EWMA.  Once at least
      ``min_samples`` outcomes were seen and the EWMA exceeds
      ``failure_threshold``, the breaker opens.
    * **open** — :meth:`allow` returns False (the sharded router treats the
      shard as if it refused work and spills to the least-loaded live
      shard) until ``open_duration_s`` has elapsed.
    * **half-open** — up to ``half_open_probes`` requests are let through;
      the first success closes the breaker (EWMA reset), the first failure
      re-opens it for another ``open_duration_s``.

    :meth:`trip` forces the breaker open immediately (the reaper calls it
    when a shard process is found dead — no need to wait for the EWMA) and
    :meth:`reset` returns it to closed with a clean history (the watchdog
    calls it after a successful restart, so a freshly respawned shard is
    not punished for its predecessor's crimes).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold=0.5, ewma_alpha=0.3, min_samples=4,
                 open_duration_s=1.0, half_open_probes=1, clock=time.monotonic):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if not open_duration_s > 0:
            raise ValueError("open_duration_s must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")
        self.failure_threshold = float(failure_threshold)
        self.ewma_alpha = float(ewma_alpha)
        self.min_samples = int(min_samples)
        self.open_duration_s = float(open_duration_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED  # guarded-by: _lock
        self._failure_ewma = 0.0  # guarded-by: _lock
        self._samples = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self._probes = 0  # guarded-by: _lock
        self._opened_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def _open_locked(self):
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._opened_total += 1
        self._probes = 0

    def record_success(self):
        with self._lock:
            if self._state == self.HALF_OPEN:
                # probe succeeded: the shard earned a clean slate
                self._state = self.CLOSED
                self._failure_ewma = 0.0
                self._samples = 0
                return
            self._samples += 1
            self._failure_ewma += self.ewma_alpha * (0.0 - self._failure_ewma)

    def record_failure(self):
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._open_locked()  # probe failed: back to open, timer restarts
                return
            self._samples += 1
            self._failure_ewma += self.ewma_alpha * (1.0 - self._failure_ewma)
            if (self._state == self.CLOSED and self._samples >= self.min_samples
                    and self._failure_ewma > self.failure_threshold):
                self._open_locked()

    def trip(self):
        """Force the breaker open now (hard evidence, e.g. a dead process)."""
        with self._lock:
            if self._state != self.OPEN:
                self._open_locked()
            self._failure_ewma = 1.0

    def reset(self):
        """Back to closed with a clean history (e.g. after a shard restart)."""
        with self._lock:
            self._state = self.CLOSED
            self._failure_ewma = 0.0
            self._samples = 0
            self._probes = 0

    def allow(self):
        """Whether a request may be routed through right now."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at < self.open_duration_s:
                    return False
                self._state = self.HALF_OPEN
                self._probes = 0
            if self._probes < self.half_open_probes:
                self._probes += 1
                return True
            return False

    @property
    def state(self):
        with self._lock:
            return self._state

    def snapshot(self):
        with self._lock:
            return {"state": self._state,
                    "failure_ewma": self._failure_ewma,
                    "samples": self._samples,
                    "opened_total": self._opened_total}


# --------------------------------------------------------------------------- #
# the resilient submit() facade
# --------------------------------------------------------------------------- #
class _RequestState:
    """Per-logical-request bookkeeping (all fields guarded by the client's lock)."""

    __slots__ = ("outer", "package", "kind", "deadline_s", "settled",
                 "outstanding", "attempts", "retry_scheduled", "hedged",
                 "last_error", "started_s")

    def __init__(self, outer, package, kind, deadline_s, started_s):
        self.outer = outer
        self.package = package
        self.kind = kind
        self.deadline_s = deadline_s
        self.settled = False
        self.outstanding = 0
        self.attempts = 0
        self.retry_scheduled = False
        self.hedged = False
        self.last_error = None
        self.started_s = started_s


class ResilientClient:
    """Retrying / hedging facade over a server's ``submit()``.

    The returned future has the :class:`PendingResult` surface (``result``,
    ``done``, ``add_done_callback``) and settles **exactly once**: retries
    and hedges happen behind it, each as an independent server-side request.
    A hedge is launched when the first attempt is still unresolved after
    ``hedge_after_ms`` (a number, or ``"p95"`` to track the client's own
    observed p95 latency; ``None`` disables hedging); the slower attempt's
    eventual resolution is absorbed silently, so the caller can never see a
    duplicate.  Hedges draw from the same retry budget as retries — a hedge
    is a speculative retry, and an overloaded pool must shed both alike.

    ``close()`` cancels outstanding backoff/hedge timers; in-flight server
    attempts still settle their futures (the server owns those).
    """

    def __init__(self, server, retry_policy=None, hedge_after_ms=None,
                 min_hedge_samples=8, seed=0, clock=time.monotonic):
        if hedge_after_ms is not None and hedge_after_ms != "p95":
            if not float(hedge_after_ms) > 0:
                raise ValueError("hedge_after_ms must be positive, 'p95' or None")
        self.server = server
        self.policy = retry_policy or RetryPolicy()
        self.hedge_after_ms = hedge_after_ms
        self.min_hedge_samples = int(min_hedge_samples)
        self._clock = clock
        self._lock = threading.Lock()
        self._rng = random.Random(seed)  # guarded-by: _lock
        self._latency = LatencyWindow(256)  # guarded-by: _lock
        self._timers = set()  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._ids = itertools.count()
        self.submitted = 0  # guarded-by: _lock
        self.retries = 0  # guarded-by: _lock
        self.retry_successes = 0  # guarded-by: _lock
        self.hedges = 0  # guarded-by: _lock
        self.hedge_wins = 0  # guarded-by: _lock
        self.budget_denied = 0  # guarded-by: _lock
        self.failures = 0  # guarded-by: _lock
        self.deadline_rejects = 0  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def submit(self, package, kind="reconstruct", deadline_s=None):
        """Submit with retries/hedging; returns the caller-visible future."""
        outer = PendingResult(next(self._ids))
        state = _RequestState(outer, package, kind, deadline_s, self._clock())
        with self._lock:
            self.submitted += 1
            state.outstanding = 1
            state.attempts = 1
        if self.policy.budget is not None:
            self.policy.budget.deposit()
        self._launch(state, attempt=1, is_hedge=False)
        self._maybe_schedule_hedge(state)
        return outer

    def stats(self):
        """Counter snapshot (plain dict, JSON-safe)."""
        with self._lock:
            return {"submitted": self.submitted, "retries": self.retries,
                    "retry_successes": self.retry_successes,
                    "hedges": self.hedges, "hedge_wins": self.hedge_wins,
                    "budget_denied": self.budget_denied,
                    "failures": self.failures,
                    "deadline_rejects": self.deadline_rejects,
                    "latency_p95_ms": self._latency.percentile(95) * 1e3}

    def close(self):
        """Cancel pending backoff/hedge timers (in-flight attempts still settle)."""
        with self._lock:
            self._closed = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()

    # ------------------------------------------------------------------ #
    def _launch(self, state, attempt, is_hedge):
        """One server-side attempt (never raises; failures re-enter the policy)."""
        try:
            pending = self.server.submit(state.package, kind=state.kind,
                                         deadline_s=state.deadline_s)
        except Exception as error:  # noqa: BLE001 - sync rejection enters the retry path
            self._attempt_failed(state, error, attempt, is_hedge)
            return
        pending.add_done_callback(
            lambda inner: self._attempt_done(state, inner, attempt, is_hedge))

    def _attempt_done(self, state, inner, attempt, is_hedge):
        try:
            response = inner.result(timeout=0)
        except Exception as error:  # noqa: BLE001 - classified by the policy
            self._attempt_failed(state, error, attempt, is_hedge)
            return
        with self._lock:
            if state.settled:
                return  # hedge loser: absorbed, the caller saw exactly one win
            state.settled = True
            self._latency.record(self._clock() - state.started_s)
            if is_hedge:
                self.hedge_wins += 1
            elif attempt > 1:
                self.retry_successes += 1
        state.outer._resolve(response)

    def _attempt_failed(self, state, error, attempt, is_hedge):
        settle = False
        with self._lock:
            if state.settled:
                return
            state.outstanding -= 1
            state.last_error = error
            retry = (not self._closed
                     and self.policy.retryable(error)
                     and state.attempts < self.policy.max_attempts
                     and not deadline_expired(state.deadline_s, self._clock))
            if retry and self.policy.budget is not None:
                if not self.policy.budget.withdraw():
                    self.budget_denied += 1
                    retry = False
            if retry:
                state.attempts += 1
                state.retry_scheduled = True
                self.retries += 1
                delay = self.policy.backoff_s(state.attempts - 1, self._rng)
                delay = min(delay, deadline_remaining_s(state.deadline_s,
                                                        self._clock))
                timer = threading.Timer(delay, self._retry_fire,
                                        args=(state, state.attempts))
                timer.daemon = True
                self._timers.add(timer)
            elif state.outstanding == 0 and not state.retry_scheduled:
                state.settled = True
                settle = True
                self.failures += 1
                if isinstance(error, DeadlineExceededError):
                    self.deadline_rejects += 1
        if settle:
            state.outer._reject(error)
            return
        if retry:
            timer.start()

    def _retry_fire(self, state, attempt):
        with self._lock:
            self._timers.discard(threading.current_thread())
            state.retry_scheduled = False
            if state.settled or self._closed:
                return
            state.outstanding += 1
        self._launch(state, attempt=attempt, is_hedge=False)

    # ------------------------------------------------------------------ #
    def _hedge_delay_s(self):
        if self.hedge_after_ms is None:
            return None
        if self.hedge_after_ms == "p95":
            with self._lock:
                if len(self._latency) < self.min_hedge_samples:
                    return None  # not enough signal to hedge sensibly yet
                return max(self._latency.percentile(95), 1e-3)
        return float(self.hedge_after_ms) * 1e-3

    def _maybe_schedule_hedge(self, state):
        delay = self._hedge_delay_s()
        if delay is None:
            return
        timer = threading.Timer(delay, self._hedge_fire, args=(state,))
        timer.daemon = True
        with self._lock:
            if self._closed:
                return
            self._timers.add(timer)
        timer.start()

    def _hedge_fire(self, state):
        with self._lock:
            self._timers.discard(threading.current_thread())
            if (state.settled or state.hedged or self._closed
                    or deadline_expired(state.deadline_s, self._clock)):
                return
            if self.policy.budget is not None and not self.policy.budget.withdraw():
                self.budget_denied += 1
                return  # an overloaded pool must not pay for speculation
            state.hedged = True
            state.outstanding += 1
            self.hedges += 1
        self._launch(state, attempt=state.attempts, is_hedge=True)


# --------------------------------------------------------------------------- #
# closed-loop clients
# --------------------------------------------------------------------------- #
class ClosedLoopClient(threading.Thread):
    """A think-time client: one outstanding request, backoff on rejection.

    Open-loop replay (the PR-7 scenario runner) keeps offering load no
    matter what the server says — realistic for sensors, but it cannot
    model the *recovering* half of a metastable failure, where clients
    slowing down is what lets the backlog drain.  A closed-loop client
    calls ``do_request`` (a callable returning True on acceptance, False on
    rejection / open circuit), sleeps ``think_time_s`` between accepted
    requests, and on rejection backs off exponentially from
    ``backoff_base_s`` up to ``backoff_cap_s`` before trying again.

    Counters (``requests``, ``accepted``, ``backoffs``) are written only by
    the client's own thread and read after :meth:`threading.Thread.join`,
    so they need no lock.
    """

    def __init__(self, do_request, think_time_s=0.05, backoff_base_s=0.05,
                 backoff_cap_s=1.0, stop_event=None, name="closed-loop-client"):
        super().__init__(name=name, daemon=True)
        if not think_time_s >= 0:
            raise ValueError("think_time_s must be non-negative")
        if not backoff_base_s > 0:
            raise ValueError("backoff_base_s must be positive")
        if backoff_cap_s < backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        self.do_request = do_request
        self.think_time_s = float(think_time_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.stop_event = stop_event or threading.Event()
        self.requests = 0
        self.accepted = 0
        self.backoffs = 0

    def run(self):
        backoff_s = self.backoff_base_s
        while not self.stop_event.wait(self.think_time_s):
            self.requests += 1
            try:
                accepted = self.do_request(self)
            except Exception:  # noqa: BLE001 - a client bug must not kill the loop; treat as rejection
                accepted = False
            if accepted:
                self.accepted += 1
                backoff_s = self.backoff_base_s
            else:
                self.backoffs += 1
                if self.stop_event.wait(backoff_s):
                    return
                backoff_s = min(backoff_s * 2.0, self.backoff_cap_s)
