"""Shared-memory response ring for the process-sharded server.

The PR-3 queue path moves every finished image across the process boundary
as ``image.tobytes()`` inside a pickled queue message: the shard copies the
pixels once into the bytes object, the queue's feeder thread copies them
again while pickling, the pipe copies them through the kernel in 64 KiB
chunks, and the parent copies them a fourth time out of the unpickled
message.  At serving scale those copies — not the reconstruction compute —
become the marginal cost of every response (the 5GC²ache observation:
memory movement dominates once the kernel is fast).

:class:`ShmRing` removes the queue from the pixel path.  The parent creates
one ``multiprocessing.shared_memory`` segment sliced into fixed-size slots;
a shard *leases* a slot, writes the reconstructed pixels straight into it,
and sends only a tiny ``(slot, seq, shape, dtype)`` descriptor over the
queue.  The parent reads the pixels out of the slot and *acks* the lease so
the slot returns to the pool.  Two shared arrays make reclamation safe:

* ``owner[slot]`` — which shard holds the lease (0 = free).  Claims scan for
  a free slot under a cross-process lock; releases just clear the owner.
* ``seq[slot]`` — a per-slot generation counter bumped on every claim.  An
  ack must present the ``(owner, seq)`` pair it was issued; a stale message
  from a crashed-and-replaced shard can therefore never free (or corrupt) a
  slot that has already been reclaimed and re-leased.

When the ring is full, a response outgrows ``slot_bytes``, or shared memory
is unavailable on the host (tiny ``/dev/shm`` in a container, missing
``_posixshmem``), shards fall back to the PR-3 queue path per response —
the ring is a fast path, never a requirement.
"""

from __future__ import annotations

import multiprocessing

import numpy as np

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stdlib module missing on exotic builds
    _shared_memory = None

__all__ = ["ShmRing", "shm_available"]

#: Slot boundaries are rounded up to this many bytes so every slot offset is
#: aligned for any numpy dtype (the zero-copy view path checks alignment).
_SLOT_ALIGN = 64


def _align_up(value, align=_SLOT_ALIGN):
    return ((int(value) + align - 1) // align) * align


def _attach_segment(name):
    """Attach to an existing segment created by the parent of this process tree.

    Shard processes share the parent's resource-tracker process (all
    multiprocessing start methods hand the tracker down), so a shard's attach
    at most re-registers the same name into the tracker's set — it must NOT
    unregister, which would delete the *parent's* registration and leak the
    segment if the parent later crashes before unlinking.
    """
    return _shared_memory.SharedMemory(name=name)


def shm_available():
    """True when the host can actually create a shared-memory segment."""
    if _shared_memory is None:
        return False
    try:
        probe = _shared_memory.SharedMemory(create=True, size=_SLOT_ALIGN)
    except Exception:  # noqa: BLE001 - no /dev/shm, permissions, quota, ...
        return False
    probe.close()
    try:
        probe.unlink()
    except Exception:  # noqa: BLE001 - already gone is fine
        pass
    return True


class ShmRing:
    """A ring of fixed-size shared-memory slots with lease/ack reclamation.

    The parent constructs the ring and ships :meth:`descriptor` to each shard
    process (the arrays and lock travel by multiprocessing inheritance, the
    segment by name); shards rebuild their view with :meth:`attach`.

    Roles are positional, not enforced: shards call :meth:`claim` /
    :meth:`write`, the parent calls :meth:`read` / :meth:`release` /
    :meth:`reclaim`.  All bookkeeping lives in the shared ``owner``/``seq``
    arrays, so either side crashing never wedges the other — the survivor
    can always reclaim by owner index.
    """

    def __init__(self, slot_bytes, num_slots, context=None):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if int(slot_bytes) < 1:
            raise ValueError("slot_bytes must be positive")
        if int(num_slots) < 1:
            raise ValueError("num_slots must be positive")
        context = context if context is not None else multiprocessing
        self.slot_bytes = _align_up(slot_bytes)
        self.num_slots = int(num_slots)
        self._segment = _shared_memory.SharedMemory(
            create=True, size=self.slot_bytes * self.num_slots)
        self.name = self._segment.name
        self._claim_lock = context.Lock()
        self._owner = context.RawArray("q", self.num_slots)  # guarded-by: _claim_lock — 0 free, else owner+1
        self._seq = context.RawArray("Q", self.num_slots)  # guarded-by: _claim_lock
        self._created = True

    # ------------------------------------------------------------------ #
    # cross-process plumbing
    # ------------------------------------------------------------------ #
    def descriptor(self):
        """Everything a shard needs to rebuild its view of the ring.

        Must be passed as a ``Process`` argument (the lock and arrays are
        shareable only through multiprocessing inheritance).
        """
        return (self.name, self.slot_bytes, self.num_slots,
                self._owner, self._seq, self._claim_lock)  # lint: allow RP101 - hands the shared arrays to the child; no element access

    @classmethod
    def attach(cls, descriptor):
        """Shard-side constructor from a parent :meth:`descriptor`."""
        name, slot_bytes, num_slots, owner, seq, claim_lock = descriptor
        ring = cls.__new__(cls)
        ring.name = name
        ring.slot_bytes = int(slot_bytes)
        ring.num_slots = int(num_slots)
        ring._segment = _attach_segment(name)
        ring._owner = owner
        ring._seq = seq
        ring._claim_lock = claim_lock
        ring._created = False
        return ring

    # ------------------------------------------------------------------ #
    # shard side: lease + write
    # ------------------------------------------------------------------ #
    def claim(self, owner_index):
        """Lease one free slot for ``owner_index``.

        Returns ``(slot, seq)`` — both must accompany the response message so
        the parent's ack can prove it refers to *this* lease — or ``None``
        when every slot is leased (caller falls back to the queue path).
        """
        owner_tag = int(owner_index) + 1
        with self._claim_lock:
            for slot in range(self.num_slots):
                if self._owner[slot] == 0:
                    self._owner[slot] = owner_tag
                    self._seq[slot] = self._seq[slot] + 1
                    return slot, self._seq[slot]
        return None

    def write(self, slot, array):
        """Copy ``array`` (C-contiguous view taken) into ``slot``; returns nbytes.

        This is the *single* producer-side copy of the zero-copy path — it
        replaces ``tobytes()`` + queue pickling + pipe chunking.
        """
        array = np.ascontiguousarray(array)
        nbytes = array.nbytes
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"response needs {nbytes} bytes but ring slots hold {self.slot_bytes}")
        start = slot * self.slot_bytes
        destination = np.frombuffer(self._segment.buf, dtype=np.uint8,
                                    count=nbytes, offset=start)
        destination[:] = array.reshape(-1).view(np.uint8)
        return nbytes

    # ------------------------------------------------------------------ #
    # parent side: read + ack
    # ------------------------------------------------------------------ #
    def read(self, slot, nbytes):
        """Memoryview over the slot's first ``nbytes`` (no copy).

        The caller must ``release()`` the view before the ring is closed.
        """
        if not 0 <= int(slot) < self.num_slots:
            raise ValueError(f"no slot {slot}")
        if not 0 <= int(nbytes) <= self.slot_bytes:
            raise ValueError(f"slot holds at most {self.slot_bytes} bytes")
        start = int(slot) * self.slot_bytes
        return self._segment.buf[start:start + int(nbytes)]

    def release(self, slot, seq, owner_index):
        """Ack one response: free the slot iff the lease matches.

        A mismatched ``(owner, seq)`` pair means the lease was already
        reclaimed (its shard crashed) and possibly re-issued — freeing it
        now would hand one slot to two writers, so the stale ack is refused.
        Returns whether the slot was freed.
        """
        if not 0 <= int(slot) < self.num_slots:
            return False
        with self._claim_lock:
            if (self._owner[slot] == int(owner_index) + 1
                    and self._seq[slot] == int(seq)):
                self._owner[slot] = 0
                return True
        return False

    def reclaim(self, owner_index):
        """Free every slot leased by ``owner_index`` (a crashed shard).

        Safe to call while that shard's final responses are still queued: the
        seq bump on the next claim makes their acks stale (see
        :meth:`release`), so a reclaimed slot can never be double-freed.
        Returns the number of slots freed.
        """
        owner_tag = int(owner_index) + 1
        freed = 0
        with self._claim_lock:
            for slot in range(self.num_slots):
                if self._owner[slot] == owner_tag:
                    self._owner[slot] = 0
                    self._seq[slot] = self._seq[slot] + 1
                    freed += 1
        return freed

    # ------------------------------------------------------------------ #
    # telemetry + lifecycle
    # ------------------------------------------------------------------ #
    def leased_slots(self):
        with self._claim_lock:
            return sum(1 for owner in self._owner if owner)

    def stats(self):
        """Plain-dict view for the sharded server's telemetry snapshot."""
        return {
            "enabled": True,
            "num_slots": self.num_slots,
            "slot_bytes": self.slot_bytes,
            "leased": self.leased_slots(),
        }

    def close(self):
        """Detach; the creating side also destroys the segment."""
        try:
            self._segment.close()
        except BufferError:  # an un-released read() view still alive
            return
        if self._created:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass
