"""Dynamic micro-batcher: coalesce compatible requests under a latency bound.

The transformer reconstruction gets cheaper per image as the batch grows
(fixed per-call costs amortise and the fused engine's chunks stay full), but
holding requests back adds latency.  The batcher resolves the tension the
standard way: take the oldest request, then wait at most ``max_wait_ms`` for
more requests with the *same batch key* (mask bytes + image geometry + kind)
to arrive, capped at ``max_batch_size``.  An idle server therefore serves
singles at minimum latency, and a busy one converges to full batches — the
behaviour the batch-size histogram in telemetry makes visible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass
class BatchPolicy:
    """Tunables for the dynamic micro-batcher."""

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    poll_interval_ms: float = 0.5

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")


class MicroBatcher:
    """Forms batches of compatible requests from an :class:`AdmissionQueue`."""

    def __init__(self, queue, policy=None, key_fn=None):
        self.queue = queue
        self.policy = policy or BatchPolicy()
        self.key_fn = key_fn or (lambda request: request.batch_key)

    def next_batch(self, timeout=0.1):
        """Return the next batch (list of requests) or ``None`` if idle.

        The first request anchors the batch key; compatible requests already
        queued are taken immediately, and if the batch is still short the
        batcher keeps polling until ``max_wait_ms`` has passed since the
        anchor was taken.  Incompatible requests are left untouched in their
        original order.
        """
        first = self.queue.pop(timeout=timeout)
        if first is None:
            return None
        policy = self.policy
        key = self.key_fn(first)
        batch = [first]
        want = policy.max_batch_size - 1
        if want <= 0:
            return batch
        batch.extend(self.queue.take_matching(
            lambda request: self.key_fn(request) == key, want))
        deadline = time.perf_counter() + policy.max_wait_ms * 1e-3
        while len(batch) < policy.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            if self.queue.depth == 0:
                self.queue.wait_nonempty(min(remaining, policy.poll_interval_ms * 1e-3))
            taken = self.queue.take_matching(
                lambda request: self.key_fn(request) == key,
                policy.max_batch_size - len(batch))
            batch.extend(taken)
            if not taken:
                # only incompatible requests queued: sleep a poll interval so
                # the wait window does not degenerate into a lock-churning spin
                time.sleep(min(max(remaining, 0.0), policy.poll_interval_ms * 1e-3))
        return batch
