"""Dynamic micro-batcher: coalesce compatible requests under a latency bound.

The transformer reconstruction gets cheaper per image as the batch grows
(fixed per-call costs amortise and the fused engine's chunks stay full), but
holding requests back adds latency.  The batcher resolves the tension the
standard way: take the oldest request, then wait at most ``max_wait_ms`` for
more requests with the *same batch key* (mask bytes + image geometry + kind)
to arrive, capped at ``max_batch_size``.  An idle server therefore serves
singles at minimum latency, and a busy one converges to full batches — the
behaviour the batch-size histogram in telemetry makes visible.

``BatchPolicy(mode="adaptive")`` goes one step further and tunes the wait
online: the batcher keeps an EWMA of the observed request inter-arrival gap
and waits only as long as the *expected* time for the batch to fill.  When
arrivals are sparser than the wait budget the expected yield of waiting is
zero, so singles go out instantly; under load the expected fill time shrinks
below the budget and batches converge to ``max_batch_size`` without anyone
re-tuning ``max_wait_ms`` per deployment.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass
class BatchPolicy:
    """Tunables for the dynamic micro-batcher.

    ``max_wait_ms`` is the wait budget in ``"fixed"`` mode and the ceiling in
    ``"adaptive"`` mode; ``min_wait_ms`` is the adaptive floor (0 = serve
    singles instantly when idle); ``ewma_alpha`` is the weight of the newest
    inter-arrival observation.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    poll_interval_ms: float = 0.5
    mode: str = "fixed"
    min_wait_ms: float = 0.0
    ewma_alpha: float = 0.2

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.poll_interval_ms <= 0:
            raise ValueError("poll_interval_ms must be positive")
        if self.mode not in ("fixed", "adaptive"):
            raise ValueError("mode must be 'fixed' or 'adaptive'")
        if not 0.0 <= self.min_wait_ms <= self.max_wait_ms:
            raise ValueError("min_wait_ms must be in [0, max_wait_ms]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")


class MicroBatcher:
    """Forms batches of compatible requests from an :class:`AdmissionQueue`."""

    def __init__(self, queue, policy=None, key_fn=None, on_expired=None):
        self.queue = queue
        self.policy = policy or BatchPolicy()
        self.key_fn = key_fn or (lambda request: request.batch_key)
        # deadline shedding: when set, requests whose absolute monotonic
        # deadline has passed are handed to ``on_expired(request)`` instead of
        # being batched (the server rejects their futures and counts the
        # shed).  ``None`` keeps the bare batcher deadline-oblivious.
        self.on_expired = on_expired
        # adaptive state: EWMA of the gap between consecutive submissions.
        # One batcher is shared by every worker thread, so the read-modify-
        # write is locked (it is far off the hot path: a few float ops per
        # request)
        self._ewma_lock = threading.Lock()
        self._ewma_gap_s = None  # guarded-by: _ewma_lock
        self._last_arrival_s = None  # guarded-by: _ewma_lock

    # ------------------------------------------------------------------ #
    # adaptive wait
    # ------------------------------------------------------------------ #
    def observe_arrival(self, request):
        """Fold one request's submission time into the inter-arrival EWMA."""
        submitted = getattr(request, "submitted_at", None)
        if submitted is None:
            return
        with self._ewma_lock:
            if self._last_arrival_s is not None and submitted > self._last_arrival_s:
                gap = submitted - self._last_arrival_s
                alpha = self.policy.ewma_alpha
                if self._ewma_gap_s is None:
                    self._ewma_gap_s = gap
                else:
                    self._ewma_gap_s = alpha * gap + (1.0 - alpha) * self._ewma_gap_s
            if self._last_arrival_s is None or submitted > self._last_arrival_s:
                self._last_arrival_s = submitted

    @property
    def ewma_gap_s(self):
        """Current inter-arrival gap estimate (``None`` until two arrivals seen)."""
        with self._ewma_lock:
            return self._ewma_gap_s

    def effective_wait_s(self, have):
        """Wait budget (seconds) for a batch currently holding ``have`` requests.

        Fixed mode always returns ``max_wait_ms``.  Adaptive mode returns the
        expected time for the remaining ``max_batch_size - have`` compatible
        requests to arrive (``gap * want``), clamped to
        ``[min_wait_ms, max_wait_ms]`` — except that when even *one* more
        arrival is unlikely inside the budget (``gap > max_wait_ms``) waiting
        is pure latency, so the floor ``min_wait_ms`` is returned instead.
        """
        policy = self.policy
        ceiling = policy.max_wait_ms * 1e-3
        gap = self.ewma_gap_s
        if policy.mode != "adaptive" or gap is None:
            return ceiling
        floor = policy.min_wait_ms * 1e-3
        want = max(policy.max_batch_size - have, 0)
        if want == 0:
            return 0.0
        if gap > ceiling:
            return floor
        return min(max(gap * want, floor), ceiling)

    # ------------------------------------------------------------------ #
    def _expired(self, request):
        """Whether a request's absolute deadline passed (only when shedding)."""
        if self.on_expired is None:
            return False
        deadline_s = getattr(request, "deadline_s", None)
        return deadline_s is not None and time.monotonic() >= deadline_s

    def _shed_expired(self, requests):
        """Hand expired requests to ``on_expired``; return the live remainder."""
        live = []
        for request in requests:
            if self._expired(request):
                self.on_expired(request)
            else:
                live.append(request)
        return live

    def next_batch(self, timeout=0.1):
        """Return the next batch (list of requests) or ``None`` if idle.

        The first request anchors both the batch key and the wait deadline;
        compatible requests already queued are taken immediately, and if the
        batch is still short the batcher keeps polling until the wait budget
        has passed since the anchor was taken.  Every in-loop wait (the
        ``wait_nonempty`` block and the incompatible-traffic sleep) is clamped
        to the anchor deadline, so a batch is never held past its budget.
        Incompatible requests are left untouched in their original order.

        When the batcher was built with ``on_expired``, requests whose own
        absolute deadline already passed are shed here — before a worker
        spends any decode time on them — and never join a batch.
        """
        first = self.queue.pop(timeout=timeout)
        while first is not None and self._expired(first):
            self.on_expired(first)
            first = self.queue.pop(timeout=0.0)
        if first is None:
            return None
        anchor_s = time.perf_counter()
        policy = self.policy
        key = self.key_fn(first)
        batch = [first]
        self.observe_arrival(first)
        want = policy.max_batch_size - 1
        if want <= 0:
            return batch
        taken = self._shed_expired(self.queue.take_matching(
            lambda request: self.key_fn(request) == key, want))
        batch.extend(taken)
        for request in taken:
            self.observe_arrival(request)
        poll_s = policy.poll_interval_ms * 1e-3
        deadline = anchor_s + self.effective_wait_s(len(batch))
        while len(batch) < policy.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            if self.queue.depth == 0:
                self.queue.wait_nonempty(min(remaining, poll_s))
            taken = self._shed_expired(self.queue.take_matching(
                lambda request: self.key_fn(request) == key,
                policy.max_batch_size - len(batch)))
            batch.extend(taken)
            for request in taken:
                self.observe_arrival(request)
            if not taken:
                # only incompatible requests queued: sleep a poll interval so
                # the wait window does not degenerate into a lock-churning
                # spin — recomputed against the deadline so the sleep cannot
                # overshoot the budget (wait_nonempty above already consumed
                # part of it)
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                time.sleep(min(remaining, poll_s))
        return batch
