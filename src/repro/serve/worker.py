"""Serving workers: batch execution with per-worker artefact caches.

Each worker thread owns three LRU caches so the batch hot path never touches
shared mutable state:

* ``plans`` — :class:`repro.core.SqueezePlan` gather/scatter indices keyed on
  the package's mask bytes (the unsqueeze step);
* ``pixel_plans`` — :class:`repro.core.PixelIndexPlan` scatter indices for the
  fused batched reconstruction (passed into ``reconstruct_batch`` as its
  ``plan_getter``);
* ``codecs`` — base-codec instances keyed by codec name (a codec constructor
  bakes the quality-scaled quantisation tables and Huffman LUT views, so this
  is the per-worker entropy-table cache).

The reconstruction model itself is shared read-only across workers (inference
only touches immutable weights plus per-call buffers).
"""

from __future__ import annotations

import threading
import time

from ..core.erase_squeeze import SqueezePlan
from ..core.masks import deserialize_mask
from ..core.reconstruction import PixelIndexPlan, reconstruct_batch
from .cache import LRUCache

__all__ = ["ServeWorker"]


class ServeWorker(threading.Thread):
    """One serving thread: pulls batches from the batcher, resolves futures."""

    def __init__(self, server, index, plan_cache_size=32, codec_cache_size=8):
        super().__init__(name=f"serve-worker-{index}", daemon=True)
        self._server = server
        self.index = index
        self.plans = LRUCache(plan_cache_size, name="squeeze_plans")
        self.pixel_plans = LRUCache(plan_cache_size, name="pixel_plans")
        self.codecs = LRUCache(codec_cache_size, name="codecs")
        self.batches_processed = 0
        self.images_processed = 0

    # ------------------------------------------------------------------ #
    # cached artefact lookups
    # ------------------------------------------------------------------ #
    def _squeeze_plan(self, mask_bytes, mask, subpatch_size, patch_size):
        plan = self.plans.get(
            (mask_bytes, int(subpatch_size)),
            lambda: SqueezePlan(mask, subpatch_size),
        )
        return plan.require_patch_size(patch_size)

    def _pixel_plan_getter(self):
        """``plan_getter`` hook for :func:`reconstruct_batch` using this worker's LRU."""
        def getter(flat_mask, padded_shape, patch_size, subpatch_size):
            key = (flat_mask.tobytes(), tuple(padded_shape),
                   int(patch_size), int(subpatch_size))
            return self.pixel_plans.get(
                key,
                lambda: PixelIndexPlan(flat_mask, padded_shape, patch_size, subpatch_size),
            )
        return getter

    def _codec(self, codec_name):
        return self.codecs.get(codec_name, lambda: self._server.codec_for(codec_name))

    # ------------------------------------------------------------------ #
    def _unsqueeze(self, package, mask):
        """Per-package decode + unsqueeze, injecting worker-local caches
        into the decoder's single implementation."""
        cfg = self._server.config
        return self._server.decoder._unsqueeze_package(
            package, mask,
            codec=self._codec(package.codec_payload.codec_name),
            plan=self._squeeze_plan(package.mask_bytes, mask,
                                    cfg.subpatch_size, cfg.patch_size),
        )

    def _process_batch(self, batch):
        server = self._server
        # last-chance deadline shed: the batch may have waited in the batcher
        # window; drop anything already expired before paying for the decode
        batch = [request for request in batch if not server.shed_if_expired(request)]
        if not batch:
            return
        started = time.perf_counter()
        cfg = server.config
        mask = deserialize_mask(batch[0].package.mask_bytes)
        plan = self._squeeze_plan(batch[0].package.mask_bytes, mask,
                                  cfg.subpatch_size, cfg.patch_size)
        codec = self._codec(batch[0].package.codec_payload.codec_name)
        # the batched unsqueeze entropy-decodes per request (one corrupt
        # payload fails only its own future; healthy batch-mates keep going)
        # but runs a single fused IDCT across the whole micro-batch
        decoded = server.decoder._unsqueeze_many(
            [request.package for request in batch], [mask] * len(batch),
            codec=codec, plans=[plan] * len(batch), collect_errors=True)
        survivors = []
        filled = []
        for request, result in zip(batch, decoded):
            if isinstance(result, Exception):
                server.stats.record_failure(1)
                request.reject(result)
            else:
                survivors.append(request)
                filled.append(result)
        if not survivors:
            return
        if survivors[0].kind == "reconstruct":
            outputs = reconstruct_batch(
                server.model, filled, mask,
                chunk=server.chunk, plan_getter=self._pixel_plan_getter(),
            )
        else:
            outputs = filled
        finished = time.perf_counter()
        queue_waits = [started - request.submitted_at for request in survivors]
        latencies = [finished - request.submitted_at for request in survivors]
        for request, image in zip(survivors, outputs):
            if request.cache_key is not None:
                server.result_cache.put(request.cache_key, image)
            request.resolve(image, batch_size=len(survivors), worker=self.name,
                            latency=finished - request.submitted_at)
        server.stats.record_batch(len(survivors), queue_waits, latencies,
                                  finished - started)
        self.batches_processed += 1
        self.images_processed += len(survivors)
        server.stats.update_cache_stats(
            self.name, [self.plans.stats(), self.pixel_plans.stats(), self.codecs.stats()])

    # ------------------------------------------------------------------ #
    def run(self):
        server = self._server
        while True:
            batch = server.batcher.next_batch(timeout=0.05)
            if batch is None:
                if server.stopping:
                    return
                continue
            try:
                self._process_batch(batch)
            except Exception as error:  # noqa: BLE001 - resolve futures, keep serving
                server.stats.record_failure(len(batch))
                for request in batch:
                    request.reject(error)
