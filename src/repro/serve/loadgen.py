"""Poisson load generator: replay fleet arrivals against a live server.

:mod:`repro.edge.fleet` models a camera fleet's shared uplink as an M/D/1
queue and *predicts* congestion analytically.  This module closes the loop
the ROADMAP asks for: it drives an actual :class:`CompressionServer` with the
same Poisson arrival process (the superposition of every node's arrivals is
itself Poisson with the summed rate) and reports the *observed* queueing
behaviour next to the M/D/1 prediction computed from the measured service
time — so the congestion model is validated against a real serving loop
instead of asserted.

Replays are time-compressed with ``speedup`` (a fleet offering one frame per
camera per minute would otherwise take minutes to exercise); arrival gaps
scale down, the rate in the report scales up correspondingly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .queueing import ServerOverloadedError

__all__ = ["LoadReport", "PoissonLoadGenerator"]


@dataclass
class LoadReport:
    """Observed serving behaviour under one Poisson replay."""

    num_requests: int
    completed: int
    rejected: int
    offered_rps: float
    achieved_rps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    observed_wait_mean_ms: float
    service_time_per_image_ms: float
    utilisation: float
    predicted_wait_md1_ms: float
    saturated: bool
    mean_batch_size: float
    batch_size_histogram: dict = field(default_factory=dict)

    def headline(self):
        """One-line summary for examples and the CLI."""
        state = "SATURATED" if self.saturated else f"{self.utilisation * 100:.0f}% utilised"
        return (f"{self.completed}/{self.num_requests} served at {self.achieved_rps:.1f} rps, "
                f"{state}, p50 {self.latency_p50_ms:.1f} ms, p99 {self.latency_p99_ms:.1f} ms, "
                f"wait {self.observed_wait_mean_ms:.1f} ms (M/D/1 predicts "
                f"{self.predicted_wait_md1_ms:.1f} ms), mean batch {self.mean_batch_size:.1f}")


class PoissonLoadGenerator:
    """Submits packages to a server following a Poisson arrival process."""

    def __init__(self, server, rng=None):
        self.server = server
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    @staticmethod
    def fleet_arrival_rate(fleet):
        """Merged Poisson frame rate (requests/s) of a :class:`FleetSimulation`."""
        return sum(node.images_per_hour for node in fleet.nodes) / 3600.0

    def replay_fleet(self, fleet, packages, num_requests, speedup=1.0,
                     kind="reconstruct", timeout=120.0):
        """Replay a fleet's merged arrival process, time-compressed by ``speedup``."""
        rate = self.fleet_arrival_rate(fleet) * speedup
        if rate <= 0:
            raise ValueError("fleet offers no load (zero frame rate)")
        return self.run(packages, rate, num_requests, kind=kind, timeout=timeout)

    # ------------------------------------------------------------------ #
    def run(self, packages, arrival_rate_rps, num_requests, kind="reconstruct",
            timeout=120.0, warmup=True):
        """Drive ``num_requests`` Poisson arrivals at ``arrival_rate_rps``.

        ``packages`` are cycled round-robin.  Returns a :class:`LoadReport`
        comparing the observed mean wait with the M/D/1 prediction at the
        measured per-image service time.
        """
        packages = list(packages)
        if not packages:
            raise ValueError("no packages to replay")
        if arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if num_requests < 1:
            raise ValueError("num_requests must be at least 1")
        if warmup:
            # populate worker caches and the fused engine outside the clock
            self.server.submit(packages[0], kind=kind).result(timeout=timeout)
        before = self.server.stats.snapshot()
        gaps = self.rng.exponential(1.0 / arrival_rate_rps, size=num_requests)
        gaps[0] = 0.0
        pendings = []
        rejected = 0
        started = time.perf_counter()
        for index in range(num_requests):
            if gaps[index] > 0:
                time.sleep(gaps[index])
            try:
                pendings.append(
                    self.server.submit(packages[index % len(packages)], kind=kind))
            except ServerOverloadedError:
                rejected += 1
        responses = [pending.result(timeout=timeout) for pending in pendings]
        elapsed = max(time.perf_counter() - started, 1e-9)

        latencies = np.asarray([response.latency_s for response in responses]) \
            if responses else np.zeros(1)
        batch_sizes = [response.batch_size for response in responses]
        mean_batch = float(np.mean(batch_sizes)) if batch_sizes else 0.0
        snapshot = self.server.stats.snapshot()
        # mean service time *per image* during this run (delta of the
        # cumulative counters, so earlier traffic does not skew the estimate)
        delta_service = snapshot["service_seconds_total"] - before["service_seconds_total"]
        delta_completed = max(snapshot["completed"] - before["completed"], 1)
        delta_wait = (snapshot["queue_wait_seconds_total"]
                      - before["queue_wait_seconds_total"])
        per_image_service_s = delta_service / delta_completed
        utilisation = arrival_rate_rps * per_image_service_s
        saturated = utilisation >= 1.0
        if saturated:
            predicted_wait_ms = float("inf")
        else:
            predicted_wait_ms = 1e3 * utilisation * per_image_service_s / (
                2.0 * (1.0 - utilisation))
        observed_wait_ms = 1e3 * delta_wait / delta_completed
        return LoadReport(
            num_requests=num_requests,
            completed=len(responses),
            rejected=rejected,
            offered_rps=arrival_rate_rps,
            achieved_rps=len(responses) / elapsed,
            latency_p50_ms=float(np.percentile(latencies, 50)) * 1e3,
            latency_p99_ms=float(np.percentile(latencies, 99)) * 1e3,
            latency_mean_ms=float(np.mean(latencies)) * 1e3,
            observed_wait_mean_ms=observed_wait_ms,
            service_time_per_image_ms=per_image_service_s * 1e3,
            utilisation=float(utilisation),
            predicted_wait_md1_ms=predicted_wait_ms,
            saturated=saturated,
            mean_batch_size=mean_batch,
            batch_size_histogram=snapshot["batch_size_histogram"],
        )
