"""Poisson load generator: replay fleet arrivals against a live server.

:mod:`repro.edge.fleet` models a camera fleet's shared uplink as an M/D/c
queue and *predicts* congestion analytically.  This module closes the loop
the ROADMAP asks for: it drives an actual server (threaded
:class:`~repro.serve.server.CompressionServer` or process-sharded
:class:`~repro.serve.sharding.ShardedCompressionServer`) with the same
Poisson arrival process (the superposition of every node's arrivals is
itself Poisson with the summed rate) and reports the *observed* queueing
behaviour next to the M/D/c prediction computed from the measured service
time — so the congestion model is validated against a real serving loop
instead of asserted.  The number of parallel servers ``c`` defaults to the
target's ``parallelism`` attribute (1 for the threaded server, the shard
count for the sharded one), at which point the M/D/c wait collapses to the
familiar M/D/1 formula for ``c = 1``.

Replays are time-compressed with ``speedup`` (a fleet offering one frame per
camera per minute would otherwise take minutes to exercise); arrival gaps
scale down, the rate in the report scales up correspondingly.

Failures are *collected*, not raised: a request whose future errors (a
corrupt payload, a shard restart, an admission timeout surfacing late) adds
to ``LoadReport.failed`` and the remaining latencies still produce a report —
one poisoned frame must not discard an entire measurement run.  When nothing
completes at all the latency fields are ``NaN`` (not a fake 0.0 ms), and a
run whose every request was rejected reports ``saturated=True``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..edge.fleet import md_c_wait_s
from .queueing import ServerOverloadedError
from .telemetry import summarise_latency_ms

__all__ = ["LoadReport", "PoissonLoadGenerator"]


@dataclass
class LoadReport:
    """Observed serving behaviour under one Poisson replay."""

    num_requests: int
    completed: int
    rejected: int
    offered_rps: float
    achieved_rps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    observed_wait_mean_ms: float
    service_time_per_image_ms: float
    utilisation: float
    predicted_wait_md1_ms: float
    saturated: bool
    mean_batch_size: float
    batch_size_histogram: dict = field(default_factory=dict)
    failed: int = 0
    servers: int = 1
    predicted_wait_mdc_ms: float = float("nan")

    def headline(self):
        """One-line summary for examples and the CLI."""
        state = "SATURATED" if self.saturated else f"{self.utilisation * 100:.0f}% utilised"
        return (f"{self.completed}/{self.num_requests} served at {self.achieved_rps:.1f} rps, "
                f"{state}, p50 {self.latency_p50_ms:.1f} ms, p99 {self.latency_p99_ms:.1f} ms, "
                f"wait {self.observed_wait_mean_ms:.1f} ms (M/D/{self.servers} predicts "
                f"{self.predicted_wait_mdc_ms:.1f} ms), mean batch {self.mean_batch_size:.1f}")


class PoissonLoadGenerator:
    """Submits packages to a server following a Poisson arrival process."""

    def __init__(self, server, rng=None):
        self.server = server
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------ #
    @staticmethod
    def fleet_arrival_rate(fleet):
        """Merged Poisson frame rate (requests/s) of a :class:`FleetSimulation`."""
        return sum(node.images_per_hour for node in fleet.nodes) / 3600.0

    def replay_fleet(self, fleet, packages, num_requests, speedup=1.0,
                     kind="reconstruct", timeout=120.0, servers=None):
        """Replay a fleet's merged arrival process, time-compressed by ``speedup``."""
        rate = self.fleet_arrival_rate(fleet) * speedup
        if rate <= 0:
            raise ValueError("fleet offers no load (zero frame rate)")
        return self.run(packages, rate, num_requests, kind=kind, timeout=timeout,
                        servers=servers)

    # ------------------------------------------------------------------ #
    def run(self, packages, arrival_rate_rps, num_requests, kind="reconstruct",
            timeout=120.0, warmup=True, servers=None):
        """Drive ``num_requests`` Poisson arrivals at ``arrival_rate_rps``.

        ``packages`` are cycled round-robin.  Returns a :class:`LoadReport`
        comparing the observed mean wait with the M/D/c prediction at the
        measured per-image service time; ``servers`` overrides the pool size
        ``c`` (defaulting to the target server's ``parallelism``).
        """
        packages = list(packages)
        if not packages:
            raise ValueError("no packages to replay")
        if arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be positive")
        if num_requests < 1:
            raise ValueError("num_requests must be at least 1")
        if servers is None:
            servers = int(getattr(self.server, "parallelism", 1) or 1)
        servers = max(int(servers), 1)
        if warmup:
            # populate worker caches and the fused engine outside the clock
            self.server.submit(packages[0], kind=kind).result(timeout=timeout)
        before = self.server.stats.snapshot()
        gaps = self.rng.exponential(1.0 / arrival_rate_rps, size=num_requests)
        gaps[0] = 0.0
        pendings = []
        rejected = 0
        started = time.perf_counter()
        for index in range(num_requests):
            if gaps[index] > 0:
                time.sleep(gaps[index])
            try:
                pendings.append(
                    self.server.submit(packages[index % len(packages)], kind=kind))
            except ServerOverloadedError:
                rejected += 1
        # collect per-request outcomes: one failed future must not discard
        # the rest of the report
        responses = []
        failures = []
        for pending in pendings:
            try:
                responses.append(pending.result(timeout=timeout))
            except Exception as error:  # noqa: BLE001 - collected, reported
                failures.append(error)
        elapsed = max(time.perf_counter() - started, 1e-9)

        # no completions -> NaN latencies (summarise_latency_ms's contract);
        # a fake 0.0 ms percentile would read as an excellent (not an
        # absent) result
        latency_summary = summarise_latency_ms(
            response.latency_s for response in responses)
        batch_sizes = [response.batch_size for response in responses]
        mean_batch = float(np.mean(batch_sizes)) if batch_sizes else 0.0
        snapshot = self.server.stats.snapshot()
        # mean service time *per image* during this run (delta of the
        # cumulative counters, so earlier traffic does not skew the estimate)
        delta_service = snapshot["service_seconds_total"] - before["service_seconds_total"]
        delta_completed = snapshot["completed"] - before["completed"]
        delta_wait = (snapshot["queue_wait_seconds_total"]
                      - before["queue_wait_seconds_total"])
        # result-cache hits resolve without queueing, so the queueing model
        # applies only to the sub-stream of requests that reached the workers:
        # thin the offered rate by the cached fraction before predicting
        cached_responses = sum(1 for response in responses
                               if getattr(response, "cached", False))
        worked_fraction = ((len(responses) - cached_responses) / len(responses)
                           if responses else 1.0)
        worked_rate_rps = arrival_rate_rps * worked_fraction
        if delta_completed > 0:
            per_image_service_s = delta_service / delta_completed
            utilisation = worked_rate_rps * per_image_service_s / servers
            predicted_md1_ms = 1e3 * md_c_wait_s(worked_rate_rps, per_image_service_s, 1)
            predicted_mdc_ms = 1e3 * md_c_wait_s(worked_rate_rps, per_image_service_s,
                                                 servers)
            observed_wait_ms = 1e3 * delta_wait / delta_completed
        elif responses and cached_responses == len(responses):
            # everything was absorbed by the result cache: no queueing
            # happened, so waits and utilisation are genuinely zero; only the
            # service time is unmeasurable.  (Uncached responses with a zero
            # completion delta — a stats race — fall through to the NaN
            # branch instead of claiming a measured zero.)
            per_image_service_s = float("nan")
            utilisation = 0.0
            predicted_md1_ms = 0.0
            predicted_mdc_ms = 0.0
            observed_wait_ms = 0.0
        else:
            per_image_service_s = float("nan")
            utilisation = float("nan")
            predicted_md1_ms = float("nan")
            predicted_mdc_ms = float("nan")
            observed_wait_ms = float("nan")
        # all-rejected means the admission queue shed the entire offered load
        # (overload); all-*failed* is a fault, reported via `failed`, not a
        # capacity signal
        saturated = bool(utilisation >= 1.0) or (
            not responses and rejected >= num_requests)
        if saturated and delta_completed > 0:
            predicted_md1_ms = float("inf")
            predicted_mdc_ms = float("inf")
        return LoadReport(
            num_requests=num_requests,
            completed=len(responses),
            rejected=rejected,
            offered_rps=arrival_rate_rps,
            achieved_rps=len(responses) / elapsed,
            latency_p50_ms=latency_summary["p50_ms"],
            latency_p99_ms=latency_summary["p99_ms"],
            latency_mean_ms=latency_summary["mean_ms"],
            observed_wait_mean_ms=observed_wait_ms,
            service_time_per_image_ms=per_image_service_s * 1e3,
            utilisation=float(utilisation),
            predicted_wait_md1_ms=predicted_md1_ms,
            saturated=saturated,
            mean_batch_size=mean_batch,
            batch_size_histogram=snapshot["batch_size_histogram"],
            failed=len(failures),
            servers=servers,
            predicted_wait_mdc_ms=predicted_mdc_ms,
        )
