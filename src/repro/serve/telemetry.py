"""Serving telemetry: throughput, latency percentiles, batch shapes, caches.

:class:`ServerStats` is the single mutable telemetry object shared by the
admission queue, the batcher and the workers.  All updates take one lock and
touch a few counters, so instrumentation stays far off the hot path;
:meth:`ServerStats.snapshot` renders everything into plain types for logs,
tests and the ``serve-bench`` CLI table.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque

import numpy as np

__all__ = ["LatencyWindow", "ServerStats", "aggregate_snapshots",
           "summarise_latency_ms"]


def summarise_latency_ms(samples_s):
    """p50/p99/mean (milliseconds) of latency samples given in seconds.

    The one place the "no completions → NaN, never a fake 0.0 ms" convention
    is implemented; the load generator and the scenario harness both report
    through it so their numbers stay comparable.
    """
    samples = np.asarray(list(samples_s), dtype=float)
    if samples.size == 0:
        nan = float("nan")
        return {"p50_ms": nan, "p99_ms": nan, "mean_ms": nan}
    return {
        "p50_ms": float(np.percentile(samples, 50)) * 1e3,
        "p99_ms": float(np.percentile(samples, 99)) * 1e3,
        "mean_ms": float(np.mean(samples)) * 1e3,
    }


class LatencyWindow:
    """A sliding window of latency samples with percentile queries."""

    def __init__(self, maxlen=4096):
        self._samples = deque(maxlen=maxlen)

    def record(self, seconds):
        self._samples.append(float(seconds))

    def __len__(self):
        return len(self._samples)

    def percentile(self, q):
        """The ``q``-th percentile (seconds) of the current window, 0 if empty."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def mean(self):
        if not self._samples:
            return 0.0
        return float(np.mean(np.asarray(self._samples)))


class ServerStats:
    """Aggregate telemetry for one :class:`repro.serve.CompressionServer`.

    Tracks everything the ISSUE's serving story needs to be observable:
    request throughput, end-to-end latency percentiles (p50/p99), the
    batch-size histogram the micro-batcher actually achieved, queue depth
    high-water mark, admission rejections, and per-worker cache hit rates.
    """

    def __init__(self, latency_window=4096):
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.submitted = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.failed = 0  # guarded-by: _lock
        self.batches = 0  # guarded-by: _lock
        self.batch_sizes = Counter()  # guarded-by: _lock
        self.service_seconds_total = 0.0  # guarded-by: _lock
        self.queue_wait_seconds_total = 0.0  # guarded-by: _lock
        self.queue_depth_peak = 0  # guarded-by: _lock
        self.latency = LatencyWindow(latency_window)  # guarded-by: _lock
        self.queue_wait = LatencyWindow(latency_window)  # guarded-by: _lock
        self.service_time = LatencyWindow(latency_window)  # guarded-by: _lock
        self.completed_cached = 0  # guarded-by: _lock
        self.deadline_shed = 0  # guarded-by: _lock
        self.result_cache_hits = 0  # guarded-by: _lock
        self.result_cache_misses = 0  # guarded-by: _lock
        self.response_transport = Counter()  # guarded-by: _lock
        self._cache_stats = {}  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    def record_submitted(self):
        with self._lock:
            self.submitted += 1

    def record_rejected(self):
        with self._lock:
            self.rejected += 1

    def record_queue_depth(self, depth):
        with self._lock:
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth

    def record_batch(self, size, queue_waits, latencies, service_seconds):
        """One processed batch: its size plus per-request wait/latency samples."""
        with self._lock:
            self.batches += 1
            self.batch_sizes[int(size)] += 1
            self.completed += size
            self.service_time.record(service_seconds)
            self.service_seconds_total += service_seconds
            for wait in queue_waits:
                self.queue_wait.record(wait)
                self.queue_wait_seconds_total += wait
            for latency in latencies:
                self.latency.record(latency)

    def record_failure(self, count=1):
        with self._lock:
            self.failed += count

    def record_deadline_shed(self, count=1):
        """Requests dropped because their absolute deadline had already passed.

        Sheds are deliberately *not* counted in ``failed``: a deadline shed is
        the server doing the right thing (dropping work nobody is waiting
        for), and mixing it into the failure counter would make a correctly
        load-shedding server look broken in dashboards.
        """
        with self._lock:
            self.deadline_shed += count

    def record_result_cache(self, hit):
        """One cross-request result-cache lookup.

        Hits are tallied in ``completed_cached``, deliberately *not* in
        ``completed``: the latter counts worker-served requests only, and the
        load generator's service-time estimate divides by it, so zero-cost
        cache hits must stay out.
        """
        with self._lock:
            if hit:
                self.result_cache_hits += 1
                self.completed_cached += 1
            else:
                self.result_cache_misses += 1

    def record_response_transport(self, transport):
        """One response delivered via ``transport`` (queue / shm / cache / inline).

        The sharded server's parent records these: the shm-vs-queue split is
        how an operator sees the zero-copy ring actually being used (or
        silently falling back because responses outgrow its slots).
        """
        with self._lock:
            self.response_transport[str(transport)] += 1

    def update_cache_stats(self, worker_name, stats_list):
        """Publish a worker's cache statistics (list of ``LRUCache.stats()``)."""
        with self._lock:
            self._cache_stats[worker_name] = list(stats_list)

    # ------------------------------------------------------------------ #
    def snapshot(self):
        """Plain-dict view of every metric (safe to JSON-serialise)."""
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            mean_batch = (
                sum(size * count for size, count in self.batch_sizes.items())
                / max(self.batches, 1)
            )
            return {
                "uptime_s": elapsed,
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "throughput_rps": self.completed / elapsed,
                "latency_p50_ms": self.latency.percentile(50) * 1e3,
                "latency_p99_ms": self.latency.percentile(99) * 1e3,
                "latency_mean_ms": self.latency.mean() * 1e3,
                "queue_wait_p50_ms": self.queue_wait.percentile(50) * 1e3,
                "queue_wait_mean_ms": self.queue_wait.mean() * 1e3,
                "service_time_mean_ms": self.service_time.mean() * 1e3,
                "batches": self.batches,
                "service_seconds_total": self.service_seconds_total,
                "queue_wait_seconds_total": self.queue_wait_seconds_total,
                "mean_batch_size": mean_batch,
                "batch_size_histogram": dict(sorted(self.batch_sizes.items())),
                "queue_depth_peak": self.queue_depth_peak,
                "completed_cached": self.completed_cached,
                "deadline_shed": self.deadline_shed,
                "response_transport": dict(sorted(self.response_transport.items())),
                "result_cache": {
                    "hits": self.result_cache_hits,
                    "misses": self.result_cache_misses,
                    "hit_rate": (self.result_cache_hits
                                 / max(self.result_cache_hits + self.result_cache_misses, 1)),
                },
                "caches": {name: list(stats) for name, stats in self._cache_stats.items()},
            }


def aggregate_snapshots(snapshots, labels=None):
    """Merge per-shard :meth:`ServerStats.snapshot` dicts into one pool view.

    Counters, histograms and cumulative seconds add exactly; latency/wait
    percentiles cannot be merged exactly from percentiles alone, so they are
    approximated as completion-weighted averages of the per-shard values
    (exact when the shards see i.i.d. traffic, which consistent routing plus
    spill balancing approaches in practice).  The full per-shard snapshots are
    kept under ``"shards"`` for anyone needing the unmerged numbers.
    """
    snapshots = list(snapshots)
    if not snapshots:
        return {"shards": [], "completed": 0, "failed": 0, "submitted": 0,
                "rejected": 0, "batches": 0, "completed_cached": 0,
                "deadline_shed": 0,
                "service_seconds_total": 0.0, "queue_wait_seconds_total": 0.0,
                "batch_size_histogram": {}, "queue_depth_peak": 0,
                "response_transport": {},
                "throughput_rps": 0.0, "mean_batch_size": 0.0,
                "latency_p50_ms": 0.0, "latency_p99_ms": 0.0,
                "latency_mean_ms": 0.0, "queue_wait_mean_ms": 0.0,
                "service_time_mean_ms": 0.0, "uptime_s": 0.0, "caches": {}}
    labels = list(labels) if labels is not None else [
        f"shard-{index}" for index in range(len(snapshots))]
    merged = {
        "uptime_s": max(snap.get("uptime_s", 0.0) for snap in snapshots),
        "queue_depth_peak": max(snap.get("queue_depth_peak", 0) for snap in snapshots),
    }
    for key in ("submitted", "rejected", "completed", "failed", "batches",
                "completed_cached", "deadline_shed"):
        merged[key] = sum(snap.get(key, 0) for snap in snapshots)
    for key in ("service_seconds_total", "queue_wait_seconds_total",
                "throughput_rps"):
        merged[key] = float(sum(snap.get(key, 0.0) for snap in snapshots))
    histogram = Counter()
    for snap in snapshots:
        for size, count in snap.get("batch_size_histogram", {}).items():
            histogram[int(size)] += int(count)
    merged["batch_size_histogram"] = dict(sorted(histogram.items()))
    transports = Counter()
    for snap in snapshots:
        for transport, count in snap.get("response_transport", {}).items():
            transports[str(transport)] += int(count)
    merged["response_transport"] = dict(sorted(transports.items()))
    merged["mean_batch_size"] = (
        sum(size * count for size, count in histogram.items())
        / max(merged["batches"], 1))
    weights = [max(snap.get("completed", 0), 0) for snap in snapshots]
    total_weight = sum(weights)
    for key in ("latency_p50_ms", "latency_p99_ms", "latency_mean_ms",
                "queue_wait_mean_ms", "service_time_mean_ms"):
        if total_weight:
            merged[key] = sum(weight * snap.get(key, 0.0)
                              for weight, snap in zip(weights, snapshots)) / total_weight
        else:
            merged[key] = 0.0
    caches = {}
    for label, snap in zip(labels, snapshots):
        for worker, stats in snap.get("caches", {}).items():
            caches[f"{label}/{worker}"] = stats
    merged["caches"] = caches
    merged["shards"] = [dict(snap) for snap in snapshots]
    return merged
