"""Bounded request queue with admission control and backpressure.

The queue is the server's only admission point: when the fleet offers more
load than the workers can drain, the depth bound turns overload into an
explicit, immediate signal — either a :class:`ServerOverloadedError` (the
``"reject"`` policy, for callers that can drop or re-route frames) or a
bounded blocking wait (the ``"block"`` policy, classic backpressure for
callers that can stall the producer).  Unbounded queues only convert
overload into unbounded latency, which the M/D/1 model in
:mod:`repro.edge.fleet` makes precise.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["ServerOverloadedError", "QueueClosedError", "DeadlineExceededError",
           "AdmissionQueue", "deadline_after_ms", "deadline_expired",
           "deadline_remaining_s"]


class ServerOverloadedError(RuntimeError):
    """Raised when a request is denied admission (queue at capacity)."""


class QueueClosedError(RuntimeError):
    """Raised when submitting to a queue that has been closed."""


class DeadlineExceededError(RuntimeError):
    """A request's absolute deadline passed before (or while) it was served.

    Distinct from :class:`TimeoutError` (the *caller* gave up waiting) and
    from :class:`ServerOverloadedError` (admission refused the request): a
    deadline shed means the server itself decided the work was no longer
    worth doing — the response could only arrive after the client stopped
    caring — and dropped it *before* the expensive decode/reconstruct.
    Retrying a deadline shed is never useful, so the retry machinery in
    :mod:`repro.serve.resilience` classifies it as permanent.
    """


# --------------------------------------------------------------------------- #
# deadline propagation
# --------------------------------------------------------------------------- #
# Deadlines are absolute stamps on the ``time.monotonic`` clock, which on
# Linux is CLOCK_MONOTONIC and therefore shared by every process on the host
# — a deadline stamped in the parent stays meaningful after it crosses the
# sharded server's wire format into a worker process.

def deadline_after_ms(budget_ms, clock=time.monotonic):
    """Absolute monotonic deadline ``budget_ms`` from now (None passes through)."""
    if budget_ms is None:
        return None
    return clock() + float(budget_ms) * 1e-3


def deadline_expired(deadline_s, clock=time.monotonic):
    """True when an absolute deadline has passed (``None`` never expires)."""
    return deadline_s is not None and clock() >= deadline_s


def deadline_remaining_s(deadline_s, clock=time.monotonic):
    """Seconds left until the deadline, floored at 0 (``inf`` when none)."""
    if deadline_s is None:
        return float("inf")
    return max(deadline_s - clock(), 0.0)


class AdmissionQueue:
    """A thread-safe bounded FIFO with key-aware draining for the batcher.

    Parameters
    ----------
    max_depth:
        Admission bound.  ``put`` beyond this depth rejects (or blocks,
        per ``policy``).
    policy:
        ``"reject"`` raises :class:`ServerOverloadedError` immediately when
        full; ``"block"`` waits up to ``put_timeout`` seconds for space and
        only then raises.
    put_timeout:
        Backpressure bound for the ``"block"`` policy.
    """

    def __init__(self, max_depth=64, policy="reject", put_timeout=1.0):
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if policy not in ("reject", "block"):
            raise ValueError("policy must be 'reject' or 'block'")
        self.max_depth = int(max_depth)
        self.policy = policy
        self.put_timeout = float(put_timeout)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._items = deque()  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    # ------------------------------------------------------------------ #
    @property
    def depth(self):
        """Current number of queued requests."""
        with self._lock:
            return len(self._items)

    def close(self):
        """Refuse new work and wake every waiter (shutdown path)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # ------------------------------------------------------------------ #
    def put(self, item):
        """Admit one request or raise (:class:`ServerOverloadedError` / closed).

        Returns the queue depth *after* admission so callers can surface it.
        """
        with self._lock:
            if self._closed:
                raise QueueClosedError("server is shut down")
            if len(self._items) >= self.max_depth:
                if self.policy == "reject":
                    raise ServerOverloadedError(
                        f"queue at capacity ({self.max_depth}); request rejected"
                    )
                # absolute deadline: spurious wakeups (another producer wins
                # the freed slot) must not restart the backpressure budget
                deadline = time.monotonic() + self.put_timeout
                while len(self._items) >= self.max_depth and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._not_full.wait(timeout=remaining):
                        raise ServerOverloadedError(
                            f"queue full for {self.put_timeout:.2f}s; backpressure timeout"
                        )
                if self._closed:
                    raise QueueClosedError("server is shut down")
            self._items.append(item)
            depth = len(self._items)
            self._not_empty.notify()
            return depth

    def pop(self, timeout=None):
        """Remove and return the oldest request, or ``None`` on timeout/close."""
        with self._lock:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout=timeout)
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def take_matching(self, predicate, limit):
        """Remove up to ``limit`` queued requests satisfying ``predicate``.

        Requests that do not match keep their queue order — the batcher uses
        this to coalesce compatible requests without starving the rest.
        """
        if limit <= 0:
            return []
        taken = []
        with self._lock:
            kept = deque()
            while self._items:
                item = self._items.popleft()
                if len(taken) < limit and predicate(item):
                    taken.append(item)
                else:
                    kept.append(item)
            self._items = kept
            if taken:
                self._not_full.notify_all()
        return taken

    def wait_nonempty(self, timeout):
        """Block until the queue has an item (or timeout/close); returns depth."""
        with self._lock:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout=timeout)
            return len(self._items)
