"""The micro-batching compression server.

:class:`CompressionServer` is the deployment story of the paper's Fig. 2
server half run at fleet scale: edge cameras ship ``EASZ`` transport
containers to a shared host, which must decode and reconstruct them as fast
as the hardware allows.  The server composes the pieces of this package —

* an :class:`~repro.serve.queueing.AdmissionQueue` bounds memory and turns
  overload into explicit backpressure;
* a :class:`~repro.serve.batcher.MicroBatcher` coalesces requests that share
  an erase mask and geometry;
* :class:`~repro.serve.worker.ServeWorker` threads execute batches through
  the fused batched decode/reconstruct APIs with per-worker caches;
* :class:`~repro.serve.telemetry.ServerStats` records throughput, latency
  percentiles, batch sizes, queue depth and cache hit rates.

``submit`` is thread-safe and returns a :class:`PendingResult` future; the
caller blocks (or polls) only when it needs the pixels.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..codecs.jpeg import JpegCodec
from ..codecs.registry import create_codec
from ..core.batch_engine import DEFAULT_CHUNK
from ..core.config import EaszConfig
from ..core.pipeline import EaszCompressed, EaszDecoder
from ..core.reconstruction import EaszReconstructor
from ..core.transport import unpack_package
from .batcher import BatchPolicy, MicroBatcher
from .cache import ResultCache
from .queueing import (AdmissionQueue, DeadlineExceededError, QueueClosedError,
                       deadline_expired)
from .telemetry import ServerStats
from .worker import ServeWorker

__all__ = ["ServeRequest", "ServeResponse", "PendingResult", "CompressionServer",
           "try_resolve_from_result_cache"]

_CODEC_NAME_PATTERN = re.compile(r"^(?P<base>[a-z0-9-]+?)-qp?(?P<quality>\d+)$")


@dataclass
class ServeResponse:
    """What the server hands back for one request.

    ``transport`` names how the pixels reached the caller: ``"inline"``
    (same-process, the threaded server), ``"queue"`` (pickled over a
    multiprocessing queue from a shard), ``"shm"`` (written into the
    shared-memory ring by a shard) or ``"cache"`` (cross-request result
    cache, no work executed).
    """

    request_id: int
    image: object
    kind: str
    config_summary: dict = field(default_factory=dict)
    latency_s: float = 0.0
    batch_size: int = 1
    worker: str = ""
    cached: bool = False
    transport: str = "inline"


class PendingResult:
    """A minimal future resolved by a serving worker.

    Besides blocking via :meth:`result`, completion callbacks can be attached
    with :meth:`add_done_callback` — the sharded server uses this to marshal
    finished responses back over the process boundary without a
    thread-per-request.
    """

    def __init__(self, request_id):
        self.request_id = request_id
        self._event = threading.Event()
        self._response = None
        self._error = None
        self._cb_lock = threading.Lock()
        self._callbacks = []  # guarded-by: _cb_lock

    def done(self):
        """True once a worker resolved (or rejected) the request."""
        return self._event.is_set()

    def result(self, timeout=None):
        """Block for the :class:`ServeResponse` (raises the worker's error)."""
        if not self._event.wait(timeout=timeout):
            raise TimeoutError(f"request {self.request_id} not completed in time")
        if self._error is not None:
            raise self._error
        return self._response

    def add_done_callback(self, fn):
        """Call ``fn(self)`` once resolved/rejected (immediately if already done)."""
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    # worker-side hooks ------------------------------------------------- #
    def _finish(self):
        with self._cb_lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def _resolve(self, response):
        self._response = response
        self._finish()

    def _reject(self, error):
        self._error = error
        self._finish()


def try_resolve_from_result_cache(result_cache, stats, package, kind, pending):
    """Shared cache-hit fast path of the threaded and sharded ``submit()``.

    Returns ``(cache_key, hit)``: the digest to store the eventual result
    under (``None`` when the cache is disabled), and whether ``pending`` was
    already resolved from a cached image (in which case the caller must not
    queue the request).
    """
    if not result_cache.enabled:
        return None, False
    cache_key = result_cache.digest(package, kind)
    image = result_cache.lookup(cache_key)
    stats.record_result_cache(hit=image is not None)
    if image is None:
        return cache_key, False
    pending._resolve(ServeResponse(
        request_id=pending.request_id,
        image=image,
        kind=kind,
        config_summary=dict(package.config_summary),
        latency_s=0.0,
        batch_size=1,
        worker="result-cache",
        cached=True,
        transport="cache",
    ))
    return cache_key, True


@dataclass
class ServeRequest:
    """One queued unit of work (a transport package plus its future).

    ``deadline_s`` is an absolute ``time.monotonic`` stamp (or ``None`` for
    no deadline).  Every stage of the pipeline that is about to spend real
    work on the request — batcher pop, worker pre-decode, shard-side
    pre-unpack — checks it first and sheds the request with a
    :class:`DeadlineExceededError` instead of computing an answer nobody is
    waiting for.
    """

    request_id: int
    package: EaszCompressed
    kind: str
    submitted_at: float
    pending: PendingResult
    cache_key: bytes = None
    deadline_s: float = None

    @property
    def batch_key(self):
        """Requests sharing this key can run in one fused batch."""
        return (self.kind, self.package.mask_bytes,
                tuple(self.package.original_shape),
                self.package.codec_payload.codec_name)

    def resolve(self, image, batch_size, worker, latency):
        self.pending._resolve(ServeResponse(
            request_id=self.request_id,
            image=image,
            kind=self.kind,
            config_summary=dict(self.package.config_summary),
            latency_s=latency,
            batch_size=batch_size,
            worker=worker,
        ))

    def reject(self, error):
        self.pending._reject(error)


class CompressionServer:
    """Thread-based micro-batching decode/reconstruct service.

    Parameters
    ----------
    model:
        A trained :class:`EaszReconstructor` shared (read-only) by all
        workers; a fresh one is built from ``config`` when omitted.
    config:
        :class:`EaszConfig`; defaults to the model's config.
    base_codec:
        Fallback base codec used when a package names a codec the registry
        cannot rebuild; defaults to JPEG quality 75.
    num_workers:
        Worker threads.  Even on a single core >1 worker keeps the pipeline
        busy while another worker waits in the batcher.
    queue_depth / admission_policy:
        Bounds for the :class:`AdmissionQueue` (``"reject"`` or ``"block"``).
    batch_policy:
        :class:`BatchPolicy` controlling micro-batch size and wait budget.
    fill:
        Unsqueeze fill mode (as :class:`repro.core.EaszDecoder`).
    result_cache_size:
        Capacity of the cross-request :class:`~repro.serve.cache.ResultCache`
        keyed on payload digest.  ``0`` (the default) disables it; enable it
        for static-scene traffic where byte-identical frames repeat, so
        repeats resolve instantly without touching the queue.
    """

    #: Parallel service channels this server presents to the queueing model
    #: (threads share one GIL, so the M/D/1 view of a threaded server is c=1;
    #: :class:`repro.serve.sharding.ShardedCompressionServer` overrides this).
    parallelism = 1

    def __init__(self, model=None, config=None, base_codec=None, num_workers=2,
                 queue_depth=64, admission_policy="reject", batch_policy=None,
                 fill="zero", chunk=DEFAULT_CHUNK, result_cache_size=0):
        self.config = config or (model.config if model is not None else EaszConfig())
        self.model = model or EaszReconstructor(self.config)
        self.base_codec = base_codec if base_codec is not None else JpegCodec(quality=75)
        self.fill = fill
        self.chunk = chunk
        self.decoder = EaszDecoder(model=self.model, config=self.config,
                                   base_codec=self.base_codec, fill=fill)
        self.stats = ServerStats()
        self.result_cache = ResultCache(result_cache_size)
        self.queue = AdmissionQueue(max_depth=queue_depth, policy=admission_policy)
        self.batcher = MicroBatcher(self.queue, policy=batch_policy or BatchPolicy(),
                                    on_expired=self._shed_expired)
        self.workers = [ServeWorker(self, index) for index in range(max(1, num_workers))]
        self.stopping = False
        self._started = False
        self._ids = itertools.count()
        self._codec_lock = threading.Lock()
        # bounded: codec names arrive on the wire, so an adversarial fleet
        # must not be able to grow this without limit
        self._codec_prototypes = OrderedDict({self.base_codec.name: self.base_codec})  # guarded-by: _codec_lock
        self._codec_prototypes_max = 32

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self):
        """Start the worker pool (idempotent)."""
        if not self._started:
            self._started = True
            for worker in self.workers:
                worker.start()
        return self

    def stop(self, timeout=5.0):
        """Stop accepting work, join the workers, reject any stranded requests."""
        self.stopping = True
        self.queue.close()
        for worker in self.workers:
            if worker.is_alive():
                worker.join(timeout=timeout)
        # a submit() racing stop() can slip into the queue after the last
        # worker checked it; fail those futures instead of leaving callers
        # blocked until their own timeout
        while True:
            request = self.queue.pop(timeout=0.0)
            if request is None:
                break
            self.stats.record_failure(1)
            request.reject(QueueClosedError("server stopped before the request ran"))
        return self.stats.snapshot()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False

    # ------------------------------------------------------------------ #
    # submission API
    # ------------------------------------------------------------------ #
    def submit(self, package, kind="reconstruct", deadline_s=None):
        """Queue one :class:`EaszCompressed` package; returns a future.

        Raises :class:`repro.serve.queueing.ServerOverloadedError` when the
        admission queue denies the request (backpressure), so edge callers
        can drop or re-route the frame instead of stacking latency.

        ``deadline_s`` is an absolute ``time.monotonic`` deadline (see
        :func:`repro.serve.queueing.deadline_after_ms`).  A request whose
        deadline has already passed is shed immediately: its future is
        rejected with :class:`DeadlineExceededError` (never raised
        synchronously, preserving exactly-once settlement) and the shed is
        counted in telemetry.
        """
        if kind not in ("reconstruct", "decode"):
            raise ValueError("kind must be 'reconstruct' or 'decode'")
        if not self._started:
            raise RuntimeError("server not started; use start() or a with-block")
        pending = PendingResult(next(self._ids))
        if deadline_expired(deadline_s):
            self.stats.record_deadline_shed()
            pending._reject(DeadlineExceededError(
                f"request {pending.request_id} expired before admission"))
            return pending
        cache_key, hit = try_resolve_from_result_cache(
            self.result_cache, self.stats, package, kind, pending)
        if hit:
            return pending
        request = ServeRequest(
            request_id=pending.request_id,
            package=package,
            kind=kind,
            submitted_at=time.perf_counter(),
            pending=pending,
            cache_key=cache_key,
            deadline_s=deadline_s,
        )
        try:
            depth = self.queue.put(request)
        except Exception:
            self.stats.record_rejected()
            raise
        self.stats.record_submitted()
        self.stats.record_queue_depth(depth)
        return pending

    def submit_bytes(self, data, kind="reconstruct", deadline_s=None):
        """Unpack a wire container (``EASZ`` magic) and queue it."""
        return self.submit(unpack_package(data), kind=kind, deadline_s=deadline_s)

    # ------------------------------------------------------------------ #
    # deadline shedding
    # ------------------------------------------------------------------ #
    def _shed_expired(self, request):
        """Reject an already-expired queued request (batcher ``on_expired`` hook)."""
        self.stats.record_deadline_shed()
        request.reject(DeadlineExceededError(
            f"request {request.request_id} expired while queued"))

    def shed_if_expired(self, request):
        """Shed ``request`` if its deadline passed; True when it was shed.

        Workers call this per batch member just before the entropy decode —
        the last cheap moment to notice the caller has already given up.
        """
        if not deadline_expired(request.deadline_s):
            return False
        self.stats.record_deadline_shed()
        request.reject(DeadlineExceededError(
            f"request {request.request_id} expired before decode"))
        return True

    def current_depth(self):
        """Requests currently queued (admission-control observability).

        Deadline-aware admission (:mod:`repro.serve.scenarios`) reads this to
        estimate the wait a new arrival would see without touching telemetry
        locks on the hot path.
        """
        return self.queue.depth

    # ------------------------------------------------------------------ #
    # worker support
    # ------------------------------------------------------------------ #
    def codec_for(self, codec_name):
        """Build (or reuse) a base codec matching a package's codec name.

        Names follow the registry convention (``jpeg-q75``, ``bpg-qp32``,
        quality-less names like ``png``).  A name that cannot be resolved to
        a codec whose own name round-trips raises ``ValueError`` — decoding
        with mismatched quantisation tables would produce silently wrong
        pixels, so the request's future gets the error instead.
        """
        with self._codec_lock:
            prototype = self._codec_prototypes.get(codec_name)
            if prototype is not None:
                self._codec_prototypes.move_to_end(codec_name)
                return prototype
            codec = None
            try:  # quality-less registry names ("png")
                codec = create_codec(codec_name)
            except KeyError:
                match = _CODEC_NAME_PATTERN.match(codec_name)
                if match is not None:
                    try:
                        codec = create_codec(match.group("base"),
                                             quality=int(match.group("quality")))
                    except (KeyError, TypeError, ValueError):
                        codec = None
            if codec is None or codec.name != codec_name:
                raise ValueError(
                    f"cannot resolve base codec {codec_name!r}; the registry "
                    "produced no codec with a matching name"
                )
            self._codec_prototypes[codec_name] = codec
            if len(self._codec_prototypes) > self._codec_prototypes_max:
                for key in self._codec_prototypes:
                    if key != self.base_codec.name:  # keep the configured fallback
                        del self._codec_prototypes[key]
                        break
            return codec
