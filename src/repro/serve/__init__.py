"""``repro.serve`` — the micro-batching compression service layer.

The paper's deployment story is a fleet of edge cameras streaming
erase-and-squeezed frames to one shared server.  ``repro.core`` makes a
single decode→reconstruct fast; this package makes *many concurrent* ones
fast by amortising fixed costs across requests:

* :class:`AdmissionQueue` — a bounded request queue: overload becomes an
  explicit :class:`ServerOverloadedError` (or bounded blocking), not
  unbounded latency;
* :class:`MicroBatcher` — coalesces queued requests that share an erase mask
  and image geometry, under a configurable latency budget
  (:class:`BatchPolicy`);
* :class:`ServeWorker` — worker threads running batches through the fused
  batched APIs (``EaszDecoder.decode_batch`` /
  ``reconstruct_batch``) with per-worker LRU caches
  (:class:`LRUCache`) for squeeze plans, pixel scatter indices and
  base-codec entropy tables;
* :class:`ServerStats` — throughput, p50/p99 latency, batch-size histogram,
  queue depth and cache hit rates;
* :class:`PoissonLoadGenerator` — replays :mod:`repro.edge.fleet` Poisson
  arrivals against a live server and reports the observed queueing next to
  the M/D/1 prediction.

Quick start::

    from repro.serve import CompressionServer

    with CompressionServer(model=model, config=config) as server:
        pending = server.submit(package)          # EaszCompressed in,
        response = pending.result(timeout=10.0)   # pixels out
    print(server.stats.snapshot()["latency_p50_ms"])
"""

from .batcher import BatchPolicy, MicroBatcher
from .cache import LRUCache
from .loadgen import LoadReport, PoissonLoadGenerator
from .queueing import AdmissionQueue, QueueClosedError, ServerOverloadedError
from .server import CompressionServer, PendingResult, ServeRequest, ServeResponse
from .telemetry import LatencyWindow, ServerStats
from .worker import ServeWorker

__all__ = [
    "AdmissionQueue",
    "BatchPolicy",
    "CompressionServer",
    "LatencyWindow",
    "LoadReport",
    "LRUCache",
    "MicroBatcher",
    "PendingResult",
    "PoissonLoadGenerator",
    "QueueClosedError",
    "ServeRequest",
    "ServeResponse",
    "ServeWorker",
    "ServerOverloadedError",
    "ServerStats",
]
