"""``repro.serve`` — the micro-batching compression service layer.

The paper's deployment story is a fleet of edge cameras streaming
erase-and-squeezed frames to one shared server.  ``repro.core`` makes a
single decode→reconstruct fast; this package makes *many concurrent* ones
fast by amortising fixed costs across requests:

* :class:`AdmissionQueue` — a bounded request queue: overload becomes an
  explicit :class:`ServerOverloadedError` (or bounded blocking), not
  unbounded latency;
* :class:`MicroBatcher` — coalesces queued requests that share an erase mask
  and image geometry, under a configurable latency budget
  (:class:`BatchPolicy`; ``mode="adaptive"`` tunes the wait online from the
  observed inter-arrival rate);
* :class:`ServeWorker` — worker threads running batches through the fused
  batched APIs (``EaszDecoder.decode_batch`` /
  ``reconstruct_batch``) with per-worker LRU caches
  (:class:`LRUCache`) for squeeze plans, pixel scatter indices and
  base-codec entropy tables;
* :class:`ResultCache` — optional cross-request cache keyed on payload
  digest, so the byte-identical frames of a static scene resolve without
  touching the queue;
* :class:`ServerStats` — throughput, p50/p99 latency, batch-size histogram,
  queue depth and cache hit rates (:func:`aggregate_snapshots` merges them
  across shards);
* :class:`ShardedCompressionServer` — the same submission API executed on N
  worker *processes* (see the decision matrix below);
* :class:`PoissonLoadGenerator` — replays :mod:`repro.edge.fleet` Poisson
  arrivals against a live server and reports the observed queueing next to
  the M/D/c prediction;
* :mod:`repro.serve.scenarios` — the multi-tenant chaos harness:
  :class:`ScenarioSpec` traces (per-tenant Poisson/diurnal/bursty arrivals,
  QoS deadline budgets, deadline-aware admission that degrades to a cheaper
  codec quality or sheds when the M/D/c predicted wait exceeds a tenant's
  budget) replayed while a :class:`~repro.serve.scenarios.ChaosDriver`
  SIGKILLs/SIGSTOPs shards, corrupts payloads through
  :mod:`repro.edge.faults` and exhausts the shm ring;
* :mod:`repro.serve.resilience` — the client side of the robustness story:
  :class:`RetryPolicy` (backoff + jitter, token-bucket :class:`RetryBudget`),
  per-shard :class:`CircuitBreaker` consulted by the sharded router,
  :class:`ResilientClient` (retries + optional p95 hedging, exactly-once)
  and :class:`ClosedLoopClient` think-time load loops; absolute deadlines
  (``submit(..., deadline_s=...)``, :func:`deadline_after_ms`) propagate
  through queue → batcher → worker → shard so expired work is shed with
  :class:`DeadlineExceededError` *before* any decode is paid for.

Threaded vs process-sharded — which server to use
-------------------------------------------------

===========================  =========================  ==========================
concern                      ``CompressionServer``      ``ShardedCompressionServer``
===========================  =========================  ==========================
parallelism                  threads (one GIL: compute  processes (scales with
                             tops out near one core)    cores for the elementwise
                                                        decode/reconstruct stages)
startup / memory             instant; one model copy    per-shard model + caches,
                                                        process spawn at start()
submit() overhead            ~µs (in-process queue)     container pack + queue hop
                                                        (~100s of µs per request)
batching reach               one pool sees every        per shard (consistent
                             request                    routing keeps keys hot;
                                                        spill uses the whole pool)
failure isolation            a worker exception fails   a crashed shard is
                             its batch only, but a      restartable in place
                             hard crash takes the       (:meth:`~repro.serve.
                             process down               sharding.ShardedCompressionServer.restart_shard`)
queueing model (loadgen)     M/D/1 (``parallelism=1``)  M/D/c with c = num_shards
use when                     interactive latency,       throughput-bound fleets on
                             single-core hosts, tests   multi-core hosts
===========================  =========================  ==========================

Sharded response path: shm ring vs queue
----------------------------------------

The sharded server moves finished pixels back to the parent one of two ways
(``ServeResponse.transport`` names which served each request, telemetry
counts both):

===========================  =========================  ==========================
concern                      queue path (``use_shm=     shm ring (``use_shm=True``,
                             False``)                   the default)
===========================  =========================  ==========================
per-response cost            ``tobytes`` + queue pickle one copy into the slot,
                             + pipe chunking + parent   one copy out (the lease
                             copy (4 copies of the      descriptor rides the
                             pixels)                    queue; pixels never do)
requirements                 none                       ``/dev/shm`` large enough
                                                        for ``shm_slots x
                                                        shm_slot_bytes`` (Docker
                                                        defaults /dev/shm to
                                                        64 MiB — size the ring
                                                        accordingly)
oversized / overflow         n/a                        responses larger than
                                                        ``shm_slot_bytes`` (or a
                                                        full ring) fall back to
                                                        the queue path per
                                                        response, automatically
crash safety                 queue messages die with    leases are reclaimed by
                             the shard                  owner; per-slot sequence
                                                        numbers make stale acks
                                                        inert
use when                     tiny responses (thumbnail  responses are the full
                             decode), /dev/shm-starved  reconstructed frames —
                             containers                 the common serving case
===========================  =========================  ==========================

Scenario vs loadgen — which harness to drive a server with
----------------------------------------------------------

===========================  =========================  ==========================
concern                      ``PoissonLoadGenerator``   ``scenarios`` harness
===========================  =========================  ==========================
traffic                      one homogeneous Poisson    many tenants, each
                             stream                     Poisson / diurnal / bursty
admission                    server-side only (queue    client-side deadline-aware
                             backpressure)              on top: degrade to a
                                                        cheaper quality, shed, or
                                                        accept per tenant policy
faults                       none (healthy pool)        SIGKILL/SIGSTOP shard
                                                        chaos, payload corruption,
                                                        shm-ring exhaustion
verdict                      ``LoadReport`` (observed   ``ScenarioReport``:
                             wait vs M/D/c prediction)  per-tenant p50/p99 +
                                                        SLO-miss next to the
                                                        prediction, plus the
                                                        exactly-once invariants
                                                        (lost/duplicated futures,
                                                        decoder crashes)
use when                     calibrating capacity /     proving robustness claims;
                             validating the queueing    the nightly chaos CI
                             model                      (``serve-bench
                                                        --scenario``)
===========================  =========================  ==========================

Retry vs hedge vs degrade vs shed — which resilience lever to pull
------------------------------------------------------------------

Four distinct mechanisms trade work for latency when a request is at risk;
they answer different failure modes and must not be confused:

===========================  ==============================================
lever                        what it is / when it applies
===========================  ==============================================
retry                        re-submit *after* a retryable failure
(:class:`RetryPolicy` via    (:class:`ShardFailedError`, overload,
:class:`ResilientClient`)    timeout).  Exponential backoff + full jitter;
                             gated by a :class:`RetryBudget` token bucket so
                             retry traffic is capped at a fraction of fresh
                             traffic — without the budget, retries amplify
                             overload into a metastable retry storm.
                             Never retries permanent errors (corrupt
                             payload, expired deadline, closed queue).
hedge                        speculative *duplicate* submitted while the
(``hedge_after_ms`` /        first attempt is still in flight and slower
``"p95"``)                   than expected.  Attacks tail latency, not
                             failures; costs duplicate work, so it draws
                             from the same retry budget.  First answer
                             wins; the loser is absorbed (exactly-once at
                             the caller).
degrade                      admission-time *quality* trade: when the
(``on_breach="degrade"``)    predicted queue wait breaches the tenant's
                             deadline budget, re-encode at the tenant's
                             ``degraded_quality`` — less work per request,
                             same request count.
shed                         drop the request outright: client-side when
(``on_breach="shed"``, or    predicted wait breaches the budget, or
deadline propagation)        server-side at every pipeline stage once the
                             propagated absolute deadline has expired
                             (:class:`DeadlineExceededError`) — a reply
                             nobody will wait for is pure waste, so it is
                             shed *before* decode, not after.
===========================  ==============================================

Rules of thumb: retries repair *infra* failures, hedges repair *tail*
latency, degrade preserves throughput under *predicted* overload, and
deadline shedding stops *dead* work from consuming live capacity.  Per-shard
circuit breakers (:class:`CircuitBreaker`) sit underneath all four: a shard
that keeps failing is routed around (closed → open → half-open probe) so
retries and hedges are not wasted on a corpse.

With ``watchdog_interval_s`` set, a parent-side watchdog additionally
auto-restarts crashed shards (exponential backoff, restart counts in
``stats.snapshot()["watchdog"]``); in-flight requests of the dead shard are
re-routed to live shards by the collector's reaper, so callers see neither
lost nor duplicated responses.  Hang detection is on by default whenever
the watchdog runs: a shard that is alive but has not stamped its heartbeat
for ``watchdog_hang_timeout_s`` (``"auto"`` → 30 s; healthy shards stamp
every ≤ 50 ms, so this is conservative) is killed and restarted like a
crashed one.  Opt out with ``watchdog_hang_timeout_s=None`` if shard
processes may legitimately freeze (e.g. under SIGSTOP-based debuggers or
cgroup freezers) and you would rather wait them out.

Quick start::

    from repro.serve import CompressionServer

    with CompressionServer(model=model, config=config) as server:
        pending = server.submit(package)          # EaszCompressed in,
        response = pending.result(timeout=10.0)   # pixels out
    print(server.stats.snapshot()["latency_p50_ms"])

Scaling out is the same API::

    from repro.serve import ShardedCompressionServer

    with ShardedCompressionServer(model=model, config=config, num_shards=4,
                                  result_cache_size=256) as server:
        response = server.submit_bytes(container).result(timeout=10.0)
"""

from .batcher import BatchPolicy, MicroBatcher
from .cache import LRUCache, ResultCache
from .loadgen import LoadReport, PoissonLoadGenerator
from .queueing import (AdmissionQueue, DeadlineExceededError, QueueClosedError,
                       ServerOverloadedError, deadline_after_ms)
from .resilience import (CircuitBreaker, ClosedLoopClient, ResilientClient,
                         RetryBudget, RetryPolicy)
from .scenarios import (ChaosDriver, ChaosSpec, ResilienceSpec, ScenarioReport,
                        ScenarioRunner, ScenarioSpec, TenantReport, TenantSpec,
                        build_workload, builtin_scenarios, run_scenario)
from .server import CompressionServer, PendingResult, ServeRequest, ServeResponse
from .sharding import (ShardedCompressionServer, ShardFailedError, ShardHandle,
                       available_cpus)
from .shm import ShmRing, shm_available
from .telemetry import (LatencyWindow, ServerStats, aggregate_snapshots,
                        summarise_latency_ms)
from .worker import ServeWorker

__all__ = [
    "AdmissionQueue",
    "BatchPolicy",
    "ChaosDriver",
    "ChaosSpec",
    "CircuitBreaker",
    "ClosedLoopClient",
    "CompressionServer",
    "DeadlineExceededError",
    "LatencyWindow",
    "LoadReport",
    "LRUCache",
    "MicroBatcher",
    "PendingResult",
    "PoissonLoadGenerator",
    "QueueClosedError",
    "ResilienceSpec",
    "ResilientClient",
    "ResultCache",
    "RetryBudget",
    "RetryPolicy",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "ServeRequest",
    "ServeResponse",
    "ServeWorker",
    "ServerOverloadedError",
    "ServerStats",
    "ShardedCompressionServer",
    "ShardFailedError",
    "ShardHandle",
    "ShmRing",
    "TenantReport",
    "TenantSpec",
    "aggregate_snapshots",
    "available_cpus",
    "build_workload",
    "builtin_scenarios",
    "deadline_after_ms",
    "run_scenario",
    "shm_available",
    "summarise_latency_ms",
]
