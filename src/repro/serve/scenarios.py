"""Multi-tenant scenario harness: realistic traffic + chaos against a live pool.

:mod:`repro.serve.loadgen` validates the M/D/c queueing model with a single
healthy-pool Poisson stream.  This module grows that into the workload the
ROADMAP's "traffic realism + chaos" item asks for — the load shape under
which the serving stack's robustness claims (watchdog auto-restart,
dead-shard re-routing, shm-lease reclamation, graceful decode failures) are
*continuously exercised* instead of asserted:

* **Tenants** (:class:`TenantSpec`) — each with its own arrival shape
  (Poisson / diurnal / bursty, from :mod:`repro.edge.fleet`), QoS class and
  deadline budget;
* **Deadline-aware admission** — before submitting, the runner predicts the
  response time a new arrival would see (M/D/c wait from
  :func:`repro.edge.fleet.md_c_wait_s` at the measured service time plus the
  service time itself) and, when it exceeds the tenant's budget, degrades the
  request to a cheaper codec quality, sheds it, or knowingly accepts the SLO
  risk (``TenantSpec.on_breach``);
* **Chaos** (:class:`ChaosSpec` / :class:`ChaosDriver`) — while the trace
  replays, shards are SIGKILLed and SIGSTOPped, payloads are corrupted
  through :class:`repro.edge.faults.FaultInjector`, and the shm response
  ring is exhausted by leasing every slot under a sentinel owner;
* **Per-tenant verdicts** (:class:`TenantReport` / :class:`ScenarioReport`)
  — p50/p99 latency, SLO-miss rate and the queueing-model prediction side by
  side, plus the pool-level invariants every chaos run must keep: zero lost
  futures, zero duplicated resolutions, zero non-graceful decoder failures.

The report is machine-readable (:meth:`ScenarioReport.to_json`); the nightly
chaos workflow (``.github/workflows/chaos.yml``) runs the built-in scenario
matrix through ``repro serve-bench --scenario`` and fails on any invariant
violation.

Quick start::

    from repro.serve import ShardedCompressionServer
    from repro.serve.scenarios import builtin_scenarios, run_scenario

    scenario = builtin_scenarios()["kill-shards"]
    with ShardedCompressionServer(model=model, config=config, num_shards=2,
                                  **dict(scenario.server_hints)) as server:
        report = run_scenario(scenario, server, config=config, model=model)
    assert report.ok(), report.headline()
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import signal
import threading
import time
import zlib
from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from ..codecs.jpeg import JpegCodec
from ..core import EaszConfig, EaszEncoder, EaszReconstructor, proposed_mask
from ..edge.faults import FaultInjector
from ..edge.fleet import (bursty_arrival_times, diurnal_arrival_times,
                          md_c_wait_s, poisson_arrival_times)
from .queueing import (DeadlineExceededError, QueueClosedError,
                       ServerOverloadedError, deadline_after_ms)
from .resilience import (ClosedLoopClient, ResilientClient, RetryBudget,
                         RetryPolicy)
from .sharding import ShardFailedError
from .telemetry import summarise_latency_ms

__all__ = [
    "TenantSpec",
    "ChaosSpec",
    "ResilienceSpec",
    "ScenarioSpec",
    "TenantReport",
    "ScenarioReport",
    "ScenarioRunner",
    "ChaosDriver",
    "Workload",
    "build_workload",
    "run_scenario",
    "builtin_scenarios",
    "scenario_image",
]

ARRIVAL_SHAPES = ("poisson", "diurnal", "bursty")
BREACH_POLICIES = ("degrade", "shed", "accept")

#: Exceptions meaning the *infrastructure* failed or refused the request —
#: checked before the graceful classes because :class:`ShardFailedError`
#: subclasses ``RuntimeError`` and must never be read as a decoder verdict.
INFRA_ERRORS = (ShardFailedError, ServerOverloadedError, QueueClosedError,
                TimeoutError)

#: A damaged payload must surface as one of these (the contract
#: :func:`repro.edge.faults.check_decoder_robustness` enforces per codec);
#: anything else from a decode is counted as a decoder crash.
GRACEFUL_ERRORS = (ValueError, KeyError, IndexError, EOFError)


# --------------------------------------------------------------------------- #
# specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape and service-level objective.

    ``on_breach`` decides what admission does when the predicted response
    time exceeds ``deadline_ms``: ``"degrade"`` resubmits the frame encoded
    at ``degraded_quality`` (a cheaper decode — the paper's quality knob used
    as a load-shedding dial), ``"shed"`` drops it client-side, ``"accept"``
    submits anyway and eats the SLO miss.

    ``propagate_deadline=True`` additionally stamps each submission with an
    absolute server-side deadline of ``deadline_ms`` — the server then sheds
    anything that expires in its queues (counted under ``deadline_shed``)
    instead of finishing work the client stopped caring about.

    ``closed_loop=True`` switches the tenant from open-loop trace replay to
    ``clients`` think-time clients (:class:`~repro.serve.resilience.
    ClosedLoopClient`): each keeps one request outstanding, waits
    ``think_time_ms`` between accepted requests and backs off exponentially
    on rejection — the client behaviour that lets a metastable overload
    actually drain.  ``rate_rps`` and ``arrival`` are ignored for
    closed-loop tenants (the loop, not a trace, sets the rate).
    """

    name: str
    rate_rps: float = 20.0
    arrival: str = "poisson"
    qos: str = "standard"
    deadline_ms: float = 250.0
    on_breach: str = "degrade"
    quality: int = 75
    degraded_quality: int = 35
    image_size: int = 96
    kind: str = "reconstruct"
    num_images: int = 3
    seed: int = 0
    propagate_deadline: bool = False
    closed_loop: bool = False
    clients: int = 2
    think_time_ms: float = 50.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive")
        if self.arrival not in ARRIVAL_SHAPES:
            raise ValueError(f"arrival must be one of {ARRIVAL_SHAPES}")
        if not self.deadline_ms > 0:
            raise ValueError("deadline_ms must be positive")
        if self.on_breach not in BREACH_POLICIES:
            raise ValueError(f"on_breach must be one of {BREACH_POLICIES}")
        if self.kind not in ("reconstruct", "decode"):
            raise ValueError("kind must be 'reconstruct' or 'decode'")
        if self.num_images < 1:
            raise ValueError("num_images must be at least 1")
        if self.clients < 1:
            raise ValueError("clients must be at least 1")
        if self.think_time_ms < 0:
            raise ValueError("think_time_ms must be non-negative")

    def arrival_times(self, duration_s, rng):
        """This tenant's arrival trace (seconds from scenario start)."""
        if self.arrival == "diurnal":
            return diurnal_arrival_times(self.rate_rps, duration_s, rng,
                                         period_s=duration_s, depth=0.8)
        if self.arrival == "bursty":
            return bursty_arrival_times(self.rate_rps, duration_s, rng,
                                        burst_factor=6.0, duty=0.2, period_s=1.0)
        return poisson_arrival_times(self.rate_rps, duration_s, rng)


@dataclass(frozen=True)
class ChaosSpec:
    """Faults injected while a scenario replays.

    Times are seconds from scenario start.  ``corrupt_fraction`` damages that
    share of submitted payloads through a :class:`FaultInjector`
    (``corrupt_bit_flips`` flips and/or truncation to ``corrupt_truncate_to``)
    — those requests must fail *gracefully*, never crash a worker.
    ``exhaust_shm_at_s`` leases every free ring slot under a sentinel owner
    for ``exhaust_shm_duration_s``, forcing the per-response queue fallback.
    """

    kill_shard_at_s: tuple = ()
    freeze_shard_at_s: tuple = ()
    freeze_duration_s: float = 1.0
    corrupt_fraction: float = 0.0
    corrupt_bit_flips: int = 64
    corrupt_truncate_to: float = 1.0
    exhaust_shm_at_s: tuple = ()
    exhaust_shm_duration_s: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.corrupt_fraction <= 1.0:
            raise ValueError("corrupt_fraction must be in [0, 1]")
        if not self.freeze_duration_s > 0:
            raise ValueError("freeze_duration_s must be positive")
        if not self.exhaust_shm_duration_s > 0:
            raise ValueError("exhaust_shm_duration_s must be positive")
        # build once to validate the injector parameters up front
        if self.corrupt_fraction > 0:
            self.injector()

    @property
    def any_faults(self):
        return bool(self.kill_shard_at_s or self.freeze_shard_at_s
                    or self.corrupt_fraction > 0 or self.exhaust_shm_at_s)

    def injector(self):
        """A fresh payload injector for one scenario run (stateful per run)."""
        return FaultInjector(bit_flips=self.corrupt_bit_flips,
                             truncate_to=self.corrupt_truncate_to,
                             seed=self.seed)


@dataclass(frozen=True)
class ResilienceSpec:
    """Client-side retry/hedge configuration for a scenario's tenants.

    When present (and ``enabled``), every tenant submits through its own
    :class:`~repro.serve.resilience.ResilientClient` built from these
    parameters, so transient infra errors (shard crashes, admission
    rejections) retry under a token-bucket budget instead of surfacing to
    the accounting as failures.  ``budget_ratio=None`` disables the budget —
    every retryable error retries up to ``max_attempts``, which is the
    configuration the ``retry-storm`` scenario demonstrates melting down.
    ``hedge_after_ms`` enables request hedging (a number of milliseconds, or
    ``"p95"`` to track the client's own observed p95 latency).
    """

    enabled: bool = True
    max_attempts: int = 3
    base_backoff_ms: float = 10.0
    max_backoff_ms: float = 200.0
    budget_ratio: float = 0.1
    budget_burst: float = 10.0
    hedge_after_ms: object = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_ms < 0:
            raise ValueError("base_backoff_ms must be non-negative")
        if self.max_backoff_ms < self.base_backoff_ms:
            raise ValueError("max_backoff_ms must be >= base_backoff_ms")
        if self.budget_ratio is not None and self.budget_ratio < 0:
            raise ValueError("budget_ratio must be non-negative or None")
        if not self.budget_burst >= 1:
            raise ValueError("budget_burst must be at least 1")
        if (self.hedge_after_ms is not None and self.hedge_after_ms != "p95"
                and not float(self.hedge_after_ms) > 0):
            raise ValueError("hedge_after_ms must be positive, 'p95' or None")

    def policy(self):
        """A fresh :class:`RetryPolicy` (own budget bucket) for one client."""
        budget = (RetryBudget(ratio=self.budget_ratio, burst=self.budget_burst)
                  if self.budget_ratio is not None else None)
        return RetryPolicy(max_attempts=self.max_attempts,
                           base_backoff_s=self.base_backoff_ms * 1e-3,
                           max_backoff_s=self.max_backoff_ms * 1e-3,
                           budget=budget)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named multi-tenant trace plus the chaos applied while it replays.

    ``server_hints`` are ``(key, value)`` pairs the CLI applies when building
    the :class:`~repro.serve.sharding.ShardedCompressionServer` for this
    scenario (e.g. a short watchdog interval for freeze chaos, or tiny shm
    slots so responses overflow to the queue path); the harness itself never
    reads them, so a caller with its own server can ignore them.
    """

    name: str
    tenants: tuple
    duration_s: float = 8.0
    chaos: ChaosSpec = field(default_factory=ChaosSpec)
    seed: int = 0
    description: str = ""
    server_hints: tuple = ()
    resilience: ResilienceSpec = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if not self.duration_s > 0:
            raise ValueError("duration_s must be positive")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if self.resilience is not None and not isinstance(self.resilience,
                                                          ResilienceSpec):
            raise ValueError("resilience must be a ResilienceSpec or None")

    # ------------------------------------------------------------------ #
    # JSON round-trip (``serve-bench --scenario-file``)
    # ------------------------------------------------------------------ #
    def to_dict(self):
        """Plain-dict form of the spec (nested specs become dicts)."""
        return asdict(self)

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON).

        Every validation error — an unknown field, a missing required field,
        a value a spec's ``__post_init__`` rejects — surfaces as a
        ``ValueError`` naming the offending field and the spec it belongs
        to, so ``serve-bench --scenario-file`` fails with a usable message
        instead of a traceback.
        """
        if not isinstance(data, dict):
            raise ValueError("a scenario spec must be a JSON object")
        data = dict(data)
        tenants = data.pop("tenants", None)
        if not isinstance(tenants, (list, tuple)) or not tenants:
            raise ValueError(
                "field 'tenants' must be a non-empty list of tenant objects")
        data["tenants"] = tuple(
            _spec_from_dict(TenantSpec, entry, f"tenants[{index}]")
            for index, entry in enumerate(tenants))
        chaos = data.pop("chaos", None)
        if chaos is not None:
            for key in ("kill_shard_at_s", "freeze_shard_at_s", "exhaust_shm_at_s"):
                if key in chaos:
                    chaos = dict(chaos)
                    chaos[key] = tuple(chaos[key])
            data["chaos"] = _spec_from_dict(ChaosSpec, chaos, "chaos")
        resilience = data.pop("resilience", None)
        if resilience is not None:
            data["resilience"] = _spec_from_dict(ResilienceSpec, resilience,
                                                 "resilience")
        hints = data.pop("server_hints", None)
        if hints is not None:
            try:
                data["server_hints"] = tuple((str(key), value)
                                             for key, value in hints)
            except (TypeError, ValueError) as error:
                raise ValueError(
                    "field 'server_hints' must be a list of [key, value] "
                    f"pairs: {error}") from error
        return _spec_from_dict(cls, data, "scenario")

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"scenario file is not valid JSON: {error}") from error
        return cls.from_dict(data)


def _spec_from_dict(spec_cls, data, context):
    """Construct a spec dataclass, converting constructor failures into
    ``ValueError``\\ s that name the bad field and where it lives."""
    if not isinstance(data, dict):
        raise ValueError(f"{context} must be a JSON object")
    valid = {spec_field.name for spec_field in
             spec_cls.__dataclass_fields__.values()}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ValueError(
            f"{context}: unknown field(s) {unknown}; valid fields are "
            f"{sorted(valid)}")
    try:
        return spec_cls(**data)
    except TypeError as error:  # missing required field, wrong shape
        raise ValueError(f"{context}: {error}") from error
    except ValueError as error:
        raise ValueError(f"{context}: {error}") from error


# --------------------------------------------------------------------------- #
# workload construction
# --------------------------------------------------------------------------- #
def scenario_image(size, seed_value=0):
    """A smooth synthetic RGB frame (photographic-ish statistics for JPEG)."""
    rng = np.random.default_rng(seed_value)
    base = rng.random((size, size, 3))
    for axis in (0, 1):
        base = 0.25 * np.roll(base, 1, axis) + 0.5 * base + 0.25 * np.roll(base, -1, axis)
    return np.clip(base, 0.0, 1.0)


@dataclass
class Workload:
    """Pre-encoded packages for every tenant of one scenario."""

    scenario: ScenarioSpec
    config: EaszConfig
    model: object
    primary: dict          # tenant name -> list of EaszCompressed
    degraded: dict         # tenant name -> list of EaszCompressed

    def package_for(self, tenant, index, degraded=False):
        pool = self.degraded if degraded else self.primary
        packages = pool[tenant.name]
        return packages[index % len(packages)]


def build_workload(scenario, config=None, model=None):
    """Encode each tenant's frames at its primary and degraded qualities.

    Encoding happens once, up front: replay then measures the *serving* path
    only, and the degraded variants are ready the instant admission needs to
    downshift (a real edge fleet would re-encode at the camera; here the
    pre-encoded pool stands in for that).
    """
    config = config or EaszConfig()
    model = model if model is not None else EaszReconstructor(config)
    mask = proposed_mask(config.grid_size, config.erase_per_row,
                         config.intra_row_min_distance, seed=scenario.seed)
    primary, degraded = {}, {}
    for tenant in scenario.tenants:
        images = [scenario_image(tenant.image_size,
                                 seed_value=1000 * tenant.seed + index)
                  for index in range(tenant.num_images)]
        qualities = {tenant.quality, tenant.degraded_quality}
        encoded = {}
        for quality in qualities:
            encoder = EaszEncoder(config, base_codec=JpegCodec(quality=quality),
                                  seed=tenant.seed)
            encoded[quality] = encoder.encode_batch(images, mask=mask)
        primary[tenant.name] = encoded[tenant.quality]
        degraded[tenant.name] = encoded[tenant.degraded_quality]
    return Workload(scenario=scenario, config=config, model=model,
                    primary=primary, degraded=degraded)


def corrupt_package(package, injector):
    """A shallow copy of ``package`` whose codec payload went through ``injector``.

    Only the copies are touched — the workload's pre-encoded packages are
    shared across the whole replay and must stay pristine.
    """
    damaged_codec = copy.copy(package.codec_payload)
    damaged_codec.payload = injector.apply(package.codec_payload.payload)
    damaged = copy.copy(package)
    damaged.codec_payload = damaged_codec
    return damaged


# --------------------------------------------------------------------------- #
# chaos driver
# --------------------------------------------------------------------------- #
class ChaosDriver:
    """Replays a :class:`ChaosSpec`'s process/ring faults on a schedule.

    Runs as a daemon thread beside the trace replay.  Shard faults need the
    sharded server's introspection surface (``live_shard_indices`` /
    ``shard_process``); against a threaded server those events are skipped
    and logged, so payload-corruption-only scenarios still run anywhere.
    """

    #: Ring-slot leases taken during exhaustion use this owner offset so they
    #: can never collide with a real shard index.
    SENTINEL_OWNER_OFFSET = 1024

    def __init__(self, server, chaos, rng):
        self.server = server
        self.chaos = chaos
        self.rng = rng
        self.events = []  # appended only by the driver thread, read after join
        self._thread = None
        self._stop = threading.Event()
        schedule = []
        for at_s in chaos.kill_shard_at_s:
            schedule.append((float(at_s), "kill"))
        for at_s in chaos.freeze_shard_at_s:
            schedule.append((float(at_s), "freeze"))
        for at_s in chaos.exhaust_shm_at_s:
            schedule.append((float(at_s), "exhaust-shm"))
        self._schedule = sorted(schedule)

    # ------------------------------------------------------------------ #
    def start(self, started_at):
        if not self._schedule:
            return self
        self._thread = threading.Thread(
            target=self._run, args=(started_at,), name="chaos-driver", daemon=True)
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _log(self, at_s, kind, detail):
        self.events.append({"at_s": round(float(at_s), 3), "kind": kind,
                            "detail": detail})

    # ------------------------------------------------------------------ #
    def _pick_victim(self):
        indices = getattr(self.server, "live_shard_indices", None)
        if indices is None:
            return None
        alive = indices()
        if not alive:
            return None
        return int(self.rng.choice(alive))

    def _run(self, started_at):
        for at_s, kind in self._schedule:
            while not self._stop.is_set():
                remaining = at_s - (time.monotonic() - started_at)
                if remaining <= 0:
                    break
                time.sleep(min(remaining, 0.05))
            if self._stop.is_set():
                return
            elapsed = time.monotonic() - started_at
            if kind == "kill":
                self._kill(elapsed)
            elif kind == "freeze":
                self._freeze(elapsed)
            elif kind == "exhaust-shm":
                self._exhaust_shm(elapsed)

    def _kill(self, elapsed):
        victim = self._pick_victim()
        if victim is None:
            self._log(elapsed, "kill", "skipped: no shard introspection / none alive")
            return
        process = self.server.shard_process(victim)
        if process is None or not process.is_alive():
            self._log(elapsed, "kill", f"skipped: shard {victim} already down")
            return
        process.kill()
        self._log(elapsed, "kill", f"SIGKILL shard {victim} (pid {process.pid})")

    def _freeze(self, elapsed):
        victim = self._pick_victim()
        if victim is None:
            self._log(elapsed, "freeze", "skipped: no shard introspection / none alive")
            return
        process = self.server.shard_process(victim)
        if process is None or process.pid is None or not process.is_alive():
            self._log(elapsed, "freeze", f"skipped: shard {victim} already down")
            return
        pid = process.pid
        try:
            os.kill(pid, signal.SIGSTOP)
        except ProcessLookupError:
            self._log(elapsed, "freeze", f"skipped: shard {victim} died first")
            return
        self._log(elapsed, "freeze",
                  f"SIGSTOP shard {victim} (pid {pid}) for "
                  f"{self.chaos.freeze_duration_s:.1f}s")
        self._stop.wait(self.chaos.freeze_duration_s)
        try:
            os.kill(pid, signal.SIGCONT)
            detail = f"SIGCONT shard {victim} (pid {pid})"
        except ProcessLookupError:
            # the watchdog's hang detector killed it mid-freeze — exactly the
            # recovery path this fault exists to exercise
            detail = f"shard {victim} (pid {pid}) was reaped while frozen"
        self._log(elapsed + self.chaos.freeze_duration_s, "thaw", detail)

    def _exhaust_shm(self, elapsed):
        ring_getter = getattr(self.server, "shm_ring", None)
        ring = ring_getter() if ring_getter is not None else None
        if ring is None:
            self._log(elapsed, "exhaust-shm", "skipped: no shm ring on this server")
            return
        owner = self.SENTINEL_OWNER_OFFSET
        leased = 0
        while True:
            lease = ring.claim(owner)
            if lease is None:
                break
            leased += 1
        self._log(elapsed, "exhaust-shm",
                  f"leased {leased}/{ring.num_slots} slots for "
                  f"{self.chaos.exhaust_shm_duration_s:.1f}s")
        self._stop.wait(self.chaos.exhaust_shm_duration_s)
        freed = ring.reclaim(owner)
        self._log(elapsed + self.chaos.exhaust_shm_duration_s, "release-shm",
                  f"reclaimed {freed} sentinel-leased slots")


# --------------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------------- #
@dataclass
class TenantReport:
    """One tenant's verdict: observed latency + SLO vs the model's prediction."""

    name: str
    qos: str
    arrival: str
    deadline_ms: float
    offered: int
    submitted: int
    completed: int
    degraded: int
    shed: int
    admission_rejected: int
    infra_failures: int
    graceful_rejections: int
    decoder_crashes: int
    deadline_misses: int
    slo_miss_rate: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    predicted_wait_ms_mean: float
    deadline_shed: int = 0
    retries: int = 0
    hedges: int = 0
    budget_denied: int = 0


@dataclass
class ScenarioReport:
    """Machine-readable outcome of one scenario replay (the CI artifact)."""

    scenario: str
    description: str
    duration_s: float
    servers: int
    offered: int
    submitted: int
    completed: int
    futures_lost: int
    futures_duplicated: int
    decoder_crashes: int
    utilisation: float
    service_time_per_image_ms: float
    saturated: bool
    tenants: list = field(default_factory=list)
    chaos_events: list = field(default_factory=list)
    watchdog_restarts: int = 0
    retries: int = 0
    hedges: int = 0
    deadline_shed: int = 0

    def ok(self):
        """The chaos invariants: every future resolved exactly once, and a
        damaged payload never took a worker down."""
        return (self.futures_lost == 0 and self.futures_duplicated == 0
                and self.decoder_crashes == 0)

    def headline(self):
        verdict = "OK" if self.ok() else (
            f"VIOLATION lost={self.futures_lost} dup={self.futures_duplicated} "
            f"crashes={self.decoder_crashes}")
        worst = max(self.tenants, key=lambda t: t.slo_miss_rate, default=None)
        tail = (f", worst tenant {worst.name} misses "
                f"{worst.slo_miss_rate * 100:.1f}% (p99 {worst.latency_p99_ms:.0f} ms "
                f"vs {worst.deadline_ms:.0f} ms budget)" if worst else "")
        return (f"{self.scenario}: {verdict} — {self.completed}/{self.offered} served "
                f"on {self.servers} server(s), {len(self.chaos_events)} chaos "
                f"event(s){tail}")

    def to_dict(self):
        return asdict(self)

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)


# --------------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------------- #
class _TenantState:
    """Mutable per-tenant accounting (all fields guarded by the runner's lock)."""

    __slots__ = ("offered", "submitted", "completed", "degraded", "shed",
                 "admission_rejected", "infra_failures", "graceful_rejections",
                 "decoder_crashes", "deadline_misses", "deadline_shed",
                 "latencies_s", "predicted_waits_ms")

    def __init__(self):
        self.offered = 0
        self.submitted = 0
        self.completed = 0
        self.degraded = 0
        self.shed = 0
        self.admission_rejected = 0
        self.infra_failures = 0
        self.graceful_rejections = 0
        self.decoder_crashes = 0
        self.deadline_misses = 0
        self.deadline_shed = 0
        self.latencies_s = []
        self.predicted_waits_ms = []


class ScenarioRunner:
    """Replays one scenario against a live server and renders the report.

    The runner is the *client side* of the story: it paces submissions along
    the merged tenant timeline, decides accept/degrade/shed per request from
    the live M/D/c estimate, damages the configured fraction of payloads, and
    accounts every future's resolution exactly once.  Server-side faults run
    concurrently in the :class:`ChaosDriver`.
    """

    #: How often the stats sampler refreshes the service-time estimate.  The
    #: sharded server's snapshot polls shard control pipes, so per-request
    #: probing is off the table; a few-hundred-ms-stale estimate is fine for
    #: admission (service times drift slowly).
    SAMPLE_INTERVAL_S = 0.3

    #: Sliding window for the arrival-rate estimate fed to the M/D/c model.
    RATE_WINDOW_S = 2.0

    def __init__(self, server, scenario, workload, drain_timeout_s=60.0):
        if workload.scenario is not scenario and workload.scenario.name != scenario.name:
            raise ValueError("workload was built for a different scenario")
        self.server = server
        self.scenario = scenario
        self.workload = workload
        self.drain_timeout_s = float(drain_timeout_s)
        self.servers = max(int(getattr(server, "parallelism", 1) or 1), 1)
        self._lock = threading.Lock()
        self._tenants = {t.name: _TenantState() for t in scenario.tenants}  # guarded-by: _lock
        self._resolutions = {}  # guarded-by: _lock — submission id -> callback count
        self._recent_arrivals = deque()  # guarded-by: _lock — monotonic stamps
        self._service_time_ms = float("nan")  # guarded-by: _lock
        self._sampler = None
        self._sampler_stop = threading.Event()
        self._last_totals = None  # sampler-thread private
        self._submission_ids = itertools.count()  # thread-safe allocator (CPython)
        self._driver_events = []  # final after ChaosDriver.stop()
        # one ResilientClient per tenant: retries and hedges stay attributed
        # to the tenant that caused them, and each tenant gets its own retry
        # budget (a batch tenant's retries can't starve a premium tenant's)
        self._clients = {}
        spec = scenario.resilience
        if spec is not None and spec.enabled:
            for tenant in scenario.tenants:
                self._clients[tenant.name] = ResilientClient(
                    server, retry_policy=spec.policy(),
                    hedge_after_ms=spec.hedge_after_ms,
                    seed=zlib.crc32(tenant.name.encode()))

    # ------------------------------------------------------------------ #
    # admission estimate
    # ------------------------------------------------------------------ #
    def _sample_once(self):
        try:
            snapshot = self.server.stats.snapshot()
        except Exception:  # noqa: BLE001 - a dying pool must not kill the sampler
            return
        totals = (snapshot.get("service_seconds_total", 0.0),
                  snapshot.get("completed", 0))
        if self._last_totals is not None:
            delta_service = totals[0] - self._last_totals[0]
            delta_completed = totals[1] - self._last_totals[1]
            if delta_completed > 0 and delta_service >= 0:
                with self._lock:
                    self._service_time_ms = 1e3 * delta_service / delta_completed
        elif totals[1] > 0:
            with self._lock:
                self._service_time_ms = 1e3 * totals[0] / totals[1]
        self._last_totals = totals

    def _sampler_loop(self):
        while not self._sampler_stop.wait(self.SAMPLE_INTERVAL_S):
            self._sample_once()

    def _predict_response_ms_locked(self, now, package=None, kind="reconstruct"):
        """Predicted response time for an arrival admitted right now.

        Against a sharded server this asks the router where *this* package
        would land (:meth:`~repro.serve.sharding.ShardedCompressionServer.
        predicted_shard_depth`) and predicts from that shard's own in-flight
        depth — with consistent routing one hot key can stack a single
        shard's window while the pool average looks idle, and a pool-level
        estimate would admit straight into the hot shard's queue.  Servers
        without per-shard introspection (the threaded server) fall back to
        the pool-aggregate M/D/c wait at the recent admitted-arrival rate.
        NaN until the first service-time sample lands (admission then
        accepts — predicting from nothing would shed traffic a cold pool
        could actually serve).
        """
        service_ms = self._service_time_ms
        if not np.isfinite(service_ms) or service_ms <= 0:
            return float("nan")
        predictor = getattr(self.server, "predicted_shard_depth", None)
        if predictor is not None and package is not None:
            # lock order: runner._lock (held here) -> server._lock inside the
            # predictor; the server never calls back into the runner, so the
            # order is acyclic
            shard_index, depth = predictor(package, kind)
            if shard_index is not None:
                # the routed shard drains its window roughly one service time
                # per request (workers_per_shard defaults to 1; batching only
                # makes this estimate conservative)
                return (depth + 1) * service_ms
        cutoff = now - self.RATE_WINDOW_S
        while self._recent_arrivals and self._recent_arrivals[0] < cutoff:
            self._recent_arrivals.popleft()
        rate_rps = len(self._recent_arrivals) / self.RATE_WINDOW_S
        if rate_rps <= 0:
            return service_ms
        wait_s = md_c_wait_s(rate_rps, service_ms / 1e3, self.servers)
        return wait_s * 1e3 + service_ms

    # ------------------------------------------------------------------ #
    # submission plumbing
    # ------------------------------------------------------------------ #
    def _classify_locked(self, state, error):
        # deadline sheds first: DeadlineExceededError is a RuntimeError and
        # must never be mistaken for a decoder crash — a shed is the server
        # *correctly* dropping work the client stopped waiting for
        if isinstance(error, DeadlineExceededError):
            state.deadline_shed += 1
        elif isinstance(error, INFRA_ERRORS):
            state.infra_failures += 1
        elif isinstance(error, GRACEFUL_ERRORS):
            state.graceful_rejections += 1
        else:
            state.decoder_crashes += 1

    def _completion_callback(self, submission_id, tenant_name, deadline_ms):
        def _on_done(pending):
            try:
                response = pending.result(timeout=0)
            except Exception as error:  # noqa: BLE001 - classified, reported
                with self._lock:
                    self._resolutions[submission_id] += 1
                    self._classify_locked(self._tenants[tenant_name], error)
                return
            with self._lock:
                self._resolutions[submission_id] += 1
                state = self._tenants[tenant_name]
                state.completed += 1
                state.latencies_s.append(response.latency_s)
                if response.latency_s * 1e3 > deadline_ms:
                    state.deadline_misses += 1
        return _on_done

    def _submit_one(self, tenant, package, submission_id):
        """Submit under exactly-once accounting; returns the future or None.

        Tenants of a resilient scenario submit through their own
        :class:`ResilientClient` (which never raises synchronously — even an
        immediate admission rejection settles through the future, after the
        retry policy has had its say); everyone else goes straight to
        ``server.submit``.
        """
        deadline_s = (deadline_after_ms(tenant.deadline_ms)
                      if tenant.propagate_deadline else None)
        submitter = self._clients.get(tenant.name) or self.server
        with self._lock:
            self._resolutions[submission_id] = 0
            self._tenants[tenant.name].submitted += 1
            self._recent_arrivals.append(time.monotonic())
        try:
            pending = submitter.submit(package, kind=tenant.kind,
                                       deadline_s=deadline_s)
        except (ServerOverloadedError, QueueClosedError):
            with self._lock:
                del self._resolutions[submission_id]
                state = self._tenants[tenant.name]
                state.submitted -= 1
                state.admission_rejected += 1
            return None
        except Exception:  # noqa: BLE001 - a mid-chaos submit error is an infra outcome, not a run abort
            with self._lock:
                del self._resolutions[submission_id]
                self._tenants[tenant.name].infra_failures += 1
            return None
        pending.add_done_callback(
            self._completion_callback(submission_id, tenant.name, tenant.deadline_ms))
        return pending

    # ------------------------------------------------------------------ #
    def _build_timeline(self, rng):
        """Merged (arrival_s, tenant, frame_index) schedule across open-loop
        tenants (closed-loop tenants pace themselves, so they have no trace)."""
        timeline = []
        for tenant in self.scenario.tenants:
            if tenant.closed_loop:
                continue
            # crc32, not hash(): str hashing is salted per process and would
            # make the trace non-reproducible across runs
            tenant_rng = np.random.default_rng(
                (self.scenario.seed, tenant.seed, zlib.crc32(tenant.name.encode())))
            times = tenant.arrival_times(self.scenario.duration_s, tenant_rng)
            for frame_index, at_s in enumerate(times):
                timeline.append((float(at_s), tenant, frame_index))
        timeline.sort(key=lambda item: item[0])
        return timeline

    def _closed_loop_clients(self, stop_event, pendings):
        """Build the think-time clients for every closed-loop tenant."""
        clients = []
        for tenant in self.scenario.tenants:
            if not tenant.closed_loop:
                continue
            for position in range(tenant.clients):
                clients.append(self._spawn_loop_client(tenant, position,
                                                       stop_event, pendings))
        return clients

    def _spawn_loop_client(self, tenant, position, stop_event, pendings):
        def do_request(client):
            with self._lock:
                self._tenants[tenant.name].offered += 1
            package = self.workload.package_for(tenant, client.requests)
            pending = self._submit_one(tenant, package,
                                       next(self._submission_ids))
            if pending is None:
                return False  # admission rejected synchronously: back off
            # CPython list.append is atomic; the drain loop reads only after
            # every client thread has been joined
            pendings.append(pending)
            try:
                pending.result(timeout=self.drain_timeout_s)
            except INFRA_ERRORS:
                return False  # overload / crash / open circuit: back off
            except Exception:  # noqa: BLE001 - graceful verdict or deadline shed: the server is healthy, keep pace
                return True
            return True

        return ClosedLoopClient(do_request,
                                think_time_s=tenant.think_time_ms * 1e-3,
                                stop_event=stop_event,
                                name=f"closed-loop-{tenant.name}-{position}")

    def _warmup(self):
        """One request per tenant outside the clock: caches + a service sample."""
        pendings = []
        for tenant in self.scenario.tenants:
            package = self.workload.package_for(tenant, 0)
            pendings.append((self.server.submit(package, kind=tenant.kind), tenant))
        for pending, tenant in pendings:
            pending.result(timeout=self.drain_timeout_s)
        self._sample_once()

    def run(self, warmup=True):
        """Replay the scenario; blocks until drained, returns the report."""
        rng = np.random.default_rng(self.scenario.seed)
        corrupt_rng = np.random.default_rng(self.scenario.seed + 1)
        injector = self.scenario.chaos.injector()
        timeline = self._build_timeline(rng)
        with self._lock:
            for _, tenant, _ in timeline:
                self._tenants[tenant.name].offered += 1
        if warmup:
            self._warmup()
        self._sampler_stop.clear()
        self._sampler = threading.Thread(target=self._sampler_loop,
                                         name="scenario-sampler", daemon=True)
        self._sampler.start()
        driver = ChaosDriver(self.server, self.scenario.chaos, rng)
        started = time.monotonic()
        driver.start(started)
        pendings = []
        loop_stop = threading.Event()
        loop_clients = self._closed_loop_clients(loop_stop, pendings)
        for client in loop_clients:
            client.start()
        try:
            for at_s, tenant, frame_index in timeline:
                delay = at_s - (time.monotonic() - started)
                if delay > 0:
                    time.sleep(delay)
                now = time.monotonic()
                package = self.workload.package_for(tenant, frame_index)
                with self._lock:
                    predicted_ms = self._predict_response_ms_locked(
                        now, package=package, kind=tenant.kind)
                    state = self._tenants[tenant.name]
                    state.predicted_waits_ms.append(predicted_ms)
                degraded = False
                breach = np.isfinite(predicted_ms) and predicted_ms > tenant.deadline_ms
                if breach and tenant.on_breach == "shed":
                    with self._lock:
                        state.shed += 1
                    continue
                if breach and tenant.on_breach == "degrade":
                    degraded = True
                    package = self.workload.package_for(tenant, frame_index,
                                                        degraded=True)
                if (self.scenario.chaos.corrupt_fraction > 0
                        and corrupt_rng.random() < self.scenario.chaos.corrupt_fraction):
                    package = corrupt_package(package, injector)
                pending = self._submit_one(tenant, package,
                                           next(self._submission_ids))
                if pending is not None:
                    pendings.append(pending)
                    if degraded:
                        with self._lock:
                            state.degraded += 1
            if loop_clients:
                # closed-loop tenants keep going for the full scenario window
                # even after the open-loop trace (possibly empty) runs out
                remaining = self.scenario.duration_s - (time.monotonic() - started)
                if remaining > 0:
                    time.sleep(remaining)
        finally:
            loop_stop.set()
            for client in loop_clients:
                client.join(timeout=self.drain_timeout_s)
            driver.stop()
            self._driver_events = list(driver.events)
            self._sampler_stop.set()
            if self._sampler is not None:
                self._sampler.join(timeout=5.0)
        elapsed = time.monotonic() - started
        unresolved = 0
        deadline = time.monotonic() + self.drain_timeout_s
        for pending in pendings:
            remaining = max(deadline - time.monotonic(), 0.0)
            try:
                pending.result(timeout=remaining)
            except Exception:  # noqa: BLE001 - outcome already recorded by the callback
                pass
            if not pending.done():
                unresolved += 1
        # a future the drain saw unresolved may still resolve microseconds
        # later; give callbacks one scheduling beat before reading counters
        if unresolved:
            time.sleep(0.2)
        for client in self._clients.values():
            client.close()  # cancel any backoff/hedge timers still armed
        return self._render_report(elapsed)

    # ------------------------------------------------------------------ #
    def _render_report(self, elapsed):
        snapshot = None
        try:
            snapshot = self.server.stats.snapshot()
        except Exception:  # noqa: BLE001 - report what the run measured anyway
            snapshot = {}
        client_stats = {name: client.stats()
                        for name, client in self._clients.items()}
        with self._lock:
            lost = sum(1 for count in self._resolutions.values() if count == 0)
            duplicated = sum(1 for count in self._resolutions.values() if count > 1)
            service_ms = self._service_time_ms
            tenants = []
            for tenant in self.scenario.tenants:
                state = self._tenants[tenant.name]
                resilience = client_stats.get(tenant.name, {})
                latency = summarise_latency_ms(state.latencies_s)
                finite_predictions = [p for p in state.predicted_waits_ms
                                      if np.isfinite(p)]
                missed = (state.deadline_misses + state.shed
                          + state.admission_rejected + state.infra_failures
                          + state.graceful_rejections + state.decoder_crashes
                          + state.deadline_shed)
                tenants.append(TenantReport(
                    name=tenant.name,
                    qos=tenant.qos,
                    arrival=tenant.arrival,
                    deadline_ms=tenant.deadline_ms,
                    offered=state.offered,
                    submitted=state.submitted,
                    completed=state.completed,
                    degraded=state.degraded,
                    shed=state.shed,
                    admission_rejected=state.admission_rejected,
                    infra_failures=state.infra_failures,
                    graceful_rejections=state.graceful_rejections,
                    decoder_crashes=state.decoder_crashes,
                    deadline_misses=state.deadline_misses,
                    slo_miss_rate=missed / max(state.offered, 1),
                    latency_p50_ms=latency["p50_ms"],
                    latency_p99_ms=latency["p99_ms"],
                    latency_mean_ms=latency["mean_ms"],
                    predicted_wait_ms_mean=(float(np.mean(finite_predictions))
                                            if finite_predictions else float("nan")),
                    deadline_shed=state.deadline_shed,
                    retries=int(resilience.get("retries", 0)),
                    hedges=int(resilience.get("hedges", 0)),
                    budget_denied=int(resilience.get("budget_denied", 0)),
                ))
        offered = sum(report.offered for report in tenants)
        submitted = sum(report.submitted for report in tenants)
        completed = sum(report.completed for report in tenants)
        crashes = sum(report.decoder_crashes for report in tenants)
        utilisation = float("nan")
        if np.isfinite(service_ms) and elapsed > 0:
            # submission-based by design: work the pool had to *refuse* still
            # counts toward pressure, so a retry storm that floods admission
            # reads as >1 (saturated) even though completions stayed flat
            utilisation = (submitted / elapsed) * (service_ms / 1e3) / self.servers
        # utilisation >= 1 only condemns *open-loop* traffic: an open-loop
        # tenant keeps offering at its configured rate regardless of service,
        # so >= 1 means the backlog (and every latency number) is unbounded.
        # Closed-loop tenants self-limit — each client waits for its response
        # before thinking again — so a fully-busy pool is their equilibrium
        # and the per-request latencies stay meaningful.
        open_loop = any(not tenant.closed_loop for tenant in self.scenario.tenants)
        saturated = (open_loop
                     and bool(np.isfinite(utilisation) and utilisation >= 1.0)) or (
            submitted == 0 and offered > 0)
        watchdog = snapshot.get("watchdog", {}) if isinstance(snapshot, dict) else {}
        restarts = watchdog.get("restarts_total", 0) if isinstance(watchdog, dict) else 0
        return ScenarioReport(
            scenario=self.scenario.name,
            description=self.scenario.description,
            duration_s=elapsed,
            servers=self.servers,
            offered=offered,
            submitted=submitted,
            completed=completed,
            futures_lost=lost,
            futures_duplicated=duplicated,
            decoder_crashes=crashes,
            utilisation=utilisation,
            service_time_per_image_ms=service_ms,
            saturated=saturated,
            tenants=tenants,
            chaos_events=list(self._driver_events),
            watchdog_restarts=int(restarts),
            retries=sum(report.retries for report in tenants),
            hedges=sum(report.hedges for report in tenants),
            deadline_shed=sum(report.deadline_shed for report in tenants),
        )


def run_scenario(scenario, server, config=None, model=None, workload=None,
                 warmup=True, drain_timeout_s=60.0):
    """Build the workload (unless given) and replay ``scenario`` on ``server``."""
    if workload is None:
        workload = build_workload(scenario, config=config, model=model)
    runner = ScenarioRunner(server, scenario, workload,
                            drain_timeout_s=drain_timeout_s)
    return runner.run(warmup=warmup)


# --------------------------------------------------------------------------- #
# the built-in matrix
# --------------------------------------------------------------------------- #
def builtin_scenarios():
    """The named scenario matrix the chaos CI replays nightly.

    Durations are single-digit seconds: long enough for the arrival shapes
    and the watchdog recovery loop to matter, short enough that the whole
    matrix stays inside a CI job.  ``server_hints`` tune the pool per
    scenario (short watchdog ticks for process chaos, a starved ring for the
    shm scenarios).
    """
    premium = TenantSpec(name="premium-cam", rate_rps=12.0, qos="premium",
                         deadline_ms=150.0, on_breach="degrade", quality=75,
                         degraded_quality=35, image_size=96, seed=1)
    standard = TenantSpec(name="standard-cam", rate_rps=18.0, qos="standard",
                          deadline_ms=400.0, on_breach="accept", quality=60,
                          degraded_quality=30, image_size=96, seed=2)
    batch = TenantSpec(name="batch-archive", rate_rps=8.0, qos="batch",
                       deadline_ms=1500.0, on_breach="shed", quality=85,
                       degraded_quality=50, image_size=128, kind="decode", seed=3)
    chaos_watchdog_hints = (("watchdog_interval_s", 0.2),
                            ("watchdog_backoff_s", 0.2),
                            ("watchdog_hang_timeout_s", 1.0),
                            ("queue_depth", 128))
    scenarios = [
        ScenarioSpec(
            name="steady-mix",
            description="Three QoS classes under plain Poisson load; the "
                        "no-chaos baseline every other scenario is read against.",
            tenants=(premium, standard, batch),
            duration_s=6.0,
        ),
        ScenarioSpec(
            name="diurnal-sweep",
            description="Day/night-shaped load: peaks offer 1.8x the mean, "
                        "troughs let the pool drain; admission should degrade "
                        "only near the peaks.",
            tenants=(
                TenantSpec(name="east-fleet", rate_rps=20.0, arrival="diurnal",
                           deadline_ms=250.0, on_breach="degrade", seed=11),
                TenantSpec(name="west-fleet", rate_rps=20.0, arrival="diurnal",
                           deadline_ms=250.0, on_breach="degrade", seed=12),
            ),
            duration_s=8.0,
        ),
        ScenarioSpec(
            name="burst-storm",
            description="A bursty tenant storms a steady one: 6x bursts at "
                        "20% duty must not blow the steady tenant's budget.",
            tenants=(
                TenantSpec(name="bursty-fleet", rate_rps=24.0, arrival="bursty",
                           deadline_ms=200.0, on_breach="degrade", seed=21),
                standard,
            ),
            duration_s=8.0,
        ),
        ScenarioSpec(
            name="kill-shards",
            description="SIGKILL a live shard twice mid-trace; the watchdog "
                        "restarts it and the reaper re-routes in-flight work — "
                        "no future may be lost or doubled.",
            tenants=(premium, standard),
            duration_s=8.0,
            chaos=ChaosSpec(kill_shard_at_s=(2.0, 5.0), seed=31),
            server_hints=chaos_watchdog_hints,
        ),
        ScenarioSpec(
            name="freeze-shard",
            description="SIGSTOP a shard for 1.5s with a 1s hang timeout: the "
                        "watchdog must detect the silent heartbeat, kill and "
                        "replace the frozen process.",
            tenants=(premium, standard),
            duration_s=8.0,
            chaos=ChaosSpec(freeze_shard_at_s=(2.5,), freeze_duration_s=1.5,
                            seed=41),
            server_hints=chaos_watchdog_hints,
        ),
        ScenarioSpec(
            name="corrupt-payloads",
            description="15% of payloads arrive bit-flipped or truncated; "
                        "every one must fail gracefully (ValueError-class), "
                        "never crash a worker.",
            tenants=(premium, standard),
            duration_s=6.0,
            chaos=ChaosSpec(corrupt_fraction=0.15, corrupt_bit_flips=96,
                            corrupt_truncate_to=0.7, seed=51),
        ),
        ScenarioSpec(
            name="shm-pressure",
            description="A starved 4-slot ring with oversized 128px responses "
                        "plus two full-ring exhaustion windows: every response "
                        "must fall back to the queue path, none may be lost.",
            tenants=(
                TenantSpec(name="big-frames", rate_rps=14.0, deadline_ms=600.0,
                           on_breach="accept", image_size=128, seed=61),
                premium,
            ),
            duration_s=7.0,
            chaos=ChaosSpec(exhaust_shm_at_s=(1.5, 4.0),
                            exhaust_shm_duration_s=1.0, seed=62),
            server_hints=(("shm_slots", 4), ("shm_slot_bytes", 1 << 16),
                          ("queue_depth", 128)),
        ),
        ScenarioSpec(
            name="chaos-mix",
            description="Everything at once: bursty+diurnal tenants, a kill, "
                        "a freeze, corrupted payloads and an shm-exhaustion "
                        "window — the nightly smoke of the full failure matrix.",
            tenants=(
                TenantSpec(name="bursty-fleet", rate_rps=18.0, arrival="bursty",
                           deadline_ms=250.0, on_breach="degrade", seed=71),
                TenantSpec(name="diurnal-fleet", rate_rps=14.0, arrival="diurnal",
                           deadline_ms=400.0, on_breach="accept", seed=72),
            ),
            duration_s=10.0,
            chaos=ChaosSpec(kill_shard_at_s=(3.0,), freeze_shard_at_s=(6.0,),
                            freeze_duration_s=1.5, corrupt_fraction=0.1,
                            corrupt_bit_flips=64, exhaust_shm_at_s=(8.0,),
                            exhaust_shm_duration_s=1.0, seed=73),
            server_hints=chaos_watchdog_hints,
        ),
        ScenarioSpec(
            name="retry-storm",
            description="Closed-loop clients hammer a deliberately shallow "
                        "admission queue with retries enabled: the retry "
                        "budget must cap the amplification so rejected work "
                        "cannot snowball into a metastable storm.",
            tenants=(
                TenantSpec(name="storm-fleet", rate_rps=10.0, qos="standard",
                           deadline_ms=800.0, on_breach="accept",
                           closed_loop=True, clients=4, think_time_ms=5.0,
                           image_size=96, seed=81),
                TenantSpec(name="steady-fleet", rate_rps=6.0, qos="premium",
                           deadline_ms=800.0, on_breach="accept",
                           closed_loop=True, clients=2, think_time_ms=20.0,
                           image_size=96, seed=82),
            ),
            duration_s=6.0,
            resilience=ResilienceSpec(max_attempts=4, base_backoff_ms=10.0,
                                      max_backoff_ms=150.0, budget_ratio=0.1,
                                      budget_burst=10.0),
            # depth 2 against 6 closed-loop clients: admission *must* reject
            # under collision, or the storm never forms and there is nothing
            # for the retry budget to cap
            server_hints=(("queue_depth", 2),),
        ),
        ScenarioSpec(
            name="metastable-recovery",
            description="A shard dies mid-run while closed-loop retrying "
                        "clients keep offering load: budgeted retries plus "
                        "the per-shard circuit breaker must ride out the "
                        "restart with zero client-visible infra failures.",
            tenants=(
                TenantSpec(name="loop-fleet", rate_rps=10.0, qos="standard",
                           deadline_ms=1200.0, on_breach="accept",
                           closed_loop=True, clients=4, think_time_ms=50.0,
                           image_size=96, seed=91),
                premium,
            ),
            duration_s=8.0,
            chaos=ChaosSpec(kill_shard_at_s=(3.0,), seed=92),
            resilience=ResilienceSpec(max_attempts=4, base_backoff_ms=20.0,
                                      max_backoff_ms=250.0, budget_ratio=0.2,
                                      budget_burst=10.0),
            server_hints=chaos_watchdog_hints,
        ),
        ScenarioSpec(
            name="oversized-response",
            description="Every response outgrows the 4KB shm slots outright: "
                        "the ring must be bypassed for the queue fallback on "
                        "each reply, with nothing lost or doubled.",
            tenants=(
                TenantSpec(name="wide-frames", rate_rps=14.0, deadline_ms=800.0,
                           on_breach="accept", image_size=96, seed=64),
                TenantSpec(name="wide-decode", rate_rps=8.0, deadline_ms=1200.0,
                           on_breach="accept", image_size=96, kind="decode",
                           seed=65),
            ),
            duration_s=6.0,
            server_hints=(("shm_slots", 4), ("shm_slot_bytes", 1 << 12),
                          ("queue_depth", 128)),
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}
