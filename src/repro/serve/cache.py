"""Per-worker LRU caches with hit/miss accounting.

Serving workers keep their own caches for the mask-derived artefacts the
decode path needs — :class:`repro.core.SqueezePlan` gather/scatter indices,
pixel-index scatter plans for batched reconstruction, and base-codec
instances (whose constructors bake the quality-scaled quantisation and
Huffman tables).  Worker-local caches avoid cross-thread contention on the
module-level caches and give the telemetry layer per-worker hit rates, which
is how cache sizing problems show up in production.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache:
    """A small least-recently-used cache with hit/miss statistics.

    Not thread-safe by design: every serving worker owns its caches outright,
    which is the whole point (no shared-state contention on the hot path).
    """

    def __init__(self, capacity=32, name="cache"):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, loader):
        """Return the cached value for ``key``, calling ``loader()`` on a miss."""
        entry = self._entries.get(key)
        if entry is not None or key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        value = loader()
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self):
        """Plain-dict snapshot for :class:`repro.serve.telemetry.ServerStats`."""
        return {
            "name": self.name,
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self):
        """Drop every entry (statistics are kept)."""
        self._entries.clear()
