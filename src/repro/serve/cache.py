"""Per-worker LRU caches with hit/miss accounting, plus the result cache.

Serving workers keep their own caches for the mask-derived artefacts the
decode path needs — :class:`repro.core.SqueezePlan` gather/scatter indices,
pixel-index scatter plans for batched reconstruction, and base-codec
instances (whose constructors bake the quality-scaled quantisation and
Huffman tables).  Worker-local caches avoid cross-thread contention on the
module-level caches and give the telemetry layer per-worker hit rates, which
is how cache sizing problems show up in production.

:class:`ResultCache` is different in kind: it is a *cross-request* cache
keyed on the digest of the request payload itself.  Static scenes (a parked
wildlife camera at night, an idle assembly line) ship byte-identical frames
for minutes at a time; decoding the same payload again is pure waste, so a
digest hit returns the finished pixels without touching the queue or the
workers at all.  It is shared by every submitter, hence locked, unlike the
worker-local :class:`LRUCache`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

__all__ = ["LRUCache", "ResultCache"]


class LRUCache:
    """A small least-recently-used cache with hit/miss statistics.

    Not thread-safe by design: every serving worker owns its caches outright,
    which is the whole point (no shared-state contention on the hot path).
    """

    def __init__(self, capacity=32, name="cache"):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, loader):
        """Return the cached value for ``key``, calling ``loader()`` on a miss."""
        entry = self._entries.get(key)
        if entry is not None or key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        value = loader()
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self):
        """Plain-dict snapshot for :class:`repro.serve.telemetry.ServerStats`."""
        return {
            "name": self.name,
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self):
        """Drop every entry (statistics are kept)."""
        self._entries.clear()


class ResultCache:
    """Thread-safe cross-request cache of finished images, keyed on payload digest.

    Every stored/returned image is copied so a caller mutating its response
    cannot corrupt what later cache hits see.  ``capacity == 0`` disables the
    cache entirely (every lookup misses, nothing is stored), which lets the
    servers keep one code path.
    """

    def __init__(self, capacity=256, name="results"):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self.name = name
        self._lock = threading.Lock()
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock
        self._entries = OrderedDict()  # guarded-by: _lock

    @staticmethod
    def digest(package, kind):
        """Stable digest of everything that determines a package's pixels.

        Covers the request kind, the erase mask, the base-codec payload and
        name/metadata, and the geometry.  Server-side constants (model
        weights, fill mode, config) are uniform per server instance, so they
        stay out of the key.
        """
        payload = package.codec_payload
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(kind.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(payload.codec_name.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(repr(sorted(payload.metadata.items())).encode("utf-8"))
        hasher.update(repr((tuple(package.grid_shape), tuple(package.original_shape),
                            tuple(package.squeezed_shape))).encode("utf-8"))
        hasher.update(package.mask_bytes)
        hasher.update(payload.payload)
        return hasher.digest()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self):
        return self.capacity > 0

    def lookup(self, key):
        """Return a copy of the cached image for ``key``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key) if self.capacity else None
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry.copy()

    def put(self, key, image, copy=True):
        """Store ``image`` under ``key`` (no-op when disabled).

        The stored array is copied by default so a caller mutating its own
        reference cannot corrupt later hits; pass ``copy=False`` only when
        handing over an array no one else will write (e.g. a read-only view
        of immutable wire bytes) to skip the defensive copy.
        """
        if not self.capacity:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = image.copy() if copy else image
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def _hit_rate_locked(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_rate(self):
        with self._lock:
            return self._hit_rate_locked()

    def stats(self):
        """Plain-dict snapshot for :class:`repro.serve.telemetry.ServerStats`.

        One lock span covers every counter so the snapshot is internally
        consistent (a concurrent lookup cannot land between the ``hits`` read
        and the ``hit_rate`` computation).
        """
        with self._lock:
            return {
                "name": self.name,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self._hit_rate_locked(),
            }

    def clear(self):
        with self._lock:
            self._entries.clear()
