"""Process-sharded serving: N worker processes behind one submission API.

The thread-based :class:`~repro.serve.server.CompressionServer` tops out at
one core: the elementwise stages of decode/reconstruct (dequantise, IDCT,
unsqueeze scatter, GELU) hold the GIL, so adding worker threads only
overlaps waiting, not compute.  :class:`ShardedCompressionServer` scales past
that by running *shards* — independent worker processes, each hosting its own
model weights, codec tables, squeeze/pixel-plan caches and a full threaded
``CompressionServer`` — behind the same ``submit()``/``PendingResult`` API.

Design points:

* **pickle-light wire format** — requests cross the process boundary as the
  existing ``EASZ`` transport container bytes (:func:`repro.core.pack_package`)
  plus plain ints/strings; responses come back as raw pixel buffers with
  shape/dtype and a plain-dict metadata header.  No live objects, no class
  pickling, so a shard can be restarted (or version-skewed) without poisoning
  the parent.
* **consistent routing with load spill** — a request's batch key (kind, mask
  bytes, geometry, codec) hashes to a *preferred* shard so shard-local plan
  and codec caches stay hot; when the preferred shard already has a full
  batch of work in flight the request spills to the least-loaded shard, so a
  single hot key still uses the whole pool.
* **graceful lifecycle** — shards signal readiness before the server accepts
  work, ``stop()`` drains every in-flight request before shutting shards
  down, and :meth:`restart_shard` replaces a shard (gracefully or by force)
  while the rest of the pool keeps serving.
* **aggregated telemetry** — ``stats.snapshot()`` polls each shard's
  :class:`~repro.serve.telemetry.ServerStats` over its control pipe and
  merges them (:func:`repro.serve.telemetry.aggregate_snapshots`), alongside
  the parent-side admission counters and the cross-request result cache.
* **zero-copy responses** — with ``use_shm=True`` (the default) shards write
  finished pixels straight into a :class:`~repro.serve.shm.ShmRing` of
  shared-memory slots and send only a tiny lease descriptor over the queue;
  the per-response ``tobytes`` + queue-pickle copies disappear.  Responses
  that outgrow a slot, a full ring, or a host without shared memory all
  fall back to the queue path per response (``ServeResponse.transport``
  says which path served each request; telemetry counts both).
* **shard health watchdog** — ``watchdog_interval_s`` starts a parent-side
  thread that checks each shard's process liveness and heartbeat every
  interval and auto-``restart_shard()``\\ s crashed shards with exponential
  backoff; restart counts and backoff state are part of the snapshot.
* **spill-aware mask affinity** — routing normally hashes the full batch
  key, but when one erase mask is observed with several image geometries
  (a multi-camera fleet sharing a mask template), ``affinity="auto"``
  switches that mask to mask-digest-only routing so all its traffic lands
  on one shard's warm plan caches; the load-spill rule is unchanged.
"""

from __future__ import annotations

import builtins
import hashlib
import itertools
import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import asdict

import numpy as np

from ..core.batch_engine import DEFAULT_CHUNK
from ..core.config import EaszConfig
from ..core.reconstruction import EaszReconstructor
from ..core.transport import pack_package, pixels_from_buffer, unpack_package
from .batcher import BatchPolicy
from .cache import ResultCache
from .queueing import (DeadlineExceededError, QueueClosedError,
                       ServerOverloadedError, deadline_expired)
from .server import (CompressionServer, PendingResult, ServeResponse,
                     try_resolve_from_result_cache)
from .shm import ShmRing, shm_available
from .telemetry import ServerStats, aggregate_snapshots

__all__ = ["ShardedCompressionServer", "ShardHandle", "ShardFailedError",
           "available_cpus"]

#: Default shared-memory ring geometry: slots sized for a 512² RGB float32
#: (or 256² RGB float64) response with headroom, kept modest so the ring fits
#: containers whose /dev/shm is capped at the Docker default of 64 MiB.
_DEFAULT_SHM_SLOT_BYTES = 4 << 20

# Default hang timeout when the watchdog runs (``watchdog_hang_timeout_s=
# "auto"``): shards stamp their heartbeat every loop iteration (<= 50 ms
# idle; batches never block the loop), so 30 s of silence from a live
# process means wedged, not busy — conservative by ~3 orders of magnitude.
_DEFAULT_HANG_TIMEOUT_S = 30.0


def available_cpus():
    """CPUs this process may run on (affinity-aware; sharding helps only >=2).

    The throughput benchmark and its perf-smoke guard both use this to decide
    whether a sharded measurement is meaningful on the host.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


class ShardFailedError(RuntimeError):
    """A shard process died (or was restarted) before resolving a request."""


# --------------------------------------------------------------------------- #
# shard-process side
# --------------------------------------------------------------------------- #
def _error_message(shard_index, request_id, error):
    return ("err", shard_index, request_id, type(error).__name__, str(error))


def _rebuild_error(type_name, message):
    """Best-effort reconstruction of a shard-side exception in the parent."""
    if type_name == "ServerOverloadedError":
        return ServerOverloadedError(message)
    if type_name == "QueueClosedError":
        return QueueClosedError(message)
    if type_name == "DeadlineExceededError":
        return DeadlineExceededError(message)
    candidate = getattr(builtins, type_name, None)
    if isinstance(candidate, type) and issubclass(candidate, Exception):
        try:
            return candidate(message)
        except Exception:  # noqa: BLE001 - constructor signature mismatch
            pass
    return ShardFailedError(f"{type_name}: {message}")


def _shard_main(shard_index, request_queue, response_queue, control_conn,
                config_kwargs, model_state, server_options, shm_descriptor,
                heartbeat):
    """Entry point of one shard process.

    Rebuilds the model from the shipped ``state_dict`` (start-method agnostic:
    works under ``fork`` and ``spawn`` alike), hosts a full threaded
    :class:`CompressionServer`, and bridges it to the parent: requests arrive
    as ``("req", id, kind, container_bytes, deadline_s)`` tuples on
    ``request_queue`` (``deadline_s`` an absolute CLOCK_MONOTONIC stamp or
    ``None``, checked *before* the container is unpacked),
    finished pixels leave either through the shared-memory ring (a tiny
    ``("shm", ...)`` lease descriptor on ``response_queue``) or as raw
    buffers in ``("ok", ...)`` queue messages, and the control pipe answers
    ``("stats",)`` probes and acknowledges the drain handshake.  The shard
    stamps ``heartbeat[shard_index]`` with the wall clock every loop
    iteration so the parent's watchdog can tell a busy shard from a hung one.
    """
    config = EaszConfig(**config_kwargs)
    model = EaszReconstructor(config)
    model.load_state_dict(model_state)
    model.eval()
    server = CompressionServer(model=model, config=config, **server_options)
    server.start()

    ring = None
    if shm_descriptor is not None:
        try:
            ring = ShmRing.attach(shm_descriptor)
        except Exception:  # noqa: BLE001 - ring is a fast path, not a requirement
            ring = None

    inflight_lock = threading.Lock()
    inflight = [0]

    def _completion_callback(request_id):
        def _on_done(pending):
            try:
                response = pending.result(timeout=0)
            except Exception as error:  # noqa: BLE001 - marshalled to parent
                message = _error_message(shard_index, request_id, error)
            else:
                image = np.ascontiguousarray(response.image)
                meta = {
                    "kind": response.kind,
                    "config_summary": response.config_summary,
                    "latency_s": response.latency_s,
                    "batch_size": response.batch_size,
                    "worker": response.worker,
                }
                message = None
                if ring is not None and image.nbytes <= ring.slot_bytes:
                    lease = ring.claim(shard_index)
                    if lease is not None:
                        slot, seq = lease
                        try:
                            ring.write(slot, image)
                        except Exception:  # noqa: BLE001 - fall back to the queue
                            ring.release(slot, seq, shard_index)
                        else:
                            message = ("shm", shard_index, request_id, slot, seq,
                                       image.nbytes, tuple(image.shape),
                                       str(image.dtype), meta)
                if message is None:  # ring off, full, or the response outgrew a slot
                    message = ("ok", shard_index, request_id, image.tobytes(),
                               tuple(image.shape), str(image.dtype), meta)
            response_queue.put(message)
            with inflight_lock:
                inflight[0] -= 1
        return _on_done

    def _beat():
        if heartbeat is not None:
            heartbeat[shard_index] = time.time()

    _beat()
    control_conn.send(("ready", shard_index))
    stopping = False
    try:
        while True:
            _beat()
            while control_conn.poll():
                command = control_conn.recv()
                if command and command[0] == "stats":
                    control_conn.send(("stats", shard_index, server.stats.snapshot()))
            if stopping:
                # a submit() racing the sentinel can land its request *after*
                # the stop message; fail those back immediately instead of
                # ignoring the queue and letting the parent wait out its
                # drain deadline
                try:
                    message = request_queue.get_nowait()
                except queue_module.Empty:
                    with inflight_lock:
                        drained = inflight[0] == 0
                    if drained:
                        break
                    time.sleep(0.002)
                    continue
                if message[0] == "req":
                    response_queue.put(("err", shard_index, message[1],
                                        "QueueClosedError",
                                        "shard stopped before the request ran"))
                continue
            try:
                message = request_queue.get(timeout=0.05)
            except queue_module.Empty:
                continue
            if message[0] == "stop":
                stopping = True
                continue
            _, request_id, kind, blob, deadline_s = message
            # deadlines ride the wire as absolute CLOCK_MONOTONIC stamps, so
            # this is the cheapest possible shed point on the shard: before
            # the container even gets unpacked
            if deadline_expired(deadline_s):
                server.stats.record_deadline_shed()
                response_queue.put(("err", shard_index, request_id,
                                    "DeadlineExceededError",
                                    f"request {request_id} expired before the "
                                    f"shard unpacked it"))
                continue
            try:
                package = unpack_package(blob)
            except Exception as error:  # noqa: BLE001 - bad wire bytes
                # count it here: the parent treats shard stats as the single
                # source of truth for failures to avoid double counting
                server.stats.record_failure(1)
                response_queue.put(_error_message(shard_index, request_id, error))
                continue
            with inflight_lock:
                inflight[0] += 1
            try:
                pending = server.submit(package, kind=kind, deadline_s=deadline_s)
            except Exception as error:  # noqa: BLE001 - admission/shutdown
                with inflight_lock:
                    inflight[0] -= 1
                response_queue.put(_error_message(shard_index, request_id, error))
                continue
            pending.add_done_callback(_completion_callback(request_id))
        final_snapshot = server.stop()
        control_conn.send(("stopped", shard_index, final_snapshot))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):  # parent went away
        server.stop()


# --------------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------------- #
class ShardHandle:
    """Parent-side view of one shard process (queues, control pipe, liveness)."""

    def __init__(self, index, process, request_queue, control_conn):
        self.index = index
        self.process = process
        self.request_queue = request_queue
        self.control_conn = control_conn
        self.draining = False  # drain handshake sent; stop routing new work here
        self.stopped_snapshot = None

    def is_alive(self):
        return self.process is not None and self.process.is_alive()

    def accepts_work(self):
        return self.is_alive() and not self.draining


class _PendingEntry:
    """Parent-side bookkeeping for one in-flight request.

    Keeps the wire blob so a request bounced by a shard that went into its
    drain handshake (or reaped after a crash) can be re-dispatched to a live
    shard instead of failing a healthy pool's caller.
    """

    __slots__ = ("pending", "shard", "cache_key", "submitted_at", "kind",
                 "blob", "deadline_s", "redispatched")

    def __init__(self, pending, shard, cache_key, submitted_at, kind, blob,
                 deadline_s=None):
        self.pending = pending
        self.shard = shard
        self.cache_key = cache_key
        self.submitted_at = submitted_at
        self.kind = kind
        self.blob = blob
        self.deadline_s = deadline_s
        self.redispatched = False


class _AggregateStatsView:
    """``.stats.snapshot()`` adapter matching the threaded server's surface."""

    def __init__(self, server):
        self._server = server

    def snapshot(self):
        return self._server.aggregate_snapshot()


class ShardedCompressionServer:
    """Micro-batching decode/reconstruct service sharded over N processes.

    Presents the same surface as :class:`CompressionServer` — ``submit`` /
    ``submit_bytes`` returning :class:`PendingResult` futures, a ``stats``
    object with ``snapshot()``, ``start``/``stop``/context-manager lifecycle —
    while executing on ``num_shards`` independent processes.

    Parameters mirror the threaded server where they share meaning;
    ``queue_depth`` bounds the *per-shard* in-flight window (the parent
    applies admission control before a request ever crosses the process
    boundary, so ``"reject"`` still raises synchronously), and
    ``result_cache_size`` enables the parent-side cross-request result cache
    keyed on payload digest.  ``base_codec`` seeds each shard's fallback
    codec exactly as on the threaded server (under ``start_method="spawn"``
    the codec instance must be picklable; registry-built codecs are).
    ``start_method`` picks the multiprocessing start method (platform default
    when ``None``; pass ``"spawn"`` to avoid fork-with-threads hazards at the
    cost of slower startup).

    Zero-copy and health knobs:

    ``use_shm``
        Serve responses through the shared-memory ring when the host
        supports it (default).  ``shm_slots`` / ``shm_slot_bytes`` size the
        ring (defaults: ``max(4, 2 * num_shards)`` slots of 4 MiB); anything
        that does not fit falls back to the queue path per response.
    ``watchdog_interval_s``
        When set (must be ``> 0``), a parent-side watchdog thread probes
        shard liveness (and heartbeat staleness, see
        ``watchdog_hang_timeout_s``) every interval and restarts dead shards
        in place, with exponential backoff from ``watchdog_backoff_s`` up to
        ``watchdog_backoff_cap_s`` for a shard that keeps dying.  ``None``
        (default) disables auto-restart; crashes still fail fast through the
        collector's reaper exactly as before.
    ``watchdog_hang_timeout_s``
        Hang detection for the watchdog: a shard that is *alive but silent*
        (no heartbeat stamp) for longer than this is killed and restarted
        exactly like a crashed one.  The default ``"auto"`` resolves to
        ``30.0`` seconds whenever the watchdog runs — a healthy shard stamps
        its heartbeat every loop iteration (≤ 50 ms idle, and long model
        batches never block the loop), so 30 s of silence means the process
        is wedged, not busy.  Pass ``None`` to opt out (liveness-only
        watchdog) or an explicit number of seconds to tune it.
    ``affinity``
        ``"key"`` routes on the full batch key (PR-3 behaviour), ``"mask"``
        on the mask digest alone, ``"auto"`` (default) starts on the full
        key and switches a mask to mask-only routing once it has been seen
        with more than one image geometry.
    """

    def __init__(self, model=None, config=None, num_shards=2, workers_per_shard=1,
                 base_codec=None, queue_depth=64, admission_policy="reject",
                 put_timeout=1.0, batch_policy=None, fill="zero",
                 chunk=DEFAULT_CHUNK, result_cache_size=0, start_method=None,
                 startup_timeout=120.0, spill_threshold=None, use_shm=True,
                 shm_slots=None, shm_slot_bytes=None, watchdog_interval_s=None,
                 watchdog_backoff_s=0.5, watchdog_backoff_cap_s=30.0,
                 watchdog_hang_timeout_s="auto", affinity="auto",
                 circuit_breakers=True, breaker_open_duration_s=1.0):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if admission_policy not in ("reject", "block"):
            raise ValueError("admission_policy must be 'reject' or 'block'")
        if watchdog_interval_s is not None and not watchdog_interval_s > 0:
            raise ValueError("watchdog_interval_s must be positive")
        if watchdog_hang_timeout_s == "auto":
            watchdog_hang_timeout_s = _DEFAULT_HANG_TIMEOUT_S
        if watchdog_hang_timeout_s is not None and not watchdog_hang_timeout_s > 0:
            raise ValueError("watchdog_hang_timeout_s must be positive")
        if not watchdog_backoff_s > 0:
            raise ValueError("watchdog_backoff_s must be positive")
        if watchdog_backoff_cap_s < watchdog_backoff_s:
            raise ValueError("watchdog_backoff_cap_s must be >= watchdog_backoff_s")
        if affinity not in ("auto", "key", "mask"):
            raise ValueError("affinity must be 'auto', 'key' or 'mask'")
        if shm_slots is not None and int(shm_slots) < 1:
            raise ValueError("shm_slots must be positive")
        if shm_slot_bytes is not None and int(shm_slot_bytes) < 1:
            raise ValueError("shm_slot_bytes must be positive")
        self.config = config or (model.config if model is not None else EaszConfig())
        self.model = model or EaszReconstructor(self.config)
        self.num_shards = int(num_shards)
        self.parallelism = self.num_shards
        self.queue_depth = int(queue_depth)
        self.admission_policy = admission_policy
        self.put_timeout = float(put_timeout)
        self.batch_policy = batch_policy or BatchPolicy()
        self.spill_threshold = (int(spill_threshold) if spill_threshold is not None
                                else self.batch_policy.max_batch_size)
        self.result_cache = ResultCache(result_cache_size)
        self.local_stats = ServerStats()
        self.stats = _AggregateStatsView(self)
        self._server_options = {
            "base_codec": base_codec,
            "num_workers": max(1, int(workers_per_shard)),
            "queue_depth": self.queue_depth,
            "admission_policy": "reject",
            "batch_policy": self.batch_policy,
            "fill": fill,
            "chunk": chunk,
            "result_cache_size": 0,  # the parent owns the one result cache
        }
        self._context = multiprocessing.get_context(start_method)
        self._startup_timeout = float(startup_timeout)
        self.use_shm = bool(use_shm)
        self.shm_slots = (int(shm_slots) if shm_slots is not None
                          else max(4, 2 * self.num_shards))
        self.shm_slot_bytes = (int(shm_slot_bytes) if shm_slot_bytes is not None
                               else _DEFAULT_SHM_SLOT_BYTES)
        self.watchdog_interval_s = (float(watchdog_interval_s)
                                    if watchdog_interval_s is not None else None)
        self.watchdog_backoff_s = float(watchdog_backoff_s)
        self.watchdog_backoff_cap_s = float(watchdog_backoff_cap_s)
        self.watchdog_hang_timeout_s = (float(watchdog_hang_timeout_s)
                                        if watchdog_hang_timeout_s is not None else None)
        self.affinity = affinity
        self._shards = []
        self._response_queue = None
        self._collector = None
        self._collector_stop = threading.Event()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._control_lock = threading.Lock()  # Connections are not thread-safe
        self._restart_lock = threading.Lock()  # one restart_shard at a time
        self._pending = {}  # guarded-by: _lock — request_id -> _PendingEntry
        self._retired_snapshots = []  # guarded-by: _lock — (index, snapshot) of replaced/drained shards
        self._inflight = []  # guarded-by: _lock — per-shard in-flight counts
        self._ids = itertools.count()
        self._started = False
        self._closed = False
        self._shm_ring = None
        self._shm_descriptor = None
        self._heartbeat = None
        self._watchdog = None
        self._watchdog_stop = threading.Event()
        self._watchdog_restarts = [0] * self.num_shards  # guarded-by: _lock
        self._watchdog_backoff = [self.watchdog_backoff_s] * self.num_shards  # guarded-by: _lock
        self._watchdog_next_allowed = [0.0] * self.num_shards  # guarded-by: _lock
        self._watchdog_last_restart = [None] * self.num_shards  # guarded-by: _lock
        self._mask_geometries = {}  # guarded-by: _lock — mask bytes -> set of observed geometries
        self._mask_geometries_max = 1024
        # per-shard circuit breakers (import deferred: resilience imports
        # ShardFailedError from this module).  Each breaker has its own leaf
        # lock; routing consults them while holding self._lock, so the only
        # cross-module order is _lock -> breaker lock, never the reverse.
        if not breaker_open_duration_s > 0:
            raise ValueError("breaker_open_duration_s must be positive")
        if circuit_breakers:
            from .resilience import CircuitBreaker
            self._breakers = [CircuitBreaker(open_duration_s=breaker_open_duration_s)
                              for _ in range(self.num_shards)]
        else:
            self._breakers = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_shard(self, index):
        request_queue = self._context.Queue()
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_main,
            name=f"easz-shard-{index}",
            args=(index, request_queue, self._response_queue, child_conn,
                  asdict(self.config), dict(self.model.state_dict()),
                  self._server_options, self._shm_descriptor, self._heartbeat),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return ShardHandle(index, process, request_queue, parent_conn)

    def _create_ring(self):
        """Build the shared-memory response ring, or run without one.

        Any failure (no /dev/shm, quota, exotic platform) downgrades the pool
        to the queue path — zero-copy is a fast path, never a requirement.
        """
        self._shm_ring = None
        self._shm_descriptor = None
        if not self.use_shm or not shm_available():
            return
        try:
            self._shm_ring = ShmRing(self.shm_slot_bytes, self.shm_slots,
                                     context=self._context)
            self._shm_descriptor = self._shm_ring.descriptor()
        except Exception:  # noqa: BLE001 - fall back to the queue path
            self._shm_ring = None
            self._shm_descriptor = None

    def _release_ring(self):
        if self._shm_ring is not None:
            self._shm_ring.close()
        self._shm_ring = None
        self._shm_descriptor = None

    def _await_ready(self, shard):
        deadline = time.perf_counter() + self._startup_timeout
        while time.perf_counter() < deadline:
            with self._control_lock:
                ready = shard.control_conn.poll(0.05)
                message = shard.control_conn.recv() if ready else None
            if message and message[0] == "ready":
                return
            if not shard.process.is_alive():
                raise ShardFailedError(
                    f"shard {shard.index} died during startup "
                    f"(exit code {shard.process.exitcode})")
        raise ShardFailedError(f"shard {shard.index} not ready after "
                               f"{self._startup_timeout:.0f}s")

    def start(self):
        """Spawn the shard pool, wait for readiness, start the collector.

        Idempotent while running; after a ``stop()`` it brings up a fresh
        pool (new processes, new queues) and reopens admission.
        """
        if self._started:
            return self
        if self._watchdog is not None:
            # a previous stop() timed out on a watchdog stuck in a slow
            # restart; wait it out (it exits at its next _watchdog_stop
            # check) or clearing the event below would leave two loops alive
            self._watchdog.join()
            self._watchdog = None
        self._response_queue = self._context.Queue()
        self._create_ring()
        self._heartbeat = self._context.RawArray("d", self.num_shards)
        self._shards = []
        with self._lock:
            # every piece of lock-guarded routing state resets inside one
            # span: a submitter blocked since before a stop()/start() cycle
            # must never observe the old pool's counters
            self._inflight = [0] * self.num_shards
            self._closed = False
            self._retired_snapshots = []
            self._mask_geometries = {}
        try:
            for index in range(self.num_shards):
                self._shards.append(self._spawn_shard(index))
            for shard in self._shards:
                self._await_ready(shard)
        except Exception:
            for shard in self._shards:
                if shard.process.is_alive():
                    shard.process.terminate()
            self._release_ring()
            raise
        self._collector_stop.clear()
        self._collector = threading.Thread(target=self._collect_loop,
                                           name="shard-collector", daemon=True)
        self._collector.start()
        with self._lock:
            self._watchdog_restarts = [0] * self.num_shards
            self._watchdog_backoff = [self.watchdog_backoff_s] * self.num_shards
            self._watchdog_next_allowed = [0.0] * self.num_shards
            self._watchdog_last_restart = [None] * self.num_shards
        if self.watchdog_interval_s is not None:
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(target=self._watchdog_loop,
                                              name="shard-watchdog", daemon=True)
            self._watchdog.start()
        self._started = True
        return self

    def stop(self, timeout=30.0):
        """Drain every shard, reject anything stranded, return merged stats."""
        if not self._started:
            return self.aggregate_snapshot()
        # quiesce the watchdog first so no auto-restart races the shutdown
        # (a replacement spawned after the stop sentinels went out would leak)
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=30.0)
            if not self._watchdog.is_alive():
                self._watchdog = None
            # else: it is stuck inside a slow restart; keep the handle so the
            # next start() can wait it out, and rely on the _closed re-checks
            # in _restart_shard_locked to kill any replacement it spawns
        with self._lock:
            self._closed = True
            # wake blocking-mode submitters promptly: their wait loop
            # re-checks _closed and raises QueueClosedError instead of
            # stalling out the full put_timeout
            self._not_full.notify_all()
        deadline = time.perf_counter() + timeout
        final_snapshots = []
        for shard in self._shards:
            if shard.is_alive():
                shard.request_queue.put(("stop",))
        for shard in self._shards:
            snapshot = self._await_stopped(shard, deadline)
            if snapshot is not None:
                final_snapshots.append((shard.index, snapshot))
        # drained shards flushed their responses before acknowledging; give
        # the collector until the deadline to resolve the matching futures.
        # Entries owned by a shard that died *without* the handshake can
        # never resolve, so each pass prunes them (re-checked every tick:
        # is_alive() may lag a kill by a few milliseconds)
        while time.perf_counter() < deadline:
            crashed = []
            with self._lock:
                for request_id, entry in list(self._pending.items()):
                    shard = self._shards[entry.shard]
                    if not shard.is_alive() and not shard.stopped_snapshot:
                        crashed.append(entry)
                        del self._pending[request_id]
                drained = not self._pending
            for entry in crashed:
                self.local_stats.record_failure(1)
                entry.pending._reject(ShardFailedError(
                    f"shard {entry.shard} died before the request completed"))
            if drained:
                break
            time.sleep(0.01)
        with self._lock:
            stranded = list(self._pending.values())
            self._pending.clear()
            for index in range(len(self._inflight)):
                self._inflight[index] = 0
        for entry in stranded:
            self.local_stats.record_failure(1)
            entry.pending._reject(
                QueueClosedError("server stopped before the request ran"))
        for shard in self._shards:
            if shard.process is not None:
                shard.process.join(timeout=max(deadline - time.perf_counter(), 0.1))
                if shard.process.is_alive():
                    shard.process.terminate()
                    shard.process.join(timeout=1.0)
        self._collector_stop.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        self._started = False
        merged = self._merge_snapshots(final_snapshots)
        self._release_ring()  # after the collector: it may hold slot views
        return merged

    def _await_stopped(self, shard, deadline):
        if not shard.is_alive() and shard.stopped_snapshot is None:
            return None
        while time.perf_counter() < deadline:
            with self._control_lock:
                try:
                    message = (shard.control_conn.recv()
                               if shard.control_conn.poll(0.05) else None)
                except (EOFError, OSError):
                    return None
            if message is not None:
                if message and message[0] == "stopped":
                    shard.stopped_snapshot = message[2]
                    return message[2]
            elif not shard.process.is_alive():
                return shard.stopped_snapshot
        return shard.stopped_snapshot

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()
        return False

    # ------------------------------------------------------------------ #
    # routing + submission
    # ------------------------------------------------------------------ #
    @staticmethod
    def _batch_key(package, kind):
        return (kind, package.mask_bytes, tuple(package.original_shape),
                package.codec_payload.codec_name)

    def _observe_geometry_locked(self, key):
        """Track which image geometries each erase mask arrives with.

        Feeds the ``"auto"`` affinity mode: one geometry per mask means the
        full batch key and the mask agree on a home shard anyway; a second
        geometry (multi-camera fleet sharing a mask template) flips that mask
        to mask-only routing so every camera hits the same warm plan caches.
        Bounded so adversarial mask churn cannot grow parent memory.
        """
        if self.affinity != "auto":
            return
        geometries = self._mask_geometries.get(key[1])
        if geometries is None:
            if len(self._mask_geometries) >= self._mask_geometries_max:
                self._mask_geometries.pop(next(iter(self._mask_geometries)))
            geometries = set()
            self._mask_geometries[key[1]] = geometries
        geometries.add(key[2])

    def _mask_affine_locked(self, key):
        """Whether routing for this key should use the mask digest alone."""
        if self.affinity == "mask":
            return True
        if self.affinity == "key":
            return False
        return len(self._mask_geometries.get(key[1], ())) > 1

    def _preferred_shard(self, key, mask_only=False):
        hasher = hashlib.blake2b(digest_size=8)
        if not mask_only:
            hasher.update(repr((key[0], key[2], key[3])).encode("utf-8"))
        hasher.update(key[1])
        return int.from_bytes(hasher.digest(), "big") % self.num_shards

    def _breaker_allows(self, index):
        """Whether shard ``index``'s circuit breaker admits a request now."""
        return self._breakers is None or self._breakers[index].allow()

    def _route_locked(self, key):
        """Pick a shard (caller holds the lock): sticky unless overloaded.

        The preferred shard keeps its caches hot for this key; once it has a
        full batch of work in flight (``spill_threshold``), the least-loaded
        live shard takes the overflow so one hot key saturates the whole pool
        instead of one process.  A shard whose circuit breaker is open is
        treated exactly like an overloaded one — its traffic spills to the
        least-loaded live shard whose breaker admits work — unless *every*
        breaker is open, in which case the breakers are ignored (half of the
        pool guessing wrong must degrade to plain routing, not to an outage).
        """
        preferred = self._preferred_shard(key, mask_only=self._mask_affine_locked(key))
        if (self._shards[preferred].accepts_work()
                and self._inflight[preferred] < self.spill_threshold
                and self._breaker_allows(preferred)):
            return preferred
        candidates = [shard.index for shard in self._shards if shard.accepts_work()]
        if not candidates:
            raise ShardFailedError("no live shards")
        trusted = [index for index in candidates if self._breaker_allows(index)]
        return min(trusted or candidates,
                   key=lambda index: (self._inflight[index], index != preferred))

    def submit(self, package, kind="reconstruct", deadline_s=None):
        """Queue one :class:`EaszCompressed` package on a shard; returns a future.

        Admission control runs in the parent: with the ``"reject"`` policy a
        full per-shard window raises :class:`ServerOverloadedError`
        synchronously (as the threaded server does), with ``"block"`` the call
        waits up to ``put_timeout`` for in-flight work to drain.

        ``deadline_s`` (absolute ``time.monotonic``) crosses the wire with
        the request: an already-expired request is shed here without paying
        for ``pack_package``, and the shard re-checks before unpacking.
        """
        if kind not in ("reconstruct", "decode"):
            raise ValueError("kind must be 'reconstruct' or 'decode'")
        if self._closed:  # matches the threaded server's post-stop behaviour
            raise QueueClosedError("server is shut down")
        if not self._started:
            raise RuntimeError("server not started; use start() or a with-block")
        pending = PendingResult(next(self._ids))
        if deadline_expired(deadline_s):
            self.local_stats.record_deadline_shed()
            pending._reject(DeadlineExceededError(
                f"request {pending.request_id} expired before admission"))
            return pending
        cache_key, hit = try_resolve_from_result_cache(
            self.result_cache, self.local_stats, package, kind, pending)
        if hit:
            self.local_stats.record_response_transport("cache")
            return pending
        key = self._batch_key(package, kind)
        with self._lock:
            if self._closed:
                raise QueueClosedError("server is shut down")
            self._observe_geometry_locked(key)
            # route, then re-route after every condition wake: the shard that
            # was full before the wait may have crashed (and been reaped)
            # while the submitter slept — enqueueing onto its dead queue
            # would strand the future
            wait_deadline = None
            while True:
                shard_index = self._route_locked(key)
                if self._inflight[shard_index] < self.queue_depth:
                    break
                if self.admission_policy == "reject":
                    self.local_stats.record_rejected()
                    raise ServerOverloadedError(
                        f"shard {shard_index} window at capacity "
                        f"({self.queue_depth}); request rejected")
                if wait_deadline is None:
                    wait_deadline = time.monotonic() + self.put_timeout
                remaining = wait_deadline - time.monotonic()
                if remaining <= 0 or not self._not_full.wait(timeout=remaining):
                    self.local_stats.record_rejected()
                    raise ServerOverloadedError(
                        f"shard window full for {self.put_timeout:.2f}s; "
                        "backpressure timeout")
                if self._closed:
                    raise QueueClosedError("server is shut down")
            self._inflight[shard_index] += 1
        # serialise only after admission: a rejected burst must not pay the
        # full container pack cost on the load-shedding path
        try:
            blob = pack_package(package)
        except Exception:
            with self._lock:
                self._inflight[shard_index] = max(self._inflight[shard_index] - 1, 0)
                self._not_full.notify_all()
            raise
        with self._lock:
            self._pending[pending.request_id] = _PendingEntry(
                pending, shard_index, cache_key, time.perf_counter(), kind, blob,
                deadline_s=deadline_s)
            queue_depth = sum(self._inflight)
        try:
            self._shards[shard_index].request_queue.put(
                ("req", pending.request_id, kind, blob, deadline_s))
        except Exception:
            with self._lock:
                if self._pending.pop(pending.request_id, None) is not None:
                    self._inflight[shard_index] = max(self._inflight[shard_index] - 1, 0)
                self._not_full.notify_all()
            self.local_stats.record_rejected()
            raise
        self.local_stats.record_submitted()
        self.local_stats.record_queue_depth(queue_depth)
        if not self._shards[shard_index].is_alive():
            # the shard died inside our unlocked pack/put window, possibly
            # after the reaper's one-shot sweep retired it — recover the
            # entry ourselves or its future would hang
            with self._lock:
                entry = self._pending.pop(pending.request_id, None)
                if entry is not None:
                    self._inflight[shard_index] = max(self._inflight[shard_index] - 1, 0)
                    self._not_full.notify_all()
            if entry is not None and not self._redispatch(entry):
                self.local_stats.record_failure(1)
                entry.pending._reject(ShardFailedError(
                    f"shard {shard_index} died during submission"))
        return pending

    def submit_bytes(self, data, kind="reconstruct", deadline_s=None):
        """Unpack a wire container (``EASZ`` magic) and queue it."""
        return self.submit(unpack_package(data), kind=kind, deadline_s=deadline_s)

    def current_depth(self):
        """Total in-flight requests across all shards (admission observability)."""
        with self._lock:
            return sum(self._inflight)

    def predicted_shard_depth(self, package, kind="reconstruct"):
        """``(shard_index, inflight)`` the router would pick for this package.

        Deadline-aware admission (:mod:`repro.serve.scenarios`) calls this to
        base its breach prediction on the *routed shard's* queue rather than
        the pool aggregate — with consistent routing a single hot key can
        stack one shard's window while the pool average looks idle.  Purely
        observational: no geometry tracking, no counters move.  When no live
        shard can be routed the pool total is returned under ``(None, ...)``.
        """
        key = self._batch_key(package, kind)
        with self._lock:
            try:
                shard_index = self._route_locked(key)
            except ShardFailedError:
                return None, sum(self._inflight)
            return shard_index, self._inflight[shard_index]

    # ------------------------------------------------------------------ #
    # chaos-harness introspection
    # ------------------------------------------------------------------ #
    def live_shard_indices(self):
        """Indices of shards whose processes are currently alive.

        The chaos driver (:mod:`repro.serve.scenarios`) uses this to pick a
        victim; it is a point-in-time observation, not a guarantee — a shard
        may die (or be restarted by the watchdog) immediately after.
        """
        with self._lock:
            shards = list(self._shards)
        return [shard.index for shard in shards if shard.is_alive()]

    def shard_process(self, index):
        """The live :class:`multiprocessing.Process` behind shard ``index``.

        Exposed for fault injection (SIGKILL/SIGSTOP chaos) and diagnostics
        only — sending work to it directly bypasses routing and admission.
        Returns ``None`` while the slot is down between restarts.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(f"no shard {index}")
        with self._lock:
            shard = self._shards[index] if self._shards else None
        return shard.process if shard is not None else None

    def shm_ring(self):
        """The live response :class:`~repro.serve.shm.ShmRing` (None when off).

        Chaos scenarios lease slots through it (under a sentinel owner index)
        to exercise ring exhaustion; normal callers never need it.
        """
        return self._shm_ring

    # ------------------------------------------------------------------ #
    # response collection
    # ------------------------------------------------------------------ #
    def _collect_loop(self):
        last_reap = time.perf_counter()
        while True:
            try:
                message = self._response_queue.get(timeout=0.05)
            except queue_module.Empty:
                if self._collector_stop.is_set():
                    return
                now = time.perf_counter()
                if now - last_reap >= 0.25:
                    last_reap = now
                    self._reap_dead_shards()
                continue
            except (EOFError, OSError):
                return
            try:
                self._dispatch_response(message)
            except Exception:  # noqa: BLE001 - one bad message must not
                # kill the collector; every other in-flight future depends
                # on this thread staying alive
                self.local_stats.record_failure(1)

    def _reap_dead_shards(self):
        """Fail (or re-route) the in-flight futures of crashed shard processes.

        Without this, a shard that segfaults or is OOM-killed outside
        :meth:`restart_shard` would strand its callers until their own
        ``result()`` timeouts.  Shards that exited through the drain
        handshake have a ``stopped_snapshot`` and are skipped — their
        responses were flushed before exit.
        """
        if self._closed:
            return  # stop() owns the shutdown bookkeeping
        for shard in self._shards:
            if (shard.is_alive() or shard.draining
                    or shard.stopped_snapshot is not None):
                continue
            with self._lock:
                crashed = [entry for entry in self._pending.values()
                           if entry.shard == shard.index]
                for entry in crashed:
                    del self._pending[entry.pending.request_id]
                self._inflight[shard.index] = 0
                self._not_full.notify_all()
            # mark so the sweep (and telemetry) treats the handle as retired
            shard.stopped_snapshot = {}
            if self._breakers is not None:
                # a dead process is hard evidence — no need to wait for the
                # failure EWMA; routing stops trusting the slot immediately
                self._breakers[shard.index].trip()
            if self._shm_ring is not None:
                # free ring slots the dead shard still leased; any of its
                # responses still queued become stale (seq-bumped) and are
                # dropped safely by _read_shm_response
                self._shm_ring.reclaim(shard.index)
            for entry in crashed:
                error = ShardFailedError(
                    f"shard {shard.index} died (exit code "
                    f"{shard.process.exitcode}) with the request in flight")
                if not self._redispatch(entry):
                    self.local_stats.record_failure(1)
                    entry.pending._reject(error)

    def _redispatch(self, entry):
        """Route a bounced request to another live shard (once); True on success."""
        if entry.redispatched or self._closed:
            return False
        try:
            with self._lock:
                if self._closed:
                    return False
                # only shards with admission-window room: overflowing the
                # window would let the shard's inner queue bounce an
                # already-admitted request with a spurious overload error
                candidates = [shard.index for shard in self._shards
                              if shard.accepts_work() and shard.index != entry.shard
                              and self._inflight[shard.index] < self.queue_depth]
                if not candidates:
                    return False
                target = min(candidates, key=lambda index: self._inflight[index])
                entry.redispatched = True
                entry.shard = target
                self._inflight[target] += 1
                self._pending[entry.pending.request_id] = entry
            self._shards[target].request_queue.put(
                ("req", entry.pending.request_id, entry.kind, entry.blob,
                 entry.deadline_s))
            return True
        except Exception:  # noqa: BLE001 - fall back to failing the future
            with self._lock:
                if self._pending.pop(entry.pending.request_id, None) is not None:
                    self._inflight[entry.shard] = max(
                        self._inflight[entry.shard] - 1, 0)
                    self._not_full.notify_all()
            return False

    def _read_shm_response(self, message):
        """Copy the pixels out of a leased ring slot and ack the lease.

        Returns the image, or ``None`` when the lease is stale (the writing
        shard crashed and the reaper already reclaimed its slots — the slot
        may belong to someone else now, so neither read nor free it on the
        strength of this message).
        """
        _, shard_index, _, slot, seq, nbytes, shape, dtype_name, _ = message
        ring = self._shm_ring
        if ring is None:
            return None
        image = None
        try:
            slot_view = ring.read(slot, nbytes)
            try:
                # copy=True: the slot is recycled the moment we ack, so the
                # response must own its pixels (this is the single parent-side
                # copy of the zero-copy path)
                image = pixels_from_buffer(slot_view, shape, dtype_name, copy=True)
            finally:
                slot_view.release()
        except Exception:  # noqa: BLE001 - a malformed descriptor must not
            image = None   # wedge the collector; the lease is still acked below
        if not ring.release(slot, seq, shard_index):
            return None
        return image

    def _dispatch_response(self, message):
        tag, shard_index, request_id = message[0], message[1], message[2]
        with self._lock:
            entry = self._pending.pop(request_id, None)
            if entry is not None:
                self._inflight[entry.shard] = max(self._inflight[entry.shard] - 1, 0)
                self._not_full.notify_all()
        if tag == "shm" and entry is None:
            # shard restarted underneath it (future already failed), but the
            # lease may still be live — ack it so the slot is not stranded
            # until the reaper's reclaim
            _, _, _, slot, seq = message[:5]
            if self._shm_ring is not None:
                self._shm_ring.release(slot, seq, shard_index)
            return
        if entry is None:  # shard restarted underneath it, future already failed
            return
        if tag in ("ok", "shm"):
            if tag == "shm":
                meta = message[8]
                image = self._read_shm_response(message)
                if image is None:
                    # stale lease: the pixels are unreachable; treat like a
                    # crashed shard so the caller is re-routed or failed
                    if self._breakers is not None:
                        self._breakers[shard_index].record_failure()
                    if not self._redispatch(entry):
                        self.local_stats.record_failure(1)
                        entry.pending._reject(ShardFailedError(
                            f"shard {shard_index} lost its shm lease for "
                            f"request {request_id}"))
                    return
                if entry.cache_key is not None:
                    # the response copy stays private to the caller; the
                    # cache takes its own (lookup() also copies on hits)
                    self.result_cache.put(entry.cache_key, image, copy=True)
                response_image = image
            else:
                _, _, _, buffer, shape, dtype_name, meta = message
                view = pixels_from_buffer(buffer, shape, dtype_name)
                if entry.cache_key is not None:
                    # the read-only view aliases the immutable message bytes,
                    # so the cache can keep it without its defensive copy
                    # (lookup() still copies on every hit)
                    self.result_cache.put(entry.cache_key, view, copy=False)
                response_image = view.copy()
            if self._breakers is not None:
                # outside self._lock by design: breaker locks are leaves
                self._breakers[shard_index].record_success()
            self.local_stats.record_response_transport(
                "shm" if tag == "shm" else "queue")
            entry.pending._resolve(ServeResponse(
                request_id=request_id,
                image=response_image,
                kind=meta["kind"],
                config_summary=dict(meta["config_summary"]),
                # end-to-end from the parent's submit(), so threaded-vs-sharded
                # comparisons include the pack/queue-hop/dispatch overhead the
                # shard-internal clock cannot see
                latency_s=time.perf_counter() - entry.submitted_at,
                batch_size=meta["batch_size"],
                worker=f"shard-{shard_index}/{meta['worker']}",
                transport="shm" if tag == "shm" else "queue",
            ))
            return
        _, _, _, type_name, text = message
        if type_name == "QueueClosedError" and not self._closed:
            # the shard bounced the request because it was mid-drain (a
            # submit() raced restart_shard's stop sentinel); the pool itself
            # is healthy, so place the request on another shard instead of
            # surfacing a spurious shutdown error
            if self._redispatch(entry):
                return
            # a bounce nobody else accepted is a parent-side failure (the
            # shard never counted it)
            self.local_stats.record_failure(1)
        # shard-reported errors are already tallied in that shard's own
        # ServerStats (worker failures / unpack errors / rejected overloads),
        # which the aggregate merges — counting here again would double them
        entry.pending._reject(_rebuild_error(type_name, text))

    # ------------------------------------------------------------------ #
    # shard management
    # ------------------------------------------------------------------ #
    def restart_shard(self, index, graceful=True, timeout=30.0):
        """Replace one shard process while the rest of the pool keeps serving.

        ``graceful=True`` sends the drain handshake first so in-flight
        requests finish on the old process; ``graceful=False`` (or a drain
        timeout) terminates it and fails its in-flight futures with
        :class:`ShardFailedError`.
        """
        if not self._started:
            raise RuntimeError("server not started")
        if not 0 <= index < self.num_shards:
            raise ValueError(f"no shard {index}")
        with self._restart_lock:
            if self._closed:
                raise RuntimeError("server is stopping")
            return self._restart_shard_locked(index, graceful, timeout)

    def _restart_shard_locked(self, index, graceful, timeout):
        shard = self._shards[index]
        deadline = time.perf_counter() + timeout
        if graceful and shard.is_alive():
            # stop routing new work here *before* the drain handshake: the
            # shard ignores its request queue once it sees the stop sentinel,
            # so anything routed afterwards would strand until the timeout
            with self._lock:
                shard.draining = True
            shard.request_queue.put(("stop",))
            self._await_stopped(shard, deadline)
            while time.perf_counter() < deadline:
                with self._lock:
                    if not any(entry.shard == index
                               for entry in self._pending.values()):
                        break
                time.sleep(0.01)
        if shard.process.is_alive():
            shard.process.terminate()
        shard.process.join(timeout=5.0)
        if self._shm_ring is not None:
            # slots the old process still leased are unreachable now; free
            # them (seq bump makes any still-queued acks from it stale)
            self._shm_ring.reclaim(index)
        stranded = []
        with self._lock:
            for request_id, entry in list(self._pending.items()):
                if entry.shard == index:
                    stranded.append(entry)
                    del self._pending[request_id]
            self._inflight[index] = 0
            self._not_full.notify_all()
            if shard.stopped_snapshot:
                # keep the replaced generation's counters so pool totals
                # never go backwards across a restart
                self._retired_snapshots.append((index, shard.stopped_snapshot))
        for entry in stranded:
            error = ShardFailedError(
                f"shard {index} restarted before the request completed")
            if not self._redispatch(entry):
                self.local_stats.record_failure(1)
                entry.pending._reject(error)
        if self._closed:
            raise RuntimeError("server is stopping")
        replacement = self._spawn_shard(index)
        try:
            self._await_ready(replacement)
        except Exception:
            # never leak a half-started process; the slot stays down (the old
            # handle is drained/dead) but nothing orphaned keeps running
            if replacement.process.is_alive():
                replacement.process.terminate()
            replacement.process.join(timeout=1.0)
            raise
        if self._closed:
            # a stop() raced the spawn (it only waits 30s for a wedged
            # watchdog): never hand a live process to a shut-down pool
            replacement.process.terminate()
            replacement.process.join(timeout=1.0)
            raise RuntimeError("server stopped during shard restart")
        self._shards[index] = replacement
        if self._breakers is not None:
            # watchdog/restart coordination: the replacement process starts
            # with a clean slate — an open breaker would shun a healthy shard
            # for the rest of the open window
            self._breakers[index].reset()
        return replacement

    # ------------------------------------------------------------------ #
    # health watchdog
    # ------------------------------------------------------------------ #
    def _heartbeat_age_s(self, index):
        """Seconds since shard ``index`` last stamped its heartbeat (None unknown)."""
        if self._heartbeat is None:
            return None
        stamp = self._heartbeat[index]
        if not stamp:
            return None
        return max(time.time() - stamp, 0.0)

    def _watchdog_reset_s(self):
        """Stable uptime after which a shard's restart backoff resets."""
        return max(10.0 * self.watchdog_interval_s, 5.0)

    def _watchdog_tick(self):
        """One health pass: restart dead (or hung) shards with backoff.

        A shard that keeps dying gets exponentially spaced restart attempts
        (``watchdog_backoff_s`` doubling up to ``watchdog_backoff_cap_s``) so
        a crash loop cannot turn the watchdog into a fork bomb; surviving
        long enough (:meth:`_watchdog_reset_s`) earns the backoff back.
        """
        for index in range(self.num_shards):
            if self._closed or self._watchdog_stop.is_set():
                return
            shard = self._shards[index]
            if shard.draining:
                continue  # restart_shard owns this slot right now
            now = time.monotonic()
            if shard.is_alive():
                age = self._heartbeat_age_s(index)
                hung = (self.watchdog_hang_timeout_s is not None
                        and age is not None and age > self.watchdog_hang_timeout_s)
                if not hung:
                    with self._lock:
                        last = self._watchdog_last_restart[index]
                        if last is not None and now - last > self._watchdog_reset_s():
                            self._watchdog_backoff[index] = self.watchdog_backoff_s
                    continue
                # alive but silent past the hang timeout: treat as wedged
                shard.process.kill()
                shard.process.join(timeout=5.0)
            with self._lock:
                throttled = now < self._watchdog_next_allowed[index]
                backoff = self._watchdog_backoff[index]
            if throttled:
                continue
            restarted = False
            # _restart_lock before _lock is the pool's one sanctioned lock
            # order (_restart_shard_locked takes _lock internally); the
            # backoff reads above released _lock first, never the reverse
            try:
                with self._restart_lock:
                    if self._closed:
                        return
                    current = self._shards[index]
                    if current.process is not shard.process and current.is_alive():
                        continue  # a manual restart already replaced it
                    self._restart_shard_locked(index, graceful=False, timeout=30.0)
                restarted = True
            except Exception:  # noqa: BLE001 - spawn failure: back off, retry
                pass
            with self._lock:
                if restarted:
                    self._watchdog_restarts[index] += 1
                    self._watchdog_last_restart[index] = time.monotonic()
                self._watchdog_next_allowed[index] = time.monotonic() + backoff
                self._watchdog_backoff[index] = min(backoff * 2.0,
                                                    self.watchdog_backoff_cap_s)

    def _watchdog_loop(self):
        while not self._watchdog_stop.wait(self.watchdog_interval_s):
            if self._closed:
                return
            try:
                self._watchdog_tick()
            except Exception:  # noqa: BLE001 - one bad tick must not kill it
                continue

    def watchdog_snapshot(self):
        """Plain-dict watchdog state (part of the aggregate snapshot)."""
        with self._lock:
            restarts = list(self._watchdog_restarts)
            backoff = list(self._watchdog_backoff)
        return {
            "enabled": self.watchdog_interval_s is not None,
            "interval_s": self.watchdog_interval_s,
            "restarts_total": sum(restarts),
            "restarts_by_shard": {index: count for index, count
                                  in enumerate(restarts) if count},
            "backoff_s": backoff,
            "heartbeat_age_s": [self._heartbeat_age_s(index)
                                for index in range(self.num_shards)],
        }

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def shard_snapshots(self, timeout=5.0):
        """``(shard_index, ServerStats.snapshot())`` per reachable shard.

        Keyed by the shard's real index (not list position) so telemetry
        stays correctly attributed when a crashed shard yields no snapshot.
        """
        snapshots = []
        for shard in self._shards:
            if not shard.is_alive():
                if shard.stopped_snapshot is not None:
                    snapshots.append((shard.index, shard.stopped_snapshot))
                continue
            try:
                # one lock span per shard: a stats probe interleaving with a
                # concurrent stop()/restart recv on the same Connection would
                # corrupt the pickle stream (Connections are not thread-safe)
                with self._control_lock:
                    shard.control_conn.send(("stats",))
                    deadline = time.perf_counter() + timeout
                    while time.perf_counter() < deadline:
                        if shard.control_conn.poll(0.05):
                            message = shard.control_conn.recv()
                            if message and message[0] == "stats":
                                snapshots.append((shard.index, message[2]))
                                break
                            if message and message[0] == "stopped":
                                shard.stopped_snapshot = message[2]
                                snapshots.append((shard.index, message[2]))
                                break
                        elif not shard.process.is_alive():
                            break
            except (BrokenPipeError, OSError):
                continue
        return snapshots

    def _merge_snapshots(self, indexed_snapshots):
        """Merge ``(shard_index, snapshot)`` pairs plus the parent counters.

        Snapshots of retired shard generations (drained by
        :meth:`restart_shard`) are folded in so pool totals are monotone
        across restarts.
        """
        with self._lock:
            retired = list(self._retired_snapshots)
        labels = [f"shard-{index}-gen{position}"  # distinct from the live slot
                  for position, (index, _snapshot) in enumerate(retired)]
        labels += [f"shard-{index}" for index, _snapshot in indexed_snapshots]
        pairs = retired + list(indexed_snapshots)
        merged = aggregate_snapshots([snapshot for _index, snapshot in pairs],
                                     labels=labels)
        if retired:
            # summing rates across *generations* of one slot double-counts
            # (they never ran concurrently); the pool-level rate over the
            # whole uptime is the meaningful figure
            merged["throughput_rps"] = (merged["completed"]
                                        / max(merged.get("uptime_s", 0.0), 1e-9))
        local = self.local_stats.snapshot()
        merged["num_shards"] = self.num_shards
        # the parent is the caller-facing admission point: its submitted /
        # rejected counts are authoritative; shard-side counters only see
        # what was forwarded
        merged["submitted"] = local["submitted"]
        merged["rejected"] = merged.get("rejected", 0) + local["rejected"]
        merged["failed"] = merged.get("failed", 0) + local["failed"]
        # sheds happen on both sides of the wire: at the parent's admission
        # point (expired before pack) and on the shards (expired in transit
        # or while queued shard-side)
        merged["deadline_shed"] = (merged.get("deadline_shed", 0)
                                   + local["deadline_shed"])
        merged["completed_cached"] = local["completed_cached"]
        merged["result_cache"] = self.result_cache.stats()
        # the parent is the only observer of how responses crossed the
        # process boundary (shards don't know whether their lease was used)
        transports = dict(merged.get("response_transport", {}))
        for transport, count in local["response_transport"].items():
            transports[transport] = transports.get(transport, 0) + count
        merged["response_transport"] = dict(sorted(transports.items()))
        merged["shm"] = (self._shm_ring.stats() if self._shm_ring is not None
                         else {"enabled": False})
        merged["watchdog"] = self.watchdog_snapshot()
        merged["circuit_breakers"] = (
            [breaker.snapshot() for breaker in self._breakers]
            if self._breakers is not None else {"enabled": False})
        with self._lock:
            merged["inflight"] = list(self._inflight)
        return merged

    def aggregate_snapshot(self):
        """Merged cross-shard snapshot (same keys the threaded server exposes)."""
        return self._merge_snapshots(self.shard_snapshots())
