"""Weight initialisation schemes for :mod:`repro.nn` layers.

All initialisers take an explicit :class:`numpy.random.Generator` so every
model in the reproduction is exactly reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
    "normal",
    "zeros",
    "ones",
    "truncated_normal",
]


def _fan_in_out(shape):
    """Compute (fan_in, fan_out) for a weight of the given shape."""
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_out, fan_in = shape[0], shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def xavier_uniform(shape, rng, gain=1.0):
    """Glorot/Xavier uniform initialisation ``U(-a, a)``."""
    fan_in, fan_out = _fan_in_out(shape)
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def xavier_normal(shape, rng, gain=1.0):
    """Glorot/Xavier normal initialisation ``N(0, std²)``."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng, nonlinearity="relu"):
    """He/Kaiming uniform initialisation for ReLU-family activations."""
    fan_in, _ = _fan_in_out(shape)
    gain = np.sqrt(2.0) if nonlinearity in ("relu", "gelu") else 1.0
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape, rng, nonlinearity="relu"):
    """He/Kaiming normal initialisation for ReLU-family activations."""
    fan_in, _ = _fan_in_out(shape)
    gain = np.sqrt(2.0) if nonlinearity in ("relu", "gelu") else 1.0
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape)


def normal(shape, rng, std=0.02, mean=0.0):
    """Plain Gaussian initialisation (ViT-style ``std=0.02`` default)."""
    return rng.normal(mean, std, size=shape)


def truncated_normal(shape, rng, std=0.02, mean=0.0, bound=2.0):
    """Gaussian initialisation resampled to lie within ``bound`` std-devs."""
    values = rng.normal(mean, std, size=shape)
    limit = bound * std
    out_of_range = np.abs(values - mean) > limit
    while np.any(out_of_range):
        values[out_of_range] = rng.normal(mean, std, size=int(out_of_range.sum()))
        out_of_range = np.abs(values - mean) > limit
    return values


def zeros(shape, rng=None):
    """All-zero initialisation (``rng`` accepted for API uniformity)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape, rng=None):
    """All-one initialisation (``rng`` accepted for API uniformity)."""
    return np.ones(shape, dtype=np.float64)
