"""Multi-head self-attention used by the Easz reconstruction transformer.

The attention operates over the sub-patch tokens of a *single* image patch
(the paper's two-stage patchify confines attention to an ``n×n`` patch), so
token counts stay small — typically ``(n/b)²`` which is 64 for ``n=32, b=4``.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import Linear, Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention (Vaswani et al., 2017).

    Parameters
    ----------
    d_model:
        Token embedding width.
    num_heads:
        Number of attention heads; must divide ``d_model``.
    rng:
        Random generator used for weight initialisation.
    """

    def __init__(self, d_model, num_heads, rng=None):
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.query = Linear(d_model, d_model, rng=rng)
        self.key = Linear(d_model, d_model, rng=rng)
        self.value = Linear(d_model, d_model, rng=rng)
        self.out = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x, batch, tokens):
        # (batch, tokens, d_model) -> (batch, heads, tokens, head_dim)
        return x.reshape(batch, tokens, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x, batch, tokens):
        # (batch, heads, tokens, head_dim) -> (batch, tokens, d_model)
        return x.transpose(0, 2, 1, 3).reshape(batch, tokens, self.d_model)

    def forward(self, x, mask=None):
        """Apply self-attention to ``x`` of shape ``(batch, tokens, d_model)``.

        ``mask`` is an optional additive attention mask broadcastable to
        ``(batch, heads, tokens, tokens)``.
        """
        batch, tokens, _ = x.shape
        q = self._split_heads(self.query(x), batch, tokens)
        k = self._split_heads(self.key(x), batch, tokens)
        v = self._split_heads(self.value(x), batch, tokens)
        attended, _ = F.scaled_dot_product_attention(q, k, v, mask=mask)
        merged = self._merge_heads(attended, batch, tokens)
        return self.out(merged)

    def attention_flops(self, tokens):
        """Analytic FLOP count of one forward pass over ``tokens`` tokens.

        Used by :mod:`repro.edge.latency` and the two-stage-patchify ablation
        to reason about the paper's complexity analysis (Section III-B).
        """
        d = self.d_model
        projections = 4 * tokens * d * d
        scores = tokens * tokens * d
        weighted_sum = tokens * tokens * d
        return 2 * (projections + scores + weighted_sum)
