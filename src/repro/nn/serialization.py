"""Model checkpointing for :mod:`repro.nn` modules.

Checkpoints are plain ``.npz`` archives mapping parameter names to arrays,
so they can be inspected with numpy alone.  This replaces ``torch.save`` in
the paper's training pipeline.
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "state_dict_num_bytes"]

_META_KEY = "__meta_json__"


def save_checkpoint(module, path, metadata=None):
    """Serialise ``module.state_dict()`` (plus optional metadata) to ``path``.

    Parameters
    ----------
    module:
        Any :class:`repro.nn.layers.Module`.
    path:
        Destination ``.npz`` file; parent directories are created.
    metadata:
        Optional JSON-serialisable dict stored alongside the weights
        (e.g. training configuration, epoch count).
    """
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    payload = {key: np.asarray(value) for key, value in state.items()}
    payload[_META_KEY] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(module, path):
    """Load weights saved by :func:`save_checkpoint` into ``module``.

    Returns the metadata dict stored with the checkpoint.
    """
    with np.load(path, allow_pickle=False) as archive:
        metadata = {}
        state = {}
        for key in archive.files:
            if key == _META_KEY:
                metadata = json.loads(bytes(archive[key].tobytes()).decode("utf-8"))
            else:
                state[key] = archive[key]
    module.load_state_dict(state)
    return metadata


def state_dict_num_bytes(state, bytes_per_param=4):
    """Size in bytes of a state dict assuming fp32 storage per parameter."""
    return sum(int(np.asarray(v).size) for v in state.values()) * bytes_per_param
