"""Stateful neural-network modules (layers) built on :mod:`repro.nn.tensor`.

The API intentionally mirrors a small subset of ``torch.nn`` so the Easz
reconstruction network reads like the PyTorch model the paper describes:
``Module``, ``Parameter``, ``Linear``, ``LayerNorm``, ``Dropout``,
``Embedding``, ``Sequential``, a simple ``Conv2d`` (used by the learned codec
baselines and the LPIPS-proxy feature extractor) and activation wrappers.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "Sequential",
    "ReLU",
    "GELU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Conv2d",
    "AvgPool2d",
    "Upsample2d",
]


class Parameter(Tensor):
    """A :class:`Tensor` flagged as a learnable model parameter."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Provides parameter registration/discovery, train/eval mode switching and
    ``state_dict`` (de)serialisation, in the spirit of ``torch.nn.Module``.
    """

    def __init__(self):
        self._parameters = OrderedDict()
        self._modules = OrderedDict()
        self.training = True

    # -- attribute plumbing ------------------------------------------- #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access --------------------------------------------- #
    def parameters(self):
        """Yield every :class:`Parameter` in this module and its children."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix=""):
        """Yield ``(name, parameter)`` pairs with dotted hierarchical names."""
        for name, param in self._parameters.items():
            yield (prefix + name, param)
        for child_name, module in self._modules.items():
            yield from module.named_parameters(prefix + child_name + ".")

    def num_parameters(self):
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())

    def size_bytes(self, bytes_per_param=4):
        """Approximate serialized model size, assuming fp32 storage.

        Used throughout the reproduction to report model footprints that are
        comparable with the paper's "8.7 MB vs 67 MB" numbers.
        """
        return self.num_parameters() * bytes_per_param

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- train / eval -------------------------------------------------- #
    def train(self, mode=True):
        """Switch the module (recursively) into training mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        """Switch the module (recursively) into evaluation mode."""
        return self.train(False)

    # -- state dict ----------------------------------------------------- #
    def state_dict(self, prefix=""):
        """Return an ``OrderedDict`` mapping parameter names to numpy arrays."""
        state = OrderedDict()
        for name, param in self.named_parameters(prefix):
            state[name] = param.data.copy()
        return state

    def load_state_dict(self, state):
        """Load parameter values from a ``state_dict``-style mapping."""
        own = dict(self.named_parameters())
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data = value.copy()
        return self

    # -- call ----------------------------------------------------------- #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self):
        child_repr = ", ".join(self._modules.keys())
        return f"{self.__class__.__name__}({child_repr})"


class Linear(Module):
    """Affine layer ``y = x Wᵀ + b`` with Xavier-uniform initialisation."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x):
        return F.linear(x, self.weight, self.bias)

    def __repr__(self):
        return f"Linear(in={self.in_features}, out={self.out_features})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learned affine."""

    def __init__(self, features, eps=1e-5):
        super().__init__()
        self.features = features
        self.eps = eps
        self.weight = Parameter(init.ones((features,)))
        self.bias = Parameter(init.zeros((features,)))

    def forward(self, x):
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self):
        return f"LayerNorm({self.features})"


class Dropout(Module):
    """Inverted dropout; inactive in eval mode."""

    def __init__(self, p=0.1, rng=None):
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x):
        return F.dropout(x, p=self.p, training=self.training, rng=self._rng)

    def __repr__(self):
        return f"Dropout(p={self.p})"


class Embedding(Module):
    """Lookup table mapping integer ids to learned vectors."""

    def __init__(self, num_embeddings, embedding_dim, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=0.02))

    def forward(self, indices):
        indices = np.asarray(indices.data if isinstance(indices, Tensor) else indices, dtype=np.int64)
        return self.weight[indices]

    def __repr__(self):
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Sequential(Module):
    """Run child modules in order, feeding each the previous output."""

    def __init__(self, *modules):
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __len__(self):
        return len(self._order)

    def __getitem__(self, index):
        return getattr(self, self._order[index])


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x):
        return F.relu(x)


class GELU(Module):
    """GELU activation module (tanh approximation)."""

    def forward(self, x):
        return F.gelu(x)


class Sigmoid(Module):
    """Sigmoid activation module."""

    def forward(self, x):
        return F.sigmoid(x)


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x):
        return F.tanh(x)


class Identity(Module):
    """Pass-through module."""

    def forward(self, x):
        return x


class Conv2d(Module):
    """2-D convolution implemented via im2col + matmul.

    Inputs are ``(batch, channels, height, width)``.  Used by the learned
    codec baselines (MBT / Cheng proxies), the super-resolution baselines and
    the LPIPS-proxy feature extractor.
    """

    def __init__(self, in_channels, out_channels, kernel_size, stride=1, padding=0, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def _im2col(self, x):
        batch, channels, height, width = x.shape
        k, s = self.kernel_size, self.stride
        out_h = (height - k) // s + 1
        out_w = (width - k) // s + 1
        # Gather index grid once; differentiable because fancy-indexing a
        # Tensor routes gradients through Tensor.__getitem__.
        i0 = np.repeat(np.arange(k), k).reshape(-1, 1)
        j0 = np.tile(np.arange(k), k).reshape(-1, 1)
        i1 = s * np.repeat(np.arange(out_h), out_w).reshape(1, -1)
        j1 = s * np.tile(np.arange(out_w), out_h).reshape(1, -1)
        rows = (i0 + i1).reshape(-1)
        cols = (j0 + j1).reshape(-1)
        # x[:, :, rows, cols] -> (batch, channels, k*k*out_h*out_w)
        patches = x[:, :, rows, cols]
        patches = patches.reshape(batch, channels, k * k, out_h * out_w)
        return patches, out_h, out_w

    def forward(self, x):
        if self.padding:
            p = self.padding
            x = x.pad(((0, 0), (0, 0), (p, p), (p, p)))
        patches, out_h, out_w = self._im2col(x)
        batch = patches.shape[0]
        # (batch, channels*k*k, positions)
        patches = patches.reshape(batch, self.in_channels * self.kernel_size ** 2, out_h * out_w)
        weight = self.weight.reshape(self.out_channels, self.in_channels * self.kernel_size ** 2)
        out = weight @ patches  # (batch, out_channels, positions) via broadcasting
        out = out.reshape(batch, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out = out + self.bias.reshape(1, self.out_channels, 1, 1)
        return out

    def __repr__(self):
        return (f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding})")


class AvgPool2d(Module):
    """Average pooling with square window and stride equal to the window."""

    def __init__(self, kernel_size):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x):
        k = self.kernel_size
        batch, channels, height, width = x.shape
        out_h, out_w = height // k, width // k
        x = x[:, :, : out_h * k, : out_w * k]
        x = x.reshape(batch, channels, out_h, k, out_w, k)
        return x.mean(axis=(3, 5))


class Upsample2d(Module):
    """Nearest-neighbour upsampling by an integer factor."""

    def __init__(self, scale):
        super().__init__()
        self.scale = scale

    def forward(self, x):
        s = self.scale
        batch, channels, height, width = x.shape
        rows = np.repeat(np.arange(height), s)
        cols = np.repeat(np.arange(width), s)
        return x[:, :, rows][:, :, :, cols]
