"""Learning-rate schedules and training-loop utilities for :mod:`repro.nn`.

The paper's training recipe uses a fixed learning rate, but the fine-tuning
experiments (Fig. 7d) and the larger paper-scale configuration benefit from
standard schedule machinery, so the usual suspects are provided here:
step/exponential/linear-warmup-cosine schedules, plateau reduction, early
stopping, and an exponential moving average of model weights.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "WarmupCosineLR",
    "ReduceLROnPlateau",
    "EarlyStopping",
    "ExponentialMovingAverage",
]


class LRScheduler:
    """Base class: owns the optimiser and the base learning rate.

    Sub-classes implement :meth:`compute_lr`; :meth:`step` advances the step
    counter, writes the new learning rate into ``optimizer.lr`` and returns
    it.
    """

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def compute_lr(self, step):  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self):
        """Advance one step and update the optimiser's learning rate."""
        self.step_count += 1
        lr = self.compute_lr(self.step_count)
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self):
        """The learning rate currently installed in the optimiser."""
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (useful as a no-op default)."""

    def compute_lr(self, step):
        """Always the base learning rate."""
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer, step_size, gamma=0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def compute_lr(self, step):
        """Piecewise-constant decayed learning rate."""
        return self.base_lr * self.gamma ** (step // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every step."""

    def __init__(self, optimizer, gamma=0.99):
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def compute_lr(self, step):
        """Exponentially decayed learning rate."""
        return self.base_lr * self.gamma ** step


class WarmupCosineLR(LRScheduler):
    """Linear warm-up followed by a cosine decay to ``min_lr``."""

    def __init__(self, optimizer, total_steps, warmup_steps=0, min_lr=0.0):
        super().__init__(optimizer)
        self.total_steps = max(1, int(total_steps))
        self.warmup_steps = int(warmup_steps)
        self.min_lr = float(min_lr)

    def compute_lr(self, step):
        """Warm-up then half-cosine anneal."""
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))


class ReduceLROnPlateau:
    """Reduce the learning rate when a monitored loss stops improving.

    Call :meth:`step(loss)` once per evaluation.  After ``patience``
    evaluations without an improvement larger than ``threshold`` the learning
    rate is multiplied by ``factor`` (down to ``min_lr``).
    """

    def __init__(self, optimizer, factor=0.5, patience=5, threshold=1e-4, min_lr=0.0):
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = int(patience)
        self.threshold = float(threshold)
        self.min_lr = float(min_lr)
        self.best = float("inf")
        self.bad_steps = 0
        self.num_reductions = 0

    def step(self, loss):
        """Record a loss value; reduce the learning rate on a plateau."""
        loss = float(loss)
        if loss < self.best - self.threshold:
            self.best = loss
            self.bad_steps = 0
        else:
            self.bad_steps += 1
            if self.bad_steps > self.patience:
                new_lr = max(self.min_lr, self.optimizer.lr * self.factor)
                if new_lr < self.optimizer.lr:
                    self.optimizer.lr = new_lr
                    self.num_reductions += 1
                self.bad_steps = 0
        return self.optimizer.lr


class EarlyStopping:
    """Stop training when the monitored loss has not improved for ``patience`` steps."""

    def __init__(self, patience=10, threshold=0.0):
        self.patience = int(patience)
        self.threshold = float(threshold)
        self.best = float("inf")
        self.bad_steps = 0
        self.should_stop = False

    def step(self, loss):
        """Record a loss; returns ``True`` when training should stop."""
        loss = float(loss)
        if loss < self.best - self.threshold:
            self.best = loss
            self.bad_steps = 0
        else:
            self.bad_steps += 1
            if self.bad_steps >= self.patience:
                self.should_stop = True
        return self.should_stop


class ExponentialMovingAverage:
    """Exponential moving average of model parameters.

    Keeps a shadow copy of every parameter and blends it towards the live
    weights after each optimiser step (``shadow = decay·shadow + (1-decay)·w``).
    :meth:`apply_to` temporarily installs the averaged weights (e.g. for
    evaluation) and :meth:`restore` puts the live weights back.
    """

    def __init__(self, parameters, decay=0.999):
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.decay = float(decay)
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("EMA received an empty parameter list")
        self.shadow = [np.array(p.data, copy=True) for p in self.parameters]
        self._backup = None

    def update(self):
        """Blend the shadow weights towards the current live weights."""
        for shadow, parameter in zip(self.shadow, self.parameters):
            shadow *= self.decay
            shadow += (1.0 - self.decay) * parameter.data

    def apply_to(self):
        """Install the averaged weights into the live parameters (reversibly)."""
        self._backup = [np.array(p.data, copy=True) for p in self.parameters]
        for shadow, parameter in zip(self.shadow, self.parameters):
            parameter.data = np.array(shadow, copy=True)

    def restore(self):
        """Undo :meth:`apply_to`, restoring the live training weights."""
        if self._backup is None:
            raise RuntimeError("restore() called without a preceding apply_to()")
        for backup, parameter in zip(self._backup, self.parameters):
            parameter.data = backup
        self._backup = None
