"""First-order optimisers for :mod:`repro.nn` models.

The paper trains the Easz reconstruction transformer with a learning rate of
2.8e-4 and weight decay of 0.05 — the AdamW defaults below mirror that
configuration.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "CosineSchedule", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging training stability).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in parameters:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimiser: holds parameters and implements ``zero_grad``."""

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self):
        """Clear gradients on all tracked parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self):  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters, lr=1e-2, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        """Apply one SGD update to every parameter with a gradient."""
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data = p.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with optional L2 regularisation."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        """Apply one Adam update to every parameter with a gradient."""
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019).

    Defaults match the paper's training setting: ``lr=2.8e-4``,
    ``weight_decay=0.05``.
    """

    def __init__(self, parameters, lr=2.8e-4, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.05):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self):
        """Adam update followed by decoupled weight decay."""
        if self.decoupled_weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data = p.data * (1.0 - self.lr * self.decoupled_weight_decay)
        super().step()


class CosineSchedule:
    """Cosine learning-rate schedule with linear warm-up.

    Call :meth:`step` once per optimiser step; it mutates ``optimizer.lr``.
    """

    def __init__(self, optimizer, total_steps, warmup_steps=0, min_lr=0.0):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = max(1, total_steps)
        self.warmup_steps = warmup_steps
        self.min_lr = min_lr
        self._step = 0

    def step(self):
        """Advance the schedule and update the optimiser's learning rate."""
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            progress = (self._step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
            progress = min(1.0, progress)
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = lr
        return lr
