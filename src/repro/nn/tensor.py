"""Reverse-mode automatic differentiation on top of numpy arrays.

This module is the foundation of :mod:`repro.nn`, the small neural-network
framework the Easz reproduction is built on (the paper uses PyTorch, which is
not available in this environment).  It provides a :class:`Tensor` type that
records the operations applied to it and can back-propagate gradients through
them with :meth:`Tensor.backward`.

The design follows the classic define-by-run tape approach:

* every differentiable operation produces a new :class:`Tensor` whose
  ``_backward`` closure knows how to route the output gradient to the
  gradients of its parents;
* :meth:`Tensor.backward` performs a reverse topological traversal of the
  graph and accumulates gradients into ``Tensor.grad``.

Only float arrays participate in differentiation; integer tensors may be used
as indices.  Broadcasting is supported for elementwise operations and the
gradient is "un-broadcast" (summed) back to the parent's shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation/inference so that no autograd graph is built::

        with no_grad():
            y = model(x)
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc_val, exc_tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    """Return ``True`` when autograd graph construction is enabled."""
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Sum ``grad`` so that it has ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad=False):
    """Coerce ``value`` (Tensor, ndarray or scalar) into a :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy-backed array that supports reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Float data is stored as ``float64``
        by default (numerical robustness matters more than speed at the
        scale of this reproduction).
    requires_grad:
        When ``True`` the tensor accumulates gradients during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100.0  # make numpy defer to Tensor dunders

    def __init__(self, data, requires_grad=False, _parents=(), _op=""):
        arr = np.asarray(data)
        if arr.dtype.kind in "fc":
            arr = arr.astype(np.float64, copy=False)
        self.data = arr
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad = None
        self._backward = None
        self._parents = tuple(_parents) if self.requires_grad or any(
            isinstance(p, Tensor) and p.requires_grad for p in _parents
        ) else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self):
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self):
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self):
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Numpy dtype of the underlying array."""
        return self.data.dtype

    @property
    def T(self):
        """Transpose of the last two dimensions (matrix transpose)."""
        return self.transpose()

    def numpy(self):
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self):
        """Return the value of a single-element tensor as a Python scalar."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self):
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self):
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def __repr__(self):
        grad_str = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_str})"

    def __len__(self):
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph bookkeeping
    # ------------------------------------------------------------------ #
    def _make_child(self, data, parents, backward, op):
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else (), _op=op)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad):
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad=None):
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1.0`` which is only valid for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float64))

        topo = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if isinstance(parent, Tensor) and id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make_child(out_data, (self, other), backward, "add")

    def __radd__(self, other):
        return self.__add__(other)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make_child(out_data, (self, other), backward, "mul")

    def __rmul__(self, other):
        return self.__mul__(other)

    def __neg__(self):
        return self * -1.0

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __truediv__(self, other):
        other = as_tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other):
        return as_tensor(other) * self ** -1.0

    def __pow__(self, exponent):
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(log(x) * y)")
        exponent = float(exponent)
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * exponent * self.data ** (exponent - 1.0), self.shape))

        return self._make_child(out_data, (self,), backward, "pow")

    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, other.shape))

        return self._make_child(out_data, (self, other), backward, "matmul")

    def __rmatmul__(self, other):
        return as_tensor(other).__matmul__(self)

    # comparisons return plain numpy boolean arrays (non-differentiable)
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------ #
    # elementwise math
    # ------------------------------------------------------------------ #
    def exp(self):
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make_child(out_data, (self,), backward, "exp")

    def log(self):
        """Elementwise natural logarithm."""
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_child(out_data, (self,), backward, "log")

    def sqrt(self):
        """Elementwise square root."""
        return self ** 0.5

    def abs(self):
        """Elementwise absolute value (sub-gradient 0 at zero)."""
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make_child(out_data, (self,), backward, "abs")

    def tanh(self):
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make_child(out_data, (self,), backward, "tanh")

    def sigmoid(self):
        """Elementwise logistic sigmoid."""
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_child(out_data, (self,), backward, "sigmoid")

    def relu(self):
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward, "relu")

    def gelu(self):
        """Gaussian error linear unit (tanh approximation, as in ViT/BERT)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * (x * x * x))
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad):
            if self.requires_grad:
                dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
                dt = (1.0 - t ** 2) * dinner
                local = 0.5 * (1.0 + t) + 0.5 * x * dt
                self._accumulate(grad * local)

        return self._make_child(out_data, (self,), backward, "gelu")

    def clip(self, low, high):
        """Clamp values into ``[low, high]`` (gradient is 0 outside)."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_child(out_data, (self,), backward, "clip")

    def maximum(self, other):
        """Elementwise maximum with another tensor or scalar."""
        other = as_tensor(other)
        out_data = np.maximum(self.data, other.data)
        mask = self.data >= other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * mask, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * (~mask), other.shape))

        return self._make_child(out_data, (self, other), backward, "maximum")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims=False):
        """Sum over ``axis`` (all elements by default)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                g = np.broadcast_to(g, self.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis)
                g = np.broadcast_to(g, self.shape)
            self._accumulate(g)

        return self._make_child(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims=False):
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims=False):
        """Population variance over ``axis``."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        """Maximum over ``axis``; gradient flows to the (first) arg-max."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                mask = (self.data == self.data.max())
                mask = mask / mask.sum()
                self._accumulate(mask * g)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = (self.data == expanded).astype(np.float64)
                mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
                gg = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(mask * gg)

        return self._make_child(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape):
        """Return a tensor with the same data viewed with a new shape."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return self._make_child(out_data, (self,), backward, "reshape")

    def transpose(self, *axes):
        """Permute dimensions.  With no arguments swaps the last two axes."""
        if not axes:
            if self.ndim < 2:
                axes = tuple(range(self.ndim))
            else:
                axes = tuple(range(self.ndim - 2)) + (self.ndim - 1, self.ndim - 2)
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad).transpose(inverse))

        return self._make_child(out_data, (self,), backward, "transpose")

    def __getitem__(self, index):
        if isinstance(index, Tensor):
            index = index.data
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data, dtype=np.float64)
                np.add.at(full, index, np.asarray(grad))
                self._accumulate(full)

        return self._make_child(out_data, (self,), backward, "getitem")

    def pad(self, pad_width, value=0.0):
        """Pad with a constant ``value``.

        ``pad_width`` follows :func:`numpy.pad` conventions (a sequence of
        ``(before, after)`` pairs, one per dimension).
        """
        out_data = np.pad(self.data, pad_width, mode="constant", constant_values=value)
        slices = tuple(slice(before, before + size) for (before, _), size in zip(pad_width, self.shape))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.asarray(grad)[slices])

        return self._make_child(out_data, (self,), backward, "pad")

    @staticmethod
    def concatenate(tensors, axis=0):
        """Concatenate a sequence of tensors along ``axis``."""
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]

        def backward(grad):
            grad = np.asarray(grad)
            start = 0
            for t, size in zip(tensors, sizes):
                if t.requires_grad:
                    idx = [slice(None)] * grad.ndim
                    idx[axis] = slice(start, start + size)
                    t._accumulate(grad[tuple(idx)])
                start += size

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires,
                     _parents=tuple(tensors) if requires else (), _op="concat")
        if requires:
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors, axis=0):
        """Stack a sequence of tensors along a new ``axis``."""
        tensors = [as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            grad = np.asarray(grad)
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(grad, i, axis=axis))

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires,
                     _parents=tuple(tensors) if requires else (), _op="stack")
        if requires:
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # softmax family (implemented here for numerical stability)
    # ------------------------------------------------------------------ #
    def softmax(self, axis=-1):
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad):
            if self.requires_grad:
                grad = np.asarray(grad)
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return self._make_child(out_data, (self,), backward, "softmax")

    def log_softmax(self, axis=-1):
        """Log of the softmax along ``axis`` (numerically stable)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - logsum
        softmax = np.exp(out_data)

        def backward(grad):
            if self.requires_grad:
                grad = np.asarray(grad)
                self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make_child(out_data, (self,), backward, "log_softmax")
