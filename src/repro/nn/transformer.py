"""Transformer building blocks for the Easz reconstruction network.

The paper (Fig. 5) describes encoder and decoder blocks each containing
"three layernorms, one attention layer, and one feedforward layer".  We model
that as a pre-norm transformer block: LayerNorm → attention → residual,
LayerNorm → feed-forward → residual, followed by an output LayerNorm — three
LayerNorms, one attention, one feed-forward per block.
"""

from __future__ import annotations

import numpy as np

from .attention import MultiHeadSelfAttention
from .layers import Dropout, GELU, LayerNorm, Linear, Module, Sequential

__all__ = ["FeedForward", "TransformerBlock", "TransformerStack"]


class FeedForward(Module):
    """Position-wise feed-forward network: Linear → GELU → Linear."""

    def __init__(self, d_model, hidden_mult=4, dropout=0.0, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        hidden = int(d_model * hidden_mult)
        self.net = Sequential(
            Linear(d_model, hidden, rng=rng),
            GELU(),
            Linear(hidden, d_model, rng=rng),
            Dropout(dropout, rng=rng),
        )

    def forward(self, x):
        return self.net(x)


class TransformerBlock(Module):
    """Pre-norm transformer block with three LayerNorms (paper Fig. 5).

    Layout::

        x = x + Attention(LN1(x))
        x = x + FeedForward(LN2(x))
        return LN3(x)
    """

    def __init__(self, d_model, num_heads, hidden_mult=4, dropout=0.0, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm_attn = LayerNorm(d_model)
        self.attention = MultiHeadSelfAttention(d_model, num_heads, rng=rng)
        self.norm_ff = LayerNorm(d_model)
        self.feed_forward = FeedForward(d_model, hidden_mult, dropout, rng=rng)
        self.norm_out = LayerNorm(d_model)

    def forward(self, x, mask=None):
        x = x + self.attention(self.norm_attn(x), mask=mask)
        x = x + self.feed_forward(self.norm_ff(x))
        return self.norm_out(x)

    def flops(self, tokens, hidden_mult=4):
        """Approximate forward FLOPs for a sequence of ``tokens`` tokens."""
        d = self.attention.d_model
        attn = self.attention.attention_flops(tokens)
        ff = 2 * tokens * (d * d * hidden_mult) * 2
        return attn + ff


class TransformerStack(Module):
    """A stack of :class:`TransformerBlock` applied in sequence."""

    def __init__(self, num_blocks, d_model, num_heads, hidden_mult=4, dropout=0.0, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_blocks = num_blocks
        self._block_names = []
        for i in range(num_blocks):
            name = f"block{i}"
            setattr(self, name, TransformerBlock(d_model, num_heads, hidden_mult, dropout, rng=rng))
            self._block_names.append(name)

    def forward(self, x, mask=None):
        for name in self._block_names:
            x = getattr(self, name)(x, mask=mask)
        return x

    def blocks(self):
        """Iterate over the contained :class:`TransformerBlock` modules."""
        for name in self._block_names:
            yield getattr(self, name)

    def flops(self, tokens):
        """Approximate forward FLOPs of the whole stack for ``tokens`` tokens."""
        return sum(block.flops(tokens) for block in self.blocks())
