"""Functional (stateless) neural-network operations.

These operate on :class:`repro.nn.tensor.Tensor` objects and compose the
building blocks used by :mod:`repro.nn.layers`: activations, normalisation,
losses and the scaled dot-product attention primitive used by the Easz
reconstruction transformer.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "layer_norm",
    "dropout",
    "linear",
    "mse_loss",
    "l1_loss",
    "smooth_l1_loss",
    "cross_entropy",
    "scaled_dot_product_attention",
]


def relu(x):
    """Rectified linear unit activation."""
    return as_tensor(x).relu()


def gelu(x):
    """Gaussian error linear unit activation (tanh approximation)."""
    return as_tensor(x).gelu()


def sigmoid(x):
    """Logistic sigmoid activation."""
    return as_tensor(x).sigmoid()


def tanh(x):
    """Hyperbolic tangent activation."""
    return as_tensor(x).tanh()


def softmax(x, axis=-1):
    """Softmax along ``axis``."""
    return as_tensor(x).softmax(axis=axis)


def log_softmax(x, axis=-1):
    """Log-softmax along ``axis``."""
    return as_tensor(x).log_softmax(axis=axis)


def layer_norm(x, weight=None, bias=None, eps=1e-5):
    """Layer normalisation over the last dimension.

    Parameters
    ----------
    x:
        Input tensor ``(..., features)``.
    weight, bias:
        Optional learned affine parameters of shape ``(features,)``.
    eps:
        Numerical stabiliser added to the variance.
    """
    x = as_tensor(x)
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mu) * ((var + eps) ** -0.5)
    if weight is not None:
        normed = normed * weight
    if bias is not None:
        normed = normed + bias
    return normed


def dropout(x, p=0.1, training=True, rng=None):
    """Inverted dropout: zero a fraction ``p`` of elements during training."""
    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def linear(x, weight, bias=None):
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout).

    Inputs with more than two dimensions are flattened to a single 2-D
    matmul and reshaped back: one large BLAS GEMM instead of a stack of
    per-batch-element GEMMs, which is dramatically faster for the
    (batch, tokens, features) tensors the reconstruction transformer feeds
    through every projection.
    """
    x = as_tensor(x)
    if x.ndim > 2:
        lead = x.shape[:-1]
        out = x.reshape(-1, x.shape[-1]) @ weight.transpose()
        out = out.reshape(lead + (weight.shape[0],))
    else:
        out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


def mse_loss(prediction, target):
    """Mean squared error between ``prediction`` and ``target``."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l1_loss(prediction, target):
    """Mean absolute error between ``prediction`` and ``target``."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    return (prediction - target).abs().mean()


def smooth_l1_loss(prediction, target, beta=1.0):
    """Huber / smooth-L1 loss with transition point ``beta``."""
    prediction = as_tensor(prediction)
    target = as_tensor(target)
    diff = (prediction - target).abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_part = diff - 0.5 * beta
    # Select branch with a non-differentiable mask on |diff|.
    mask = Tensor((diff.data < beta).astype(np.float64))
    return (quadratic * mask + linear_part * (1.0 - mask)).mean()


def cross_entropy(logits, targets):
    """Cross-entropy of integer class ``targets`` given unnormalised ``logits``.

    ``logits`` has shape ``(batch, classes)`` and ``targets`` is an integer
    array of shape ``(batch,)``.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64)
    logp = logits.log_softmax(axis=-1)
    batch = logits.shape[0]
    picked = logp[np.arange(batch), targets]
    return -picked.mean()


def scaled_dot_product_attention(query, key, value, mask=None):
    """Attention(Q, K, V) = softmax(Q Kᵀ / sqrt(d)) V.

    Shapes follow the multi-head convention ``(..., tokens, head_dim)``.

    Parameters
    ----------
    mask:
        Optional additive mask broadcastable to ``(..., tokens_q, tokens_k)``;
        positions holding ``-inf`` (or a large negative value) are ignored.

    Returns
    -------
    (output, attention_weights)
    """
    query = as_tensor(query)
    key = as_tensor(key)
    value = as_tensor(value)
    d = query.shape[-1]
    scores = (query @ key.transpose()) * (1.0 / np.sqrt(d))
    if mask is not None:
        scores = scores + as_tensor(mask)
    weights = scores.softmax(axis=-1)
    return weights @ value, weights
