"""``repro.nn`` — a compact numpy neural-network framework.

This package stands in for PyTorch (unavailable offline) and provides
everything the Easz reproduction needs: a reverse-mode autograd tensor,
layers (Linear, LayerNorm, Conv2d, ...), multi-head attention, transformer
blocks, optimisers (SGD/Adam/AdamW) and checkpoint (de)serialisation.
"""

from . import functional, init
from .attention import MultiHeadSelfAttention
from .layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Embedding,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Upsample2d,
)
from .optim import Adam, AdamW, CosineSchedule, Optimizer, SGD, clip_grad_norm
from .schedulers import (
    ConstantLR,
    EarlyStopping,
    ExponentialLR,
    ExponentialMovingAverage,
    LRScheduler,
    ReduceLROnPlateau,
    StepLR,
    WarmupCosineLR,
)
from .serialization import load_checkpoint, save_checkpoint, state_dict_num_bytes
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .transformer import FeedForward, TransformerBlock, TransformerStack

__all__ = [
    "functional",
    "init",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "Sequential",
    "ReLU",
    "GELU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Conv2d",
    "AvgPool2d",
    "Upsample2d",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerBlock",
    "TransformerStack",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "CosineSchedule",
    "clip_grad_norm",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "WarmupCosineLR",
    "ReduceLROnPlateau",
    "EarlyStopping",
    "ExponentialMovingAverage",
    "save_checkpoint",
    "load_checkpoint",
    "state_dict_num_bytes",
]
