"""End-to-end integration tests tying the whole system together.

These mirror the paper's experimental claims at miniature scale: the full
pretrain → erase-and-squeeze → compress → transmit → decode → reconstruct
pipeline, the mask-strategy ablation and the efficiency story.
"""

import numpy as np

from repro.codecs import JpegCodec, MbtCodec
from repro.core import (
    EaszCodec,
    EaszConfig,
    erase_and_squeeze_image,
    proposed_mask,
    random_mask,
    reconstruct_image,
    unsqueeze_image,
)
from repro.edge import EdgeServerTestbed
from repro.metrics import brisque, file_saving_ratio, mse, psnr
from repro.sr import BicubicUpscaler


class TestEndToEndPipeline:
    def test_full_pipeline_with_trained_model(self, tiny_config, trained_tiny_model, kodak_small):
        """Compress → decompress → reconstruct: the reconstruction must clearly
        beat the zero-filled baseline and save bits vs the plain codec."""
        image = kodak_small[0]
        base = JpegCodec(quality=85)
        codec = EaszCodec(config=tiny_config, base_codec=base, model=trained_tiny_model, seed=0)

        reconstruction, compressed = codec.roundtrip(image)
        plain_reconstruction, plain_compressed = base.roundtrip(image)

        # rate: erase-and-squeeze shrinks the payload
        assert compressed.bpp() < plain_compressed.bpp()

        # distortion: reconstruction is far better than leaving holes
        filled = codec.decoder.decode(compressed.metadata["easz_package"], reconstruct=False)
        assert psnr(image, reconstruction) > psnr(image, filled) + 3.0

    def test_easz_versus_super_resolution_tradeoffs(self, tiny_config,
                                                    trained_tiny_model, kodak_small):
        """Table I comparison points that survive the miniature scale: Easz's
        reconstruction model is an order of magnitude smaller than the SR
        baselines, it keeps 75% of pixels bit-exact (SR keeps none), and it
        offers adjustable reduction ratios (SR is locked to 1/factor²).

        The paper's absolute PSNR win (28.96 dB vs ≈25 dB) needs the
        full-scale model and real Kodak content; the benchmark records the
        measured values and EXPERIMENTS.md discusses the gap.
        """
        image = kodak_small[0]
        mask = proposed_mask(tiny_config.grid_size, tiny_config.erase_per_row, seed=0)
        squeezed, grid, _ = erase_and_squeeze_image(image, mask, tiny_config.patch_size,
                                                    tiny_config.subpatch_size)
        filled = unsqueeze_image(squeezed, mask, tiny_config.patch_size,
                                 tiny_config.subpatch_size, grid, image.shape, fill="zero")
        easz_reconstruction = reconstruct_image(trained_tiny_model, filled, mask)
        sr = BicubicUpscaler(factor=2)
        sr_reconstruction = sr.roundtrip(image)
        # both pathways produce valid reconstructions
        assert easz_reconstruction.shape == sr_reconstruction.shape == image.shape
        # Easz transmits 75% of pixels exactly; SR transmits 25% (downsampled)
        kept_fraction = 1.0 - tiny_config.erase_ratio
        assert kept_fraction > 1.0 - sr.reduction_ratio() - 0.51
        # model-size advantage (paper: 8.7 MB vs 67 MB)
        from repro.sr import SwinIRProxy
        assert trained_tiny_model.model_size_bytes() < SwinIRProxy.model_size_bytes / 8
        # Easz reconstruction is usable (clearly better than the holes it fills)
        assert psnr(image, easz_reconstruction) > psnr(image, filled) + 3.0

    def test_proposed_mask_beats_random_mask_on_jpeg_rate(self, kodak_small):
        """Fig. 3a: at equal erase ratio, the structured mask compresses better
        through JPEG than the unconstrained random mask."""
        image = kodak_small[0]
        codec = JpegCodec(quality=75)
        baseline = codec.compress(image).num_bytes
        savings = {}
        for name, mask_fn in (("proposed", proposed_mask), ("random", random_mask)):
            ratios = []
            for seed in range(3):
                mask = mask_fn(4, 1, seed=seed)
                squeezed, _, _ = erase_and_squeeze_image(image, mask, 16, 4)
                ratios.append(file_saving_ratio(baseline, codec.compress(squeezed).num_bytes))
            savings[name] = float(np.mean(ratios))
        # both strategies must actually save bits; at this miniature scale the
        # proposed mask must stay within noise of the random mask (the paper's
        # consistent advantage emerges at full patch-grid sizes — see the
        # Fig. 3 benchmark and EXPERIMENTS.md)
        assert savings["proposed"] > 0.05
        assert savings["random"] > 0.05
        assert savings["proposed"] >= savings["random"] - 0.05

    def test_proposed_mask_not_worse_for_reconstruction(self, tiny_config, trained_tiny_model,
                                                        kodak_small):
        """Fig. 3b: reconstruction MSE under the proposed mask should not be
        worse than under the unconstrained random mask."""
        image = kodak_small[1]
        def recon_mse(mask):
            squeezed, grid, _ = erase_and_squeeze_image(image, mask, tiny_config.patch_size,
                                                        tiny_config.subpatch_size)
            filled = unsqueeze_image(squeezed, mask, tiny_config.patch_size,
                                     tiny_config.subpatch_size, grid, image.shape, fill="zero")
            return mse(image, reconstruct_image(trained_tiny_model, filled, mask))
        proposed_scores = [recon_mse(proposed_mask(4, 1, seed=s)) for s in range(3)]
        random_scores = [recon_mse(random_mask(4, 1, seed=s)) for s in range(3)]
        assert np.mean(proposed_scores) <= np.mean(random_scores) * 1.15

    def test_easz_improves_jpeg_perceptual_quality_at_lower_rate(self, tiny_config,
                                                                 trained_tiny_model,
                                                                 kodak_small):
        """Table II direction: +Easz must not increase BPP, and the perceptual
        (BRISQUE) score of the reconstruction should not collapse."""
        image = kodak_small[0]
        base = JpegCodec(quality=60)
        easz = EaszCodec(config=tiny_config, base_codec=base, model=trained_tiny_model, seed=0)
        plain_rec, plain_comp = base.roundtrip(image)
        easz_rec, easz_comp = easz.roundtrip(image)
        # rate: +Easz never increases BPP (Table II reports equal-or-lower BPP)
        assert easz_comp.bpp() <= plain_comp.bpp() * 1.02
        # perception: reconstructing the erased content must improve the
        # no-reference score relative to transmitting the holes unfilled
        package = easz_comp.metadata["easz_package"]
        filled = easz.decoder.decode(package, reconstruct=False)
        assert brisque(easz_rec) <= brisque(filled)
        assert np.isfinite(brisque(plain_rec))

    def test_testbed_end_to_end_latency_ordering(self, tiny_config, trained_tiny_model,
                                                 kodak_small):
        """Fig. 8d: Easz end-to-end latency sits far below the NN codecs."""
        image = kodak_small[0]
        testbed = EdgeServerTestbed()
        easz = EaszCodec(config=EaszConfig.paper(), base_codec=JpegCodec(quality=75))
        easz_report = testbed.run(easz, shape=(512, 768, 3), payload_bytes=20_000,
                                  include_load=False)
        mbt_report = testbed.run(MbtCodec(4), shape=(512, 768, 3), payload_bytes=20_000,
                                 include_load=False)
        reduction = 1.0 - easz_report.timing.total_ms / mbt_report.timing.total_ms
        assert reduction > 0.7  # paper reports ~89%

    def test_agile_compression_level_change_is_model_free(self, trained_tiny_model, kodak_small):
        """Switching erase ratio reuses the same weights (no model switch)."""
        image = kodak_small[0]
        base = JpegCodec(quality=85)
        bpps = []
        for erase_per_row in (0, 1, 2):
            config = EaszConfig(patch_size=8, subpatch_size=2, erase_per_row=erase_per_row,
                                d_model=16, num_heads=2, encoder_blocks=1, decoder_blocks=1)
            codec = EaszCodec(config=config, base_codec=base, model=trained_tiny_model, seed=0)
            reconstruction, compressed = codec.roundtrip(image)
            assert reconstruction.shape == image.shape
            bpps.append(compressed.bpp())
        assert bpps[0] > bpps[1] > bpps[2]

    def test_mask_transmission_overhead_is_negligible(self, tiny_config, kodak_small):
        image = kodak_small[0]
        codec = EaszCodec(config=tiny_config, base_codec=JpegCodec(quality=85), seed=0)
        compressed = codec.compress(image)
        assert compressed.extra_bytes < 0.05 * compressed.num_bytes
