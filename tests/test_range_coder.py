"""Equivalence suite: byte-oriented range coder vs the legacy arithmetic coder.

The range coder is a different byte *format* (tagged in payloads and codec
containers) but must preserve the legacy coder's adaptive-model semantics
exactly: same counts after the same symbol stream, same compression to
within a few bytes, and byte-exact round-trips in both directions for every
alphabet shape the codecs use.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.bpg import BpgCodec
from repro.codecs.neural import LearnedTransformCodec
from repro.entropy import (
    FORMAT_LEGACY,
    FORMAT_RANGE,
    AdaptiveModel,
    ArithmeticEncoder,
    RangeDecoder,
    RangeEncoder,
    decode_symbols,
    encode_symbols,
)


class TestRoundTrip:
    @given(st.lists(st.integers(0, 7), min_size=0, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_range_roundtrip_small_alphabet(self, symbols):
        payload = encode_symbols(symbols, 8)
        assert decode_symbols(payload, len(symbols), 8) == symbols

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=300),
           st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_both_backends_roundtrip_byte_alphabet(self, symbols, legacy):
        payload = encode_symbols(symbols, 256, legacy=legacy)
        assert payload[0] == (FORMAT_LEGACY if legacy else FORMAT_RANGE)
        assert decode_symbols(payload, len(symbols), 256) == symbols

    def test_empty_stream(self):
        for legacy in (False, True):
            payload = encode_symbols([], 4, legacy=legacy)
            assert decode_symbols(payload, 0, 4) == []

    def test_single_symbol_alphabet(self):
        payload = encode_symbols([0] * 100, 1)
        assert decode_symbols(payload, 100, 1) == [0] * 100

    def test_degenerate_single_symbol_stream_is_tiny(self):
        payload = encode_symbols([3] * 5000, 8)
        assert decode_symbols(payload, 5000, 8) == [3] * 5000
        assert len(payload) < 150

    def test_large_alphabet(self):
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 4097, size=2000).tolist()
        payload = encode_symbols(symbols, 4097)
        assert decode_symbols(payload, len(symbols), 4097) == symbols

    def test_saturation_rescale_roundtrips(self):
        """Enough symbols to trip the 2^16 halving several times."""
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 4, size=12000).tolist()
        for legacy in (False, True):
            payload = encode_symbols(symbols, 4, legacy=legacy)
            assert decode_symbols(payload, len(symbols), 4) == symbols

    def test_unknown_format_tag_rejected(self):
        with pytest.raises(ValueError, match="format tag"):
            decode_symbols(b"\x07abc", 1, 4)
        with pytest.raises(ValueError, match="format tag"):
            decode_symbols(b"", 0, 4)


class TestModelStateParity:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=500),
           st.integers(64, 200))
    @settings(max_examples=25, deadline=None)
    def test_encoder_state_matches_legacy(self, symbols, num_symbols):
        legacy_model = AdaptiveModel(num_symbols)
        legacy = ArithmeticEncoder()
        for symbol in symbols:
            legacy.encode(legacy_model, symbol)
        legacy.finish()

        range_model = AdaptiveModel(num_symbols)
        encoder = RangeEncoder()
        encoder.encode_array(range_model, symbols)
        encoder.finish()

        assert np.array_equal(legacy_model.counts, range_model.counts)
        assert legacy_model.total == range_model.total
        assert np.array_equal(legacy_model.cumulative, range_model.cumulative)

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_decoder_state_matches_encoder(self, symbols):
        enc_model = AdaptiveModel(32)
        encoder = RangeEncoder()
        encoder.encode_array(enc_model, symbols)
        payload = encoder.finish()

        dec_model = AdaptiveModel(32)
        decoder = RangeDecoder(payload)
        assert decoder.decode_array(dec_model, len(symbols)) == symbols
        decoder.sync_models()
        assert np.array_equal(enc_model.counts, dec_model.counts)

    def test_streaming_and_array_calls_interleave(self):
        """Singles and array calls over interleaved models share one stream."""
        rng = np.random.default_rng(2)
        small, big = AdaptiveModel(4), AdaptiveModel(256)
        encoder = RangeEncoder()
        script = []
        for _ in range(50):
            single = int(rng.integers(0, 4))
            block = rng.integers(0, 256, size=16).tolist()
            encoder.encode(small, single)
            encoder.encode_array(big, block)
            script.append((single, block))
        payload = encoder.finish()

        small_d, big_d = AdaptiveModel(4), AdaptiveModel(256)
        decoder = RangeDecoder(payload)
        for single, block in script:
            assert decoder.decode(small_d) == single
            assert decoder.decode_array(big_d, 16) == block

    def test_compression_matches_legacy_within_a_few_bytes(self):
        rng = np.random.default_rng(3)
        probabilities = np.exp(-0.08 * np.arange(256))
        probabilities /= probabilities.sum()
        symbols = rng.choice(256, size=30000, p=probabilities).tolist()
        range_bytes = len(encode_symbols(symbols, 256))
        legacy_bytes = len(encode_symbols(symbols, 256, legacy=True))
        assert abs(range_bytes - legacy_bytes) <= 16


class TestAdaptiveModelIncrementalUpdates:
    def test_update_is_incremental(self):
        """The satellite regression: updates must not rebuild the full
        cumulative table (the seed behaviour) outside saturation rescales."""
        model = AdaptiveModel(4096)
        rebuilds_after_init = model.rebuilds
        rng = np.random.default_rng(0)
        for symbol in rng.integers(0, 4096, size=500):
            model.update(int(symbol))
        # 4096 + 500*32 < 2^16: no rescale may have happened, hence no rebuild
        assert model.rebuilds == rebuilds_after_init

    def test_update_cost_stays_flat_on_long_streams(self):
        """Cost guard: 20k updates on a big alphabet in far less time than
        the rebuild-per-update seed implementation needed (~2 CPU-s here)."""
        import time

        model = AdaptiveModel(8192)
        rng = np.random.default_rng(1)
        symbols = rng.integers(0, 8192, size=20000).tolist()
        start = time.process_time()
        for symbol in symbols:
            model.update(symbol)
        elapsed = time.process_time() - start
        assert elapsed < 1.0, (
            f"20k AdaptiveModel updates took {elapsed:.2f} CPU-s; updates "
            "have likely regressed to full cumulative-table rebuilds")

    def test_cumulative_stays_consistent_through_rescales(self):
        model = AdaptiveModel(16)
        rng = np.random.default_rng(2)
        for symbol in rng.integers(0, 16, size=9000):
            model.update(int(symbol))
        reference = np.concatenate(([0], np.cumsum(model.counts)))
        assert np.array_equal(model.cumulative, reference)
        assert model.total == int(reference[-1])
        assert model.rebuilds > 1  # the stream saturates 2^16 repeatedly

    def test_set_counts_validates_shape(self):
        model = AdaptiveModel(8)
        with pytest.raises(ValueError):
            model.set_counts([1, 2, 3])


class TestCodecIntegration:
    @pytest.mark.parametrize("color", [False, True])
    def test_bpg_range_and_legacy_agree(self, color):
        rng = np.random.default_rng(4)
        image = rng.random((48, 56, 3) if color else (48, 56))
        fast = BpgCodec(qp=30)
        legacy = BpgCodec(qp=30, legacy_entropy=True)
        fast_payload = fast.compress(image)
        legacy_payload = legacy.compress(image)
        assert fast_payload.payload[10] == FORMAT_RANGE
        assert legacy_payload.payload[10] == FORMAT_LEGACY
        decoded_fast = np.asarray(fast.decompress(fast_payload))
        decoded_legacy = np.asarray(legacy.decompress(legacy_payload))
        assert np.allclose(decoded_fast, decoded_legacy, atol=1e-12)
        # either codec instance decodes either container (format byte wins)
        assert np.allclose(np.asarray(legacy.decompress(fast_payload)), decoded_fast)
        assert np.allclose(np.asarray(fast.decompress(legacy_payload)), decoded_legacy)
        assert abs(len(fast_payload.payload) - len(legacy_payload.payload)) < 64

    @pytest.mark.parametrize("entropy_model", ["factorized", "hyperprior", "context"])
    def test_learned_codec_range_and_legacy_agree(self, entropy_model):
        rng = np.random.default_rng(5)
        image = rng.random((40, 48))
        fast = LearnedTransformCodec(entropy_model=entropy_model)
        legacy = LearnedTransformCodec(entropy_model=entropy_model,
                                       legacy_entropy=True)
        fast_payload = fast.compress(image)
        legacy_payload = legacy.compress(image)
        assert fast_payload.payload[10] == FORMAT_RANGE
        assert legacy_payload.payload[10] == FORMAT_LEGACY
        decoded_fast = np.asarray(fast.decompress(fast_payload))
        assert np.allclose(decoded_fast, np.asarray(legacy.decompress(legacy_payload)),
                           atol=1e-12)
        assert np.allclose(np.asarray(legacy.decompress(fast_payload)), decoded_fast)
        assert abs(len(fast_payload.payload) - len(legacy_payload.payload)) < 64

    def test_corrupt_bpg_format_tag_rejected(self):
        rng = np.random.default_rng(6)
        compressed = BpgCodec(qp=30).compress(rng.random((16, 16)))
        corrupted = bytearray(compressed.payload)
        corrupted[10] = 9
        compressed.payload = bytes(corrupted)
        with pytest.raises(ValueError, match="entropy format tag"):
            BpgCodec(qp=30).decompress(compressed)
