"""Tests for benchmarks/diff_bench.py — the CI guarded-bar gate.

The script is not importable as a package module (benchmarks/ is not a
package), so it is loaded by file path.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "diff_bench.py"
_spec = importlib.util.spec_from_file_location("diff_bench", _SCRIPT)
diff_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(diff_bench)


def report(**sections):
    """A minimal bench JSON shape passing every guarded bar unless overridden."""
    base = {
        "roundtrip_512_rgb": {"speedup": 8.0},
        "entropy": {"speedup": 5.0},
        "dct": {"speedup": 2.0},
        "serving": {
            "batches": {"4": {"speedup_vs_sequential": 2.0}},
            "sharded": {"speedup_vs_threaded": 1.6},
            "shm": {"speedup_vs_queue": 1.3},
        },
    }
    base.update(sections)
    return base


def test_identical_healthy_reports_pass():
    assert diff_bench.diff(report(), report()) == []


def test_guarded_regression_detected():
    fresh = report(entropy={"speedup": 1.2})
    failures = diff_bench.diff(report(), fresh)
    assert len(failures) == 1
    assert "entropy.speedup" in failures[0]
    assert "1.200" in failures[0]


def test_noise_margin_tolerates_small_shortfall():
    # the dct bar is 1.5; 0.96 * 1.5 = 1.44 sits inside the 0.95 margin
    fresh = report(dct={"speedup": 1.5 * 0.96})
    assert diff_bench.diff(report(), fresh) == []
    # ...but below the margin still fails
    fresh = report(dct={"speedup": 1.5 * 0.90})
    failures = diff_bench.diff(report(), fresh)
    assert len(failures) == 1 and "dct.speedup" in failures[0]


def test_missing_section_present_in_baseline_fails():
    fresh = report()
    del fresh["serving"]["sharded"]
    failures = diff_bench.diff(report(), fresh)
    assert len(failures) == 1
    assert "missing" in failures[0]
    assert "serving.sharded.speedup_vs_threaded" in failures[0]


def test_section_missing_from_both_is_ignored():
    baseline, fresh = report(), report()
    for doc in (baseline, fresh):
        del doc["serving"]["shm"]
    assert diff_bench.diff(baseline, fresh) == []


def test_skipped_marker_excuses_missing_bar():
    """A 1-CPU host records {"skipped": ...} instead of sharded/shm numbers."""
    fresh = report()
    fresh["serving"]["sharded"] = {"skipped": "needs >= 2 CPUs"}
    fresh["serving"]["shm"] = {"skipped": "needs >= 2 CPUs"}
    assert diff_bench.diff(report(), fresh) == []


def test_skipped_marker_at_outer_level():
    fresh = report()
    fresh["serving"] = {"skipped": "serving benchmarks disabled"}
    assert diff_bench.diff(report(), fresh) == []


def test_multiple_regressions_all_reported():
    fresh = report(entropy={"speedup": 1.0}, dct={"speedup": 0.5})
    failures = diff_bench.diff(report(), fresh)
    assert len(failures) == 2


def test_lookup_traverses_and_misses():
    doc = {"a": {"b": {"c": 3}}}
    assert diff_bench._lookup(doc, ("a", "b", "c")) == 3
    assert diff_bench._lookup(doc, ("a", "x")) is None
    assert diff_bench._lookup(doc, ("a", "b", "c", "d")) is None


def test_main_exit_codes(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    baseline_path.write_text(json.dumps(report()))
    fresh_path.write_text(json.dumps(report()))
    assert diff_bench.main(["diff_bench.py", str(baseline_path), str(fresh_path)]) == 0
    assert "no guarded-bar regressions" in capsys.readouterr().out

    fresh_path.write_text(json.dumps(report(entropy={"speedup": 0.1})))
    assert diff_bench.main(["diff_bench.py", str(baseline_path), str(fresh_path)]) == 1
    out = capsys.readouterr().out
    assert "guarded-bar regressions" in out and "entropy.speedup" in out

    assert diff_bench.main(["diff_bench.py"]) == 2


@pytest.mark.parametrize("path,bar", diff_bench.GUARDED_BARS)
def test_every_guarded_bar_trips_when_zeroed(path, bar):
    """Each configured bar is live: zeroing its value must fail the diff."""
    fresh = report()
    node = fresh
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = 0.0
    failures = diff_bench.diff(report(), fresh)
    assert len(failures) == 1
    assert ".".join(path) in failures[0]
