"""Tests for the zero-copy shared-memory response path, the shard health
watchdog and spill-aware mask affinity."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import EaszConfig, EaszDecoder, EaszEncoder, EaszReconstructor
from repro.serve import (
    BatchPolicy,
    ShardedCompressionServer,
    ShmRing,
    shm_available,
)

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="host cannot create shared memory")


@pytest.fixture(scope="module")
def serve_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def serve_model(serve_config):
    model = EaszReconstructor(serve_config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def packages(serve_config):
    rng = np.random.default_rng(0)
    encoder = EaszEncoder(serve_config, seed=0)
    mask = encoder.generate_mask()
    images = [rng.random((48, 64, 3)) for _ in range(4)]
    return encoder.encode_batch(images, mask=mask)


@pytest.fixture(scope="module")
def decoder(serve_config, serve_model):
    return EaszDecoder(model=serve_model, config=serve_config,
                       base_codec=JpegCodec(quality=75))


def _sharded(serve_model, serve_config, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("batch_policy", BatchPolicy(max_batch_size=4, max_wait_ms=2.0))
    return ShardedCompressionServer(model=serve_model, config=serve_config, **kwargs)


# --------------------------------------------------------------------------- #
# the ring itself (single-process: lease/ack/reclaim protocol)
# --------------------------------------------------------------------------- #
class TestShmRing:
    def test_claim_write_read_release_cycle(self):
        ring = ShmRing(slot_bytes=1024, num_slots=2)
        try:
            slot, seq = ring.claim(owner_index=0)
            payload = np.arange(12.0).reshape(3, 4)
            nbytes = ring.write(slot, payload)
            assert nbytes == payload.nbytes
            view = ring.read(slot, nbytes)
            try:
                assert bytes(view) == payload.tobytes()
            finally:
                view.release()
            assert ring.leased_slots() == 1
            assert ring.release(slot, seq, owner_index=0)
            assert ring.leased_slots() == 0
        finally:
            ring.close()

    def test_full_ring_returns_none(self):
        ring = ShmRing(slot_bytes=64, num_slots=2)
        try:
            assert ring.claim(0) is not None
            assert ring.claim(1) is not None
            assert ring.claim(0) is None
        finally:
            ring.close()

    def test_release_refuses_wrong_owner_or_stale_seq(self):
        ring = ShmRing(slot_bytes=64, num_slots=1)
        try:
            slot, seq = ring.claim(owner_index=3)
            assert not ring.release(slot, seq, owner_index=1)  # wrong owner
            assert not ring.release(slot, seq + 1, owner_index=3)  # wrong seq
            assert ring.release(slot, seq, owner_index=3)
        finally:
            ring.close()

    def test_reclaim_frees_a_dead_owners_slots_and_staleness_protects(self):
        ring = ShmRing(slot_bytes=64, num_slots=3)
        try:
            leases = [ring.claim(owner_index=0) for _ in range(2)]
            ring.claim(owner_index=1)
            assert ring.reclaim(owner_index=0) == 2
            assert ring.leased_slots() == 1
            # a late ack from the dead owner's old lease must be inert,
            # even after the slot was re-leased by someone else
            slot, old_seq = leases[0]
            new_slot, new_seq = ring.claim(owner_index=2)
            assert new_slot == slot  # lowest free slot is re-issued
            assert not ring.release(slot, old_seq, owner_index=0)
            assert ring.release(new_slot, new_seq, owner_index=2)
        finally:
            ring.close()

    def test_oversized_write_raises(self):
        ring = ShmRing(slot_bytes=64, num_slots=1)
        try:
            slot, seq = ring.claim(0)
            with pytest.raises(ValueError, match="slots hold"):
                ring.write(slot, np.zeros(1024))
            ring.release(slot, seq, 0)
        finally:
            ring.close()

    def test_attach_shares_state_in_process(self):
        parent = ShmRing(slot_bytes=64, num_slots=2)
        try:
            child = ShmRing.attach(parent.descriptor())
            slot, seq = child.claim(owner_index=0)
            child.write(slot, np.arange(4, dtype=np.int64))
            view = parent.read(slot, 32)
            try:
                assert np.array_equal(np.frombuffer(view, dtype=np.int64),
                                      np.arange(4, dtype=np.int64))
            finally:
                view.release()
            assert parent.release(slot, seq, owner_index=0)
            child.close()
        finally:
            parent.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="slot_bytes"):
            ShmRing(slot_bytes=0, num_slots=1)
        with pytest.raises(ValueError, match="num_slots"):
            ShmRing(slot_bytes=64, num_slots=0)


# --------------------------------------------------------------------------- #
# sharded server over the ring
# --------------------------------------------------------------------------- #
class TestShmServing:
    def test_responses_ride_shm_and_match_reference(self, serve_config, serve_model,
                                                    packages, decoder):
        references = [decoder.decode(package) for package in packages]
        with _sharded(serve_model, serve_config) as server:
            pendings = [server.submit(package) for package in packages]
            responses = [pending.result(timeout=300.0) for pending in pendings]
            snapshot = server.stats.snapshot()
        for response, reference in zip(responses, references):
            assert response.transport == "shm"
            assert np.abs(response.image - reference).max() < 1e-5
            assert response.image.flags.writeable  # caller owns its pixels
        assert snapshot["response_transport"].get("shm", 0) == len(packages)
        assert snapshot["shm"]["enabled"]
        assert snapshot["shm"]["leased"] == 0  # every lease was acked back

    def test_decode_kind_is_bit_exact_over_shm(self, serve_config, serve_model,
                                               packages, decoder):
        reference = decoder.decode(packages[0], reconstruct=False)
        with _sharded(serve_model, serve_config) as server:
            response = server.submit(packages[0], kind="decode").result(timeout=300.0)
        assert response.transport == "shm"
        assert np.array_equal(response.image, reference)

    def test_use_shm_false_keeps_the_queue_path(self, serve_config, serve_model,
                                                packages):
        with _sharded(serve_model, serve_config, use_shm=False) as server:
            response = server.submit(packages[0]).result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert response.transport == "queue"
        assert not snapshot["shm"]["enabled"]
        assert snapshot["response_transport"] == {"queue": 1}

    def test_oversized_response_falls_back_to_queue(self, serve_config, serve_model,
                                                    packages, decoder):
        # slots far smaller than a 48x64x3 float64 response: every response
        # must take the queue path, with identical pixels
        reference = decoder.decode(packages[0])
        with _sharded(serve_model, serve_config, shm_slot_bytes=1024) as server:
            response = server.submit(packages[0]).result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert response.transport == "queue"
        assert np.abs(response.image - reference).max() < 1e-5
        assert snapshot["response_transport"] == {"queue": 1}

    def test_exhausted_ring_spills_to_queue_without_loss(self, serve_config,
                                                         serve_model, packages):
        # one slot for the whole pool: under a burst some responses must fall
        # back; every future still resolves with correct pixels
        with _sharded(serve_model, serve_config, shm_slots=1,
                      queue_depth=64) as server:
            pendings = [server.submit(package) for package in packages * 4]
            responses = [pending.result(timeout=300.0) for pending in pendings]
            snapshot = server.stats.snapshot()
        assert len(responses) == len(pendings)
        transports = {response.transport for response in responses}
        assert transports <= {"shm", "queue"}
        total = sum(snapshot["response_transport"].values())
        assert total == len(pendings)
        assert snapshot["shm"]["leased"] == 0

    def test_result_cache_hits_count_as_cache_transport(self, serve_config,
                                                        serve_model, packages):
        with _sharded(serve_model, serve_config, result_cache_size=8) as server:
            first = server.submit(packages[0]).result(timeout=300.0)
            repeat = server.submit(packages[0]).result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert first.transport == "shm"
        assert repeat.transport == "cache" and repeat.cached
        assert np.array_equal(first.image, repeat.image)
        assert snapshot["response_transport"] == {"cache": 1, "shm": 1}

    def test_restart_shard_reclaims_its_leases(self, serve_config, serve_model,
                                               packages):
        with _sharded(serve_model, serve_config) as server:
            server.submit(packages[0]).result(timeout=300.0)
            server.restart_shard(0, graceful=False)
            snapshot = server.stats.snapshot()
            # pool still serves, ring fully reclaimed
            response = server.submit(packages[0]).result(timeout=300.0)
        assert snapshot["shm"]["leased"] == 0
        assert response.image.shape == packages[0].original_shape

    def test_shm_param_validation(self, serve_model, serve_config):
        with pytest.raises(ValueError, match="shm_slots"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     shm_slots=0)
        with pytest.raises(ValueError, match="shm_slot_bytes"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     shm_slot_bytes=0)


# --------------------------------------------------------------------------- #
# shard health watchdog
# --------------------------------------------------------------------------- #
class TestShardWatchdog:
    def test_interval_must_be_positive(self, serve_model, serve_config):
        with pytest.raises(ValueError, match="watchdog_interval_s"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     watchdog_interval_s=0.0)
        with pytest.raises(ValueError, match="watchdog_interval_s"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     watchdog_interval_s=-1.0)
        with pytest.raises(ValueError, match="watchdog_hang_timeout_s"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     watchdog_hang_timeout_s=0.0)
        with pytest.raises(ValueError, match="watchdog_backoff_s"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     watchdog_backoff_s=0.0)

    def test_kill_a_shard_mid_load_no_lost_or_duplicated_responses(
            self, serve_config, serve_model, packages, decoder):
        """The acceptance-criterion scenario: a shard dies under traffic, the
        watchdog restarts it, and every submitted request resolves exactly
        once with correct pixels (re-routed, not lost; never duplicated)."""
        references = [decoder.decode(package) for package in packages]
        with _sharded(serve_model, serve_config, watchdog_interval_s=0.1,
                      watchdog_backoff_s=0.05, queue_depth=128) as server:
            server.submit(packages[0]).result(timeout=300.0)  # warm both shards
            victim = server._shards[0]
            old_pid = victim.process.pid
            pendings = [server.submit(package) for package in packages * 3]
            victim.process.kill()
            responses = [pending.result(timeout=120.0) for pending in pendings]

            # watchdog replaces the dead shard in place
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline:
                current = server._shards[0]
                if current.is_alive() and current.process.pid != old_pid:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("watchdog never restarted the killed shard")

            # the restarted shard serves new work
            revived = server.submit(packages[0]).result(timeout=300.0)
            snapshot = server.stats.snapshot()

        # no lost responses: every future resolved successfully ...
        assert len(responses) == len(pendings)
        for index, response in enumerate(responses):
            assert np.abs(response.image
                          - references[index % len(packages)]).max() < 1e-5
        # ... and none duplicated: request ids are unique across responses
        request_ids = [response.request_id for response in responses]
        assert len(set(request_ids)) == len(request_ids)
        assert revived.image.shape == packages[0].original_shape
        assert snapshot["watchdog"]["enabled"]
        assert snapshot["watchdog"]["restarts_total"] >= 1
        assert snapshot["watchdog"]["restarts_by_shard"].get(0, 0) >= 1
        assert snapshot["shm"]["leased"] == 0

    def test_hang_timeout_defaults_on_with_opt_out(self, serve_model, serve_config):
        """``"auto"`` resolves to the conservative 30 s default; ``None``
        opts out; explicit values pass through."""
        server = ShardedCompressionServer(model=serve_model, config=serve_config)
        assert server.watchdog_hang_timeout_s == 30.0
        server = ShardedCompressionServer(model=serve_model, config=serve_config,
                                          watchdog_hang_timeout_s=None)
        assert server.watchdog_hang_timeout_s is None
        server = ShardedCompressionServer(model=serve_model, config=serve_config,
                                          watchdog_hang_timeout_s=5.0)
        assert server.watchdog_hang_timeout_s == 5.0

    @pytest.mark.skipif(not hasattr(signal, "SIGSTOP"),
                        reason="needs SIGSTOP to freeze a shard")
    def test_hung_but_alive_shard_is_restarted(self, serve_config, serve_model,
                                               packages):
        """A shard frozen with SIGSTOP stays alive but stops stamping its
        heartbeat; the hang timeout must get it killed and replaced, and the
        pool must serve again afterwards."""
        with _sharded(serve_model, serve_config, watchdog_interval_s=0.1,
                      watchdog_backoff_s=0.05, watchdog_hang_timeout_s=0.75,
                      queue_depth=128) as server:
            server.submit(packages[0]).result(timeout=300.0)
            victim = server._shards[0]
            old_pid = victim.process.pid
            os.kill(old_pid, signal.SIGSTOP)  # alive, but silent
            deadline = time.perf_counter() + 60.0
            while time.perf_counter() < deadline:
                current = server._shards[0]
                if current.is_alive() and current.process.pid != old_pid:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("watchdog never replaced the hung shard")
            response = server.submit(packages[0]).result(timeout=300.0)
            snapshot = server.stats.snapshot()
        assert response.image.shape == packages[0].original_shape
        assert snapshot["watchdog"]["restarts_total"] >= 1
        assert snapshot["watchdog"]["restarts_by_shard"].get(0, 0) >= 1

    def test_watchdog_reports_heartbeats_and_stays_quiet_on_a_healthy_pool(
            self, serve_config, serve_model, packages):
        with _sharded(serve_model, serve_config,
                      watchdog_interval_s=0.1) as server:
            server.submit(packages[0]).result(timeout=300.0)
            time.sleep(0.3)  # a few watchdog ticks over a healthy pool
            snapshot = server.stats.snapshot()
            pids = [shard.process.pid for shard in server._shards]
            response = server.submit(packages[0]).result(timeout=300.0)
            assert [shard.process.pid for shard in server._shards] == pids
        assert snapshot["watchdog"]["restarts_total"] == 0
        ages = snapshot["watchdog"]["heartbeat_age_s"]
        assert len(ages) == 2
        assert all(age is not None and age < 30.0 for age in ages)
        assert response.image.shape == packages[0].original_shape

    def test_backoff_spaces_restart_attempts(self, serve_model, serve_config):
        server = ShardedCompressionServer(model=serve_model, config=serve_config,
                                          watchdog_interval_s=0.5,
                                          watchdog_backoff_s=0.25,
                                          watchdog_backoff_cap_s=2.0)
        # pure bookkeeping check: the backoff doubles up to its cap
        backoff = server.watchdog_backoff_s
        seen = []
        for _ in range(5):
            seen.append(backoff)
            backoff = min(backoff * 2.0, server.watchdog_backoff_cap_s)
        assert seen == [0.25, 0.5, 1.0, 2.0, 2.0]
        snapshot_keys = server.watchdog_snapshot()
        assert snapshot_keys["enabled"]
        assert snapshot_keys["restarts_total"] == 0


# --------------------------------------------------------------------------- #
# spill-aware mask affinity
# --------------------------------------------------------------------------- #
class TestMaskAffinity:
    def _keys_for_two_geometries(self, serve_config):
        encoder = EaszEncoder(serve_config, seed=0)
        mask = encoder.generate_mask()
        rng = np.random.default_rng(1)
        wide = encoder.encode(rng.random((48, 64, 3)), mask=mask)
        tall = encoder.encode(rng.random((64, 48, 3)), mask=mask)
        return wide, tall

    def test_mask_mode_routes_all_geometries_of_one_mask_together(
            self, serve_model, serve_config):
        wide, tall = self._keys_for_two_geometries(serve_config)
        server = ShardedCompressionServer(model=serve_model, config=serve_config,
                                          num_shards=4, affinity="mask")
        key_wide = server._batch_key(wide, "reconstruct")
        key_tall = server._batch_key(tall, "reconstruct")
        assert key_wide[2] != key_tall[2]  # genuinely different geometries
        assert (server._preferred_shard(key_wide, mask_only=True)
                == server._preferred_shard(key_tall, mask_only=True))
        assert server._mask_affine_locked(key_wide)

    def test_auto_mode_switches_after_second_geometry(self, serve_model,
                                                      serve_config):
        wide, tall = self._keys_for_two_geometries(serve_config)
        server = ShardedCompressionServer(model=serve_model, config=serve_config,
                                          num_shards=4, affinity="auto")
        key_wide = server._batch_key(wide, "reconstruct")
        key_tall = server._batch_key(tall, "reconstruct")
        server._observe_geometry_locked(key_wide)
        assert not server._mask_affine_locked(key_wide)  # one geometry: full key
        server._observe_geometry_locked(key_tall)
        assert server._mask_affine_locked(key_wide)
        assert server._mask_affine_locked(key_tall)

    def test_key_mode_never_switches(self, serve_model, serve_config):
        wide, tall = self._keys_for_two_geometries(serve_config)
        server = ShardedCompressionServer(model=serve_model, config=serve_config,
                                          num_shards=4, affinity="key")
        key_wide = server._batch_key(wide, "reconstruct")
        key_tall = server._batch_key(tall, "reconstruct")
        server._observe_geometry_locked(key_wide)
        server._observe_geometry_locked(key_tall)
        assert not server._mask_affine_locked(key_wide)

    def test_affinity_validation(self, serve_model, serve_config):
        with pytest.raises(ValueError, match="affinity"):
            ShardedCompressionServer(model=serve_model, config=serve_config,
                                     affinity="sticky")

    def test_multi_camera_fleet_lands_on_one_shard_end_to_end(
            self, serve_model, serve_config, decoder):
        # two cameras, same erase mask, different frame geometry: with auto
        # affinity the second camera's traffic joins the first one's shard
        # once the mask is known to span geometries
        wide, tall = self._keys_for_two_geometries(serve_config)
        with ShardedCompressionServer(
                model=serve_model, config=serve_config, num_shards=2,
                affinity="auto",
                batch_policy=BatchPolicy(max_batch_size=4, max_wait_ms=2.0)) as server:
            server.submit(wide).result(timeout=300.0)
            server.submit(tall).result(timeout=300.0)  # flips the mask to affine
            workers = set()
            for package in (wide, tall, wide, tall):
                response = server.submit(package).result(timeout=300.0)
                workers.add(response.worker.split("/")[0])
        assert len(workers) == 1  # sequential singles below the spill threshold
