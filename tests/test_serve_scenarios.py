"""Tests for the multi-tenant chaos scenario harness (``repro.serve.scenarios``)."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core import EaszConfig, EaszReconstructor
from repro.serve import CompressionServer, ShardedCompressionServer
from repro.serve.scenarios import (
    ChaosSpec,
    ResilienceSpec,
    ScenarioReport,
    ScenarioSpec,
    TenantSpec,
    build_workload,
    builtin_scenarios,
    corrupt_package,
    run_scenario,
    scenario_image,
)


@pytest.fixture(scope="module")
def scenario_config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def scenario_model(scenario_config):
    model = EaszReconstructor(scenario_config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def tiny_scenario():
    return ScenarioSpec(
        name="test-mix",
        description="two tenants, 20% corrupted payloads, threaded pool",
        duration_s=1.5,
        tenants=(
            TenantSpec(name="premium", rate_rps=14.0, arrival="poisson",
                       qos="premium", deadline_ms=120.0, on_breach="degrade",
                       quality=70, degraded_quality=30, image_size=32,
                       num_images=2, seed=1),
            TenantSpec(name="bursty", rate_rps=10.0, arrival="bursty",
                       qos="batch", deadline_ms=800.0, on_breach="shed",
                       image_size=32, num_images=2, seed=2),
        ),
        chaos=ChaosSpec(corrupt_fraction=0.2, corrupt_bit_flips=48,
                        corrupt_truncate_to=0.7, seed=3),
        seed=7,
    )


@pytest.fixture(scope="module")
def tiny_workload(tiny_scenario, scenario_config, scenario_model):
    return build_workload(tiny_scenario, config=scenario_config,
                          model=scenario_model)


@pytest.fixture(scope="module")
def chaos_report(tiny_scenario, tiny_workload, scenario_config, scenario_model):
    """One real threaded replay, shared by every assertion below."""
    with CompressionServer(model=scenario_model, config=scenario_config,
                           num_workers=2, queue_depth=64) as server:
        report = run_scenario(tiny_scenario, server, workload=tiny_workload)
    return report


# --------------------------------------------------------------------------- #
# spec validation
# --------------------------------------------------------------------------- #
class TestSpecValidation:
    def test_tenant_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="arrival"):
            TenantSpec(name="t", arrival="weekly")
        with pytest.raises(ValueError, match="on_breach"):
            TenantSpec(name="t", on_breach="panic")
        with pytest.raises(ValueError, match="rate_rps"):
            TenantSpec(name="t", rate_rps=0.0)
        with pytest.raises(ValueError, match="deadline_ms"):
            TenantSpec(name="t", deadline_ms=-5.0)
        with pytest.raises(ValueError, match="kind"):
            TenantSpec(name="t", kind="transcode")
        with pytest.raises(ValueError, match="name"):
            TenantSpec(name="")

    def test_chaos_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="corrupt_fraction"):
            ChaosSpec(corrupt_fraction=1.5)
        with pytest.raises(ValueError, match="freeze_duration_s"):
            ChaosSpec(freeze_duration_s=0.0)
        # injector parameters are validated when the spec is built, not when
        # the scenario first damages a payload mid-run
        with pytest.raises(ValueError, match="bit_flips"):
            ChaosSpec(corrupt_fraction=0.5, corrupt_bit_flips=-1)
        with pytest.raises(ValueError, match="truncate_to"):
            ChaosSpec(corrupt_fraction=0.5, corrupt_truncate_to=2.0)

    def test_chaos_any_faults(self):
        assert not ChaosSpec().any_faults
        assert ChaosSpec(kill_shard_at_s=(1.0,)).any_faults
        assert ChaosSpec(corrupt_fraction=0.1).any_faults
        assert ChaosSpec(exhaust_shm_at_s=(0.5,)).any_faults

    def test_scenario_rejects_duplicate_or_missing_tenants(self):
        tenant = TenantSpec(name="same")
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(name="s", tenants=(tenant, TenantSpec(name="same")))
        with pytest.raises(ValueError, match="tenant"):
            ScenarioSpec(name="s", tenants=())
        with pytest.raises(ValueError, match="duration_s"):
            ScenarioSpec(name="s", tenants=(tenant,), duration_s=0.0)


class TestArrivalTraces:
    @pytest.mark.parametrize("shape", ["poisson", "diurnal", "bursty"])
    def test_traces_are_sorted_and_in_range(self, shape):
        tenant = TenantSpec(name="t", rate_rps=40.0, arrival=shape)
        rng = np.random.default_rng(5)
        times = tenant.arrival_times(4.0, rng)
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0 and times[-1] < 4.0

    def test_traces_are_deterministic_per_seed(self):
        tenant = TenantSpec(name="t", rate_rps=30.0, arrival="diurnal")
        first = tenant.arrival_times(3.0, np.random.default_rng(9))
        second = tenant.arrival_times(3.0, np.random.default_rng(9))
        np.testing.assert_array_equal(first, second)


# --------------------------------------------------------------------------- #
# workload + corruption
# --------------------------------------------------------------------------- #
class TestWorkload:
    def test_build_encodes_primary_and_degraded_pools(self, tiny_scenario,
                                                      tiny_workload):
        for tenant in tiny_scenario.tenants:
            assert len(tiny_workload.primary[tenant.name]) == tenant.num_images
            assert len(tiny_workload.degraded[tenant.name]) == tenant.num_images
        premium = tiny_scenario.tenants[0]
        primary = tiny_workload.package_for(premium, 0)
        degraded = tiny_workload.package_for(premium, 0, degraded=True)
        # the degraded pool really is a different (cheaper) encoding
        assert primary.codec_payload.payload != degraded.codec_payload.payload

    def test_package_for_cycles_modulo(self, tiny_scenario, tiny_workload):
        tenant = tiny_scenario.tenants[0]
        assert tiny_workload.package_for(tenant, 0) is \
            tiny_workload.package_for(tenant, tenant.num_images)

    def test_corrupt_package_leaves_original_pristine(self, tiny_scenario,
                                                      tiny_workload):
        tenant = tiny_scenario.tenants[0]
        package = tiny_workload.package_for(tenant, 0)
        pristine = bytes(package.codec_payload.payload)
        injector = tiny_scenario.chaos.injector()
        damaged = corrupt_package(package, injector)
        assert damaged is not package
        assert damaged.codec_payload.payload != pristine
        assert package.codec_payload.payload == pristine

    def test_scenario_image_is_deterministic_unit_range(self):
        first = scenario_image(32, seed_value=4)
        second = scenario_image(32, seed_value=4)
        np.testing.assert_array_equal(first, second)
        assert first.shape == (32, 32, 3)
        assert float(first.min()) >= 0.0 and float(first.max()) <= 1.0


# --------------------------------------------------------------------------- #
# a real replay: the chaos invariants
# --------------------------------------------------------------------------- #
class TestScenarioRun:
    def test_every_future_resolved_exactly_once(self, chaos_report):
        assert chaos_report.futures_lost == 0
        assert chaos_report.futures_duplicated == 0

    def test_corruption_fails_gracefully_never_crashes(self, chaos_report):
        assert chaos_report.decoder_crashes == 0
        rejections = sum(t.graceful_rejections for t in chaos_report.tenants)
        # ~20% of ~36 offered requests were damaged; at least one must have
        # actually been rejected for the graceful-failure claim to be tested
        assert rejections > 0
        assert chaos_report.ok()

    def test_accounting_adds_up(self, chaos_report):
        assert chaos_report.offered > 0
        assert chaos_report.offered == sum(t.offered for t in chaos_report.tenants)
        assert chaos_report.submitted == sum(t.submitted for t in chaos_report.tenants)
        for tenant in chaos_report.tenants:
            outcomes = (tenant.completed + tenant.infra_failures
                        + tenant.graceful_rejections + tenant.decoder_crashes
                        + tenant.deadline_shed)
            assert outcomes == tenant.submitted
            assert tenant.offered == (tenant.submitted + tenant.shed
                                      + tenant.admission_rejected)
            assert 0.0 <= tenant.slo_miss_rate <= 1.0

    def test_latency_and_prediction_recorded(self, chaos_report):
        served = [t for t in chaos_report.tenants if t.completed > 0]
        assert served
        for tenant in served:
            assert tenant.latency_p50_ms > 0
            assert tenant.latency_p99_ms >= tenant.latency_p50_ms
        # the M/D/c prediction is recorded next to the observation (NaN only
        # if the sampler never saw a completion, which a served run excludes)
        assert any(np.isfinite(t.predicted_wait_ms_mean) for t in served)

    def test_report_json_round_trip(self, chaos_report):
        decoded = json.loads(chaos_report.to_json())
        assert decoded["scenario"] == "test-mix"
        assert decoded["futures_lost"] == 0
        assert {t["name"] for t in decoded["tenants"]} == {"premium", "bursty"}
        for key in ("offered", "submitted", "completed", "utilisation",
                    "saturated", "chaos_events", "watchdog_restarts",
                    "retries", "hedges", "deadline_shed"):
            assert key in decoded
        for key in ("deadline_ms", "latency_p50_ms", "latency_p99_ms",
                    "slo_miss_rate", "predicted_wait_ms_mean", "retries",
                    "hedges", "deadline_shed", "budget_denied"):
            assert key in decoded["tenants"][0]

    def test_headline_names_scenario_and_verdict(self, chaos_report):
        headline = chaos_report.headline()
        assert "test-mix" in headline
        assert "OK" in headline


class TestReportVerdict:
    def _report(self, **overrides):
        base = dict(scenario="s", description="", duration_s=1.0, servers=1,
                    offered=10, submitted=10, completed=10, futures_lost=0,
                    futures_duplicated=0, decoder_crashes=0, utilisation=0.5,
                    service_time_per_image_ms=10.0, saturated=False)
        base.update(overrides)
        return ScenarioReport(**base)

    def test_ok_requires_all_three_invariants(self):
        assert self._report().ok()
        assert not self._report(futures_lost=1).ok()
        assert not self._report(futures_duplicated=1).ok()
        assert not self._report(decoder_crashes=1).ok()
        assert "VIOLATION" in self._report(futures_lost=1).headline()


# --------------------------------------------------------------------------- #
# ScenarioSpec JSON round-trip (serve-bench --scenario-file)
# --------------------------------------------------------------------------- #
class TestScenarioSpecJson:
    def test_every_builtin_round_trips(self):
        for name, scenario in builtin_scenarios().items():
            assert ScenarioSpec.from_json(scenario.to_json()) == scenario, name

    def test_round_trip_preserves_nested_specs(self, tiny_scenario):
        back = ScenarioSpec.from_json(tiny_scenario.to_json())
        assert back == tiny_scenario
        assert isinstance(back.tenants[0], TenantSpec)
        assert isinstance(back.chaos, ChaosSpec)

    def test_unknown_field_names_the_culprit(self):
        with pytest.raises(ValueError, match=r"tenants\[0\].*rate_rpz"):
            ScenarioSpec.from_dict({
                "name": "s", "tenants": [{"name": "t", "rate_rpz": 3.0}]})
        with pytest.raises(ValueError, match=r"resilience.*budget_rato"):
            ScenarioSpec.from_dict({
                "name": "s", "tenants": [{"name": "t"}],
                "resilience": {"budget_rato": 0.1}})
        with pytest.raises(ValueError, match=r"chaos.*kill_shards_at"):
            ScenarioSpec.from_dict({
                "name": "s", "tenants": [{"name": "t"}],
                "chaos": {"kill_shards_at": [1.0]}})

    def test_invalid_value_keeps_dataclass_message(self):
        with pytest.raises(ValueError, match="rate_rps"):
            ScenarioSpec.from_dict({
                "name": "s", "tenants": [{"name": "t", "rate_rps": 0.0}]})

    def test_malformed_json_is_a_value_error(self):
        with pytest.raises(ValueError, match="JSON"):
            ScenarioSpec.from_json("{not json")
        with pytest.raises(ValueError, match="object"):
            ScenarioSpec.from_json("[1, 2]")


# --------------------------------------------------------------------------- #
# resilience acceptance: the claims this PR exists to prove
# --------------------------------------------------------------------------- #
class TestResilienceAcceptance:
    def test_kill_shard_with_retries_hides_all_infra_failures(
            self, scenario_config, scenario_model):
        """SIGKILL mid-run + RetryPolicy: clients must see zero infra errors."""
        spec = ScenarioSpec(
            name="kill-retry", description="",
            tenants=(
                TenantSpec(name="open", rate_rps=12.0, deadline_ms=900.0,
                           on_breach="accept", image_size=32, num_images=2,
                           seed=5),
                TenantSpec(name="loop", rate_rps=8.0, deadline_ms=900.0,
                           on_breach="accept", closed_loop=True, clients=2,
                           think_time_ms=40.0, image_size=32, num_images=2,
                           seed=6),
            ),
            duration_s=3.5,
            chaos=ChaosSpec(kill_shard_at_s=(1.2,), seed=9),
            resilience=ResilienceSpec(max_attempts=4, base_backoff_ms=20.0,
                                      max_backoff_ms=250.0, budget_ratio=0.5),
        )
        workload = build_workload(spec, config=scenario_config,
                                  model=scenario_model)
        with ShardedCompressionServer(
                model=scenario_model, config=scenario_config, num_shards=2,
                workers_per_shard=1, queue_depth=128,
                watchdog_interval_s=0.2, watchdog_backoff_s=0.2,
                watchdog_hang_timeout_s=1.0) as server:
            report = run_scenario(spec, server, workload=workload,
                                  warmup=False)
        assert report.futures_lost == 0
        assert report.futures_duplicated == 0
        assert report.watchdog_restarts >= 1  # the kill actually happened
        for tenant in report.tenants:
            assert tenant.infra_failures == 0, tenant.name
            assert tenant.completed > 0, tenant.name
        assert report.ok()

    def test_retry_budget_caps_the_storm(self, scenario_config,
                                         scenario_model):
        """Closed-loop clients vs a 2-deep queue: without the budget retries
        amplify unboundedly; with it retry traffic is capped at
        ``ratio * fresh + burst`` and the run stays healthy."""
        storm = ScenarioSpec(
            name="storm", description="",
            tenants=(TenantSpec(name="loop", rate_rps=10.0, deadline_ms=800.0,
                                on_breach="accept", closed_loop=True,
                                clients=6, think_time_ms=1.0, image_size=32,
                                num_images=2, seed=5),),
            duration_s=2.0,
            resilience=ResilienceSpec(max_attempts=4, base_backoff_ms=5.0,
                                      max_backoff_ms=40.0, budget_ratio=None),
        )
        workload = build_workload(storm, config=scenario_config,
                                  model=scenario_model)
        reports = {}
        for ratio in (None, 0.1):
            spec = dataclasses.replace(
                storm, resilience=dataclasses.replace(storm.resilience,
                                                      budget_ratio=ratio))
            with CompressionServer(model=scenario_model,
                                   config=scenario_config, num_workers=1,
                                   queue_depth=2) as server:
                reports[ratio] = run_scenario(spec, server, workload=workload,
                                              warmup=False)
        off = reports[None].tenants[0]
        on = reports[0.1].tenants[0]
        # the storm is real: uncapped retries far outnumber budgeted ones
        assert off.retries > 0
        assert off.budget_denied == 0
        assert off.retries > 2 * max(on.retries, 1)
        # the budget bound is the token-bucket identity: withdrawals can
        # never exceed the initial burst (10) plus ratio * deposits
        assert on.retries <= 0.1 * on.submitted + 10 + 1
        assert on.budget_denied > 0
        # capped retries are a health property, not a failure mode
        assert reports[0.1].ok() and not reports[0.1].saturated
        assert reports[None].ok()
        for report in reports.values():
            assert report.futures_lost == 0
            assert report.futures_duplicated == 0


# --------------------------------------------------------------------------- #
# the built-in matrix the nightly chaos CI replays
# --------------------------------------------------------------------------- #
class TestBuiltinScenarios:
    def test_matrix_is_well_formed(self):
        scenarios = builtin_scenarios()
        assert len(scenarios) >= 6
        for key, scenario in scenarios.items():
            assert key == scenario.name
            assert scenario.description
            assert scenario.tenants

    def test_matrix_covers_every_fault_kind(self):
        scenarios = builtin_scenarios().values()
        assert any(s.chaos.kill_shard_at_s for s in scenarios)
        assert any(s.chaos.freeze_shard_at_s for s in scenarios)
        assert any(s.chaos.corrupt_fraction > 0 for s in scenarios)
        assert any(s.chaos.exhaust_shm_at_s for s in scenarios)
        assert any(not s.chaos.any_faults for s in scenarios)  # healthy baselines

    def test_matrix_covers_every_arrival_shape_and_policy(self):
        tenants = [t for s in builtin_scenarios().values() for t in s.tenants]
        assert {t.arrival for t in tenants} == {"poisson", "diurnal", "bursty"}
        assert {t.on_breach for t in tenants} >= {"degrade", "shed", "accept"}

    def test_matrix_covers_resilience_and_closed_loop(self):
        scenarios = builtin_scenarios()
        for name in ("retry-storm", "metastable-recovery", "oversized-response"):
            assert name in scenarios
        assert scenarios["retry-storm"].resilience is not None
        assert scenarios["retry-storm"].resilience.budget_ratio is not None
        assert any(t.closed_loop for t in scenarios["retry-storm"].tenants)
        assert scenarios["metastable-recovery"].chaos.kill_shard_at_s
        assert scenarios["metastable-recovery"].resilience is not None
        # oversized-response: the slots must be smaller than any possible
        # response so every reply exercises the queue fallback
        hints = dict(scenarios["oversized-response"].server_hints)
        smallest = min(t.image_size for t in
                       scenarios["oversized-response"].tenants)
        assert hints["shm_slot_bytes"] < smallest * smallest * 3 * 4

    def test_ci_workflow_matrix_matches_builtins(self):
        # chaos.yml hand-lists the matrix; a new scenario must be added there
        from pathlib import Path
        workflow = Path(__file__).resolve().parent.parent / ".github" / \
            "workflows" / "chaos.yml"
        if not workflow.exists():
            pytest.skip("workflow file not present in this checkout")
        text = workflow.read_text()
        for name in builtin_scenarios():
            assert f"- {name}" in text, f"scenario {name} missing from chaos.yml"
