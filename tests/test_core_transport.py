"""Tests for the Easz transport container (wire format + file round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import JpegCodec, PngCodec
from repro.core import (
    EaszDecoder,
    EaszEncoder,
    load_package,
    pack_compressed,
    pack_package,
    pixels_from_buffer,
    save_package,
    unpack_compressed,
    unpack_package,
)
from repro.core.transport import _CIMG_MAGIC, _EASZ_MAGIC  # noqa: F401  (format constants)


@pytest.fixture(scope="module")
def easz_package(small_config, kodak_small):
    encoder = EaszEncoder(small_config, JpegCodec(quality=80), seed=0)
    return encoder.encode(kodak_small[0]), kodak_small[0]


class TestCompressedImageContainer:
    def test_roundtrip_preserves_fields(self, kodak_small):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        restored = unpack_compressed(pack_compressed(compressed))
        assert restored.payload == compressed.payload
        assert restored.original_shape == compressed.original_shape
        assert restored.codec_name == compressed.codec_name
        assert restored.extra_bytes == compressed.extra_bytes

    def test_roundtrip_decodes_to_same_pixels(self, kodak_small):
        codec = JpegCodec(quality=70)
        compressed = codec.compress(kodak_small[0])
        direct = codec.decompress(compressed)
        via_container = codec.decompress(unpack_compressed(pack_compressed(compressed)))
        assert np.allclose(direct, via_container)

    def test_png_metadata_survives(self, gray_image):
        codec = PngCodec()
        compressed = codec.compress(gray_image)
        restored = unpack_compressed(pack_compressed(compressed))
        assert restored.metadata == compressed.metadata

    def test_container_overhead_is_small(self, kodak_small):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        container = pack_compressed(compressed)
        assert len(container) < len(compressed.payload) + 600

    def test_rejects_unserialisable_metadata(self, kodak_small):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        compressed.metadata["array"] = np.zeros(3)
        with pytest.raises(ValueError, match="JSON"):
            pack_compressed(compressed)

    def test_rejects_wrong_magic_and_truncation(self, kodak_small):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        container = pack_compressed(compressed)
        with pytest.raises(ValueError):
            unpack_compressed(b"XXXX" + container[4:])
        with pytest.raises(ValueError):
            unpack_compressed(container[: len(container) // 2])


class TestEaszPackageContainer:
    def test_roundtrip_preserves_all_fields(self, easz_package):
        package, _ = easz_package
        restored = unpack_package(pack_package(package))
        assert restored.mask_bytes == package.mask_bytes
        assert restored.codec_payload.payload == package.codec_payload.payload
        assert restored.grid_shape == package.grid_shape
        assert restored.original_shape == package.original_shape
        assert restored.squeezed_shape == package.squeezed_shape
        assert restored.config_summary == package.config_summary
        assert restored.num_bytes == package.num_bytes

    def test_tuple_valued_config_summary_survives_roundtrip(self, easz_package):
        import dataclasses
        package, _ = easz_package
        package = dataclasses.replace(
            package, config_summary=dict(package.config_summary,
                                         geometry=(16, 4), quality_grid=(30, 60, 85)))
        restored = unpack_package(pack_package(package))
        assert restored.config_summary == package.config_summary
        assert restored.config_summary["geometry"] == (16, 4)

    def test_missing_config_summary_header_tolerated(self, easz_package):
        # containers written before the field existed decode to an empty dict
        import json as json_module
        package, _ = easz_package
        container = pack_package(package)
        header_length = int.from_bytes(container[5:9], "big")
        header = json_module.loads(container[9:9 + header_length].decode("utf-8"))
        header.pop("config_summary")
        new_header = json_module.dumps(header, separators=(",", ":")).encode("utf-8")
        rebuilt = (container[:5] + len(new_header).to_bytes(4, "big") + new_header
                   + container[9 + header_length:])
        restored = unpack_package(rebuilt)
        assert restored.config_summary == {}
        assert restored.codec_payload.payload == package.codec_payload.payload

    def test_rejects_unserialisable_config_summary(self, easz_package):
        import dataclasses
        package, _ = easz_package
        package = dataclasses.replace(
            package, config_summary=dict(package.config_summary, array=np.zeros(2)))
        with pytest.raises(ValueError, match="config_summary"):
            pack_package(package)

    def test_restored_package_decodes_identically(self, easz_package, small_config,
                                                  trained_tiny_model):
        package, image = easz_package
        decoder = EaszDecoder(config=small_config, base_codec=JpegCodec(quality=80))
        direct = decoder.decode(package, reconstruct=False)
        restored = decoder.decode(unpack_package(pack_package(package)), reconstruct=False)
        assert np.allclose(direct, restored)

    def test_unpack_rejects_version_and_truncation(self, easz_package):
        package, _ = easz_package
        container = bytearray(pack_package(package))
        bad_version = bytes(container[:4]) + b"\x09" + bytes(container[5:])
        with pytest.raises(ValueError, match="version"):
            unpack_package(bad_version)
        with pytest.raises(ValueError, match="truncated"):
            unpack_package(bytes(container[:-50]))

    def test_unpack_rejects_cimg_container(self, kodak_small):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        with pytest.raises(ValueError):
            unpack_package(pack_compressed(compressed))


class TestBinaryPartEdgeCases:
    """Truncated / oversized binary parts and zero-byte payloads."""

    def test_oversized_trailing_bytes_are_ignored(self, easz_package):
        # a framed transport (length-prefixed socket read) can hand over a
        # buffer with trailing junk; the declared lengths win
        package, _ = easz_package
        restored = unpack_package(pack_package(package) + b"\x00" * 64)
        assert restored.mask_bytes == package.mask_bytes
        assert restored.codec_payload.payload == package.codec_payload.payload

    def test_truncated_mask_bytes_rejected(self, easz_package):
        package, _ = easz_package
        container = pack_package(package)
        # cut into the mask region (the first binary part after the header)
        header_length = int.from_bytes(container[5:9], "big")
        cut = 9 + header_length + max(len(package.mask_bytes) // 2, 1)
        with pytest.raises(ValueError, match="truncated"):
            unpack_package(container[:cut])

    def test_truncated_cimg_payload_rejected(self, kodak_small):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        container = pack_compressed(compressed)
        with pytest.raises(ValueError, match="truncated"):
            unpack_compressed(container[:-10])

    def test_zero_byte_payload_roundtrips(self, kodak_small):
        import dataclasses
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        empty = dataclasses.replace(compressed, payload=b"")
        restored = unpack_compressed(pack_compressed(empty))
        assert restored.payload == b""
        assert restored.original_shape == compressed.original_shape


class TestPixelsFromBuffer:
    """The zero-copy view path behind serving's raw pixel buffers."""

    def test_aligned_bytes_give_zero_copy_readonly_view(self):
        source = np.arange(24.0).reshape(2, 3, 4)
        buffer = source.tobytes()
        view = pixels_from_buffer(buffer, source.shape, source.dtype)
        assert np.array_equal(view, source)
        assert np.shares_memory(view, np.frombuffer(buffer, dtype=source.dtype))
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0, 0] = 1.0

    def test_unaligned_buffer_falls_back_to_copy(self):
        source = np.arange(6.0)
        padded = bytearray(b"\x00" + source.tobytes())
        unaligned = memoryview(padded)[1:]  # offset 1: misaligned for float64
        pixels = pixels_from_buffer(unaligned, source.shape, source.dtype)
        assert np.array_equal(pixels, source)
        assert not np.shares_memory(pixels, np.frombuffer(unaligned, dtype=np.uint8))
        pixels[0] = 42.0  # the copy owns its memory: writable

    def test_copy_flag_forces_owning_array(self):
        source = np.arange(6.0)
        buffer = source.tobytes()
        pixels = pixels_from_buffer(buffer, source.shape, source.dtype, copy=True)
        assert pixels.flags.writeable
        assert not np.shares_memory(pixels, np.frombuffer(buffer, dtype=np.uint8))
        assert np.array_equal(pixels, source)

    def test_oversized_buffer_trailing_bytes_ignored(self):
        source = np.arange(6, dtype=np.float32)
        pixels = pixels_from_buffer(source.tobytes() + b"\xff" * 100,
                                    source.shape, source.dtype)
        assert np.array_equal(pixels, source)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError, match="bytes"):
            pixels_from_buffer(b"\x00" * 7, (1,), np.float64)

    def test_zero_byte_pixel_payload(self):
        pixels = pixels_from_buffer(b"", (0, 3), np.float64)
        assert pixels.shape == (0, 3)
        assert pixels.size == 0

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            pixels_from_buffer(b"\x00" * 8, (-1,), np.float64)


class TestFileHelpers:
    def test_save_and_load_easz_package(self, easz_package, tmp_path):
        package, _ = easz_package
        path = tmp_path / "frame.easz"
        size = save_package(package, path)
        assert size == path.stat().st_size
        loaded = load_package(path)
        assert loaded.mask_bytes == package.mask_bytes
        assert loaded.codec_payload.payload == package.codec_payload.payload

    def test_save_and_load_compressed_image(self, kodak_small, tmp_path):
        compressed = JpegCodec(quality=70).compress(kodak_small[0])
        path = tmp_path / "frame.cimg"
        save_package(compressed, path)
        loaded = load_package(path)
        assert loaded.payload == compressed.payload

    def test_save_rejects_unknown_objects(self, tmp_path):
        with pytest.raises(TypeError):
            save_package({"not": "a package"}, tmp_path / "bad.bin")

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "foreign.bin"
        path.write_bytes(b"JUNKJUNKJUNK")
        with pytest.raises(ValueError):
            load_package(path)
