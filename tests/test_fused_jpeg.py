"""Equivalence suite: squeeze-fused JPEG block path vs the unfused pipeline.

The fused path (``JpegCodec.compress_squeezed`` / ``decompress_unsqueezed``
over ``SqueezePlan.block_plan``) must produce bit-identical payloads and
pixel-identical decodes to compressing the materialised squeezed image —
across gray/RGB, ragged sizes, and the degenerate all-erased / none-erased
masks.  The batched DCT entry point and ``decompress_many`` must be exact
against their per-channel / per-payload equivalents.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.jpeg import (
    JpegCodec,
    dct2,
    dct2_batched,
    idct2,
    idct2_batched,
    set_dct_threads,
)
from repro.core import EaszCodec, EaszConfig, EaszDecoder, EaszEncoder
from repro.core.erase_squeeze import get_squeeze_plan

_SUBPATCH = 4
_GRID = 4


def _balanced_mask(rng, erase_per_row):
    mask = np.ones((_GRID, _GRID), dtype=bool)
    for row in range(_GRID):
        erased = rng.choice(_GRID, size=erase_per_row, replace=False)
        mask[row, erased] = False
    return mask


@st.composite
def _mask_and_shape(draw):
    seed = draw(st.integers(0, 2 ** 31 - 1))
    erase = draw(st.integers(0, _GRID - 1))
    height = draw(st.integers(16, 96))
    width = draw(st.integers(16, 96))
    color = draw(st.booleans())
    rng = np.random.default_rng(seed)
    mask = _balanced_mask(rng, erase)
    shape = (height, width, 3) if color else (height, width)
    return mask, rng.random(shape)


class TestFusedEncode:
    @given(_mask_and_shape(), st.sampled_from([25, 75, 95]), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_payload_bit_identical_to_unfused(self, mask_image, quality, subsample):
        mask, image = mask_image
        codec = JpegCodec(quality=quality, subsample_chroma=subsample)
        plan = get_squeeze_plan(mask, _SUBPATCH)
        squeezed, grid_shape, _ = plan.squeeze_image(image)
        reference = codec.compress(squeezed)
        fused, fused_grid, fused_shape = codec.compress_squeezed(image, plan)
        assert fused.payload == reference.payload
        assert fused.metadata == reference.metadata
        assert tuple(fused.original_shape) == tuple(squeezed.shape)
        assert fused_grid == grid_shape
        assert tuple(fused_shape) == tuple(squeezed.shape)

    @pytest.mark.parametrize("color", [False, True])
    def test_none_erased_mask(self, color):
        rng = np.random.default_rng(0)
        image = rng.random((48, 64, 3) if color else (48, 64))
        plan = get_squeeze_plan(np.ones((_GRID, _GRID), bool), _SUBPATCH)
        codec = JpegCodec(quality=75)
        reference = codec.compress(plan.squeeze_image(image)[0])
        fused, _, _ = codec.compress_squeezed(image, plan)
        assert fused.payload == reference.payload

    def test_all_erased_mask_matches_unfused_behaviour(self):
        """kept=0 squeezes to a zero-width image; fused and unfused must
        behave identically (bit-identical payloads, or the same failure)."""
        rng = np.random.default_rng(1)
        plan = get_squeeze_plan(np.zeros((_GRID, _GRID), bool), _SUBPATCH)
        codec = JpegCodec(quality=75)
        image = rng.random((32, 32))
        reference = codec.compress(plan.squeeze_image(image)[0])
        fused, _, fused_shape = codec.compress_squeezed(image, plan)
        assert fused.payload == reference.payload
        assert fused_shape == (32, 0)

    def test_easz_encoder_uses_fused_path_transparently(self):
        """EaszEncoder output must be byte-identical whether or not the base
        codec advertises the fused path."""
        rng = np.random.default_rng(2)
        config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1)
        image = rng.random((70, 53, 3))
        mask = EaszEncoder(config, seed=0).generate_mask()

        fused_encoder = EaszEncoder(config, base_codec=JpegCodec(quality=75), seed=0)
        package = fused_encoder.encode(image, mask=mask)

        unfused_codec = JpegCodec(quality=75)
        plan = get_squeeze_plan(mask, config.subpatch_size)
        squeezed, grid_shape, _ = plan.squeeze_image(np.asarray(image, dtype=np.float64))
        reference = unfused_codec.compress(squeezed)
        assert package.codec_payload.payload == reference.payload
        assert package.grid_shape == grid_shape
        assert tuple(package.squeezed_shape) == tuple(squeezed.shape)


class TestFusedDecode:
    @given(_mask_and_shape(), st.sampled_from([25, 75]))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_pixels_identical_to_unfused(self, mask_image, quality):
        mask, image = mask_image
        config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=0)
        codec = JpegCodec(quality=quality)
        encoder = EaszEncoder(config, base_codec=codec, seed=0)
        decoder = EaszDecoder(config=config, base_codec=codec)
        package = encoder.encode(image, mask=mask)
        filled = decoder.decode(package, reconstruct=False)

        # reference: unfused decompress + clamp + unsqueeze + crop
        squeezed = np.clip(np.asarray(codec.decompress(package.codec_payload)), 0, 1)
        plan = get_squeeze_plan(mask, _SUBPATCH)
        spatial = image.shape[:2]
        padded = (spatial[0] + (-spatial[0]) % 16, spatial[1] + (-spatial[1]) % 16)
        reference = plan.unsqueeze_image(
            squeezed, package.grid_shape, padded + tuple(image.shape[2:]),
            fill="zero")[: spatial[0], : spatial[1]]
        assert np.array_equal(filled, reference)

    def test_non_zero_fill_falls_back_to_generic_path(self):
        rng = np.random.default_rng(3)
        config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1)
        codec = JpegCodec(quality=75)
        image = rng.random((48, 48))
        encoder = EaszEncoder(config, base_codec=codec, seed=0)
        mask = encoder.generate_mask()
        package = encoder.encode(image, mask=mask)
        filled_zero = EaszDecoder(config=config, base_codec=codec,
                                  fill="zero").decode(package, reconstruct=False)
        filled_neighbor = EaszDecoder(config=config, base_codec=codec,
                                      fill="neighbor").decode(package, reconstruct=False)
        assert filled_zero.shape == filled_neighbor.shape
        erased = filled_zero == 0
        assert erased.any() and not (filled_neighbor[erased] == 0).all()


class TestBatchedDecode:
    def test_decompress_many_matches_individual_decodes(self):
        rng = np.random.default_rng(4)
        codec = JpegCodec(quality=75)
        payloads = [codec.compress(rng.random(shape)) for shape in
                    [(48, 64, 3), (32, 32), (56, 40, 3), (17, 100)]]
        batched = codec.decompress_many(payloads)
        for payload, result in zip(payloads, batched):
            assert np.array_equal(np.asarray(codec.decompress(payload)),
                                  np.asarray(result))

    def test_decompress_many_isolates_corrupt_payloads(self):
        rng = np.random.default_rng(5)
        codec = JpegCodec(quality=75)
        good = codec.compress(rng.random((32, 32)))
        bad = codec.compress(rng.random((32, 32)))
        bad.payload = bad.payload[:16]  # truncated entropy stream
        results = codec.decompress_many([good, bad, good], on_error="collect")
        assert np.array_equal(np.asarray(results[0]), np.asarray(results[2]))
        assert isinstance(results[1], Exception)
        with pytest.raises(Exception):
            codec.decompress_many([good, bad], on_error="raise")

    def test_decode_batch_equals_sequential_decode(self):
        rng = np.random.default_rng(6)
        config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1)
        codec = EaszCodec(config=config, base_codec=JpegCodec(quality=75), seed=0)
        images = [rng.random((48, 64, 3)) for _ in range(3)]
        images.append(rng.random((48, 64)))  # mixed gray into the batch
        packages = [codec.encoder.encode(image) for image in images]
        batched = codec.decoder.decode_batch(packages, reconstruct=False)
        for package, filled in zip(packages, batched):
            assert np.array_equal(codec.decoder.decode(package, reconstruct=False),
                                  filled)


class TestBatchedDct:
    def test_matches_reference_dct_to_float_tolerance(self):
        rng = np.random.default_rng(7)
        blocks = rng.random((257, 8, 8)) * 255.0 - 128.0
        assert np.allclose(dct2_batched(blocks), dct2(blocks), atol=1e-10)
        coeffs = dct2_batched(blocks)
        assert np.allclose(idct2_batched(coeffs), idct2(coeffs), atol=1e-10)
        assert np.allclose(idct2_batched(coeffs), blocks, atol=1e-9)

    def test_empty_batch(self):
        empty = np.zeros((0, 8, 8))
        assert dct2_batched(empty).shape == (0, 8, 8)
        assert idct2_batched(empty).shape == (0, 8, 8)

    def test_thread_pool_is_opt_in_and_exact(self):
        rng = np.random.default_rng(8)
        blocks = rng.random((20000, 8, 8))
        single = dct2_batched(blocks)
        previous = set_dct_threads(2)
        try:
            assert previous == 1
            threaded = dct2_batched(blocks)
        finally:
            set_dct_threads(previous)
        assert np.array_equal(single, threaded)
        with pytest.raises(ValueError):
            set_dct_threads(0)
