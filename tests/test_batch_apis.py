"""Batched-vs-sequential equivalence for the new multi-image APIs.

The serving layer is only trustworthy if batching is a pure performance
transform: ``compress_batch`` must emit byte-identical payloads,
``decompress_batch`` without reconstruction must be pixel-exact, and the
fused-engine reconstruction must keep transmitted pixels bit-identical while
predicted pixels stay within float32 tolerance (orders of magnitude below
one 8-bit quantisation step).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import JpegCodec
from repro.core import (
    EaszCodec,
    EaszConfig,
    EaszDecoder,
    EaszEncoder,
    EaszReconstructor,
    proposed_mask,
    reconstruct_batch,
    reconstruct_image,
)

#: Engine-vs-`_forward_fast` agreement bound: both are float32 pipelines that
#: only differ in summation order, so 1e-5 is ~30x looser than observed.
_TOL = 1e-5


@pytest.fixture(scope="module")
def config():
    return EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1,
                      d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                      ffn_mult=2, loss_lambda=0.0)


@pytest.fixture(scope="module")
def model(config):
    model = EaszReconstructor(config)
    model.eval()
    return model


@pytest.fixture(scope="module")
def mask(config):
    return proposed_mask(config.grid_size, config.erase_per_row,
                         config.intra_row_min_distance, seed=3)


@pytest.fixture(scope="module")
def mixed_images():
    rng = np.random.default_rng(42)
    return [
        rng.random((64, 96, 3)),   # RGB
        rng.random((48, 48)),      # gray, square
        rng.random((50, 70, 3)),   # RGB, ragged (needs padding)
        rng.random((64, 96, 3)),   # duplicate shape of the first
        rng.random((33, 81)),      # gray, ragged
    ]


class TestCompressBatch:
    def test_payloads_byte_identical_to_sequential(self, config, mixed_images):
        batch_codec = EaszCodec(config=config, seed=11)
        seq_codec = EaszCodec(config=config, seed=11)
        batched = batch_codec.compress_batch(mixed_images)
        sequential = [seq_codec.compress(image) for image in mixed_images]
        for got, want in zip(batched, sequential):
            assert got.payload == want.payload
            got_package = got.metadata["easz_package"]
            want_package = want.metadata["easz_package"]
            assert got_package.mask_bytes == want_package.mask_bytes
            assert got_package.config_summary == want_package.config_summary

    def test_shared_mask_encode_batch_byte_identical(self, config, mask, mixed_images):
        encoder_a = EaszEncoder(config, seed=0)
        encoder_b = EaszEncoder(config, seed=0)
        batched = encoder_a.encode_batch(mixed_images, mask=mask)
        sequential = [encoder_b.encode(image, mask=mask) for image in mixed_images]
        for got, want in zip(batched, sequential):
            assert got.codec_payload.payload == want.codec_payload.payload
            assert got.mask_bytes == want.mask_bytes
            assert got.original_shape == want.original_shape
            assert got.squeezed_shape == want.squeezed_shape


class TestDecodeBatch:
    def test_unsqueeze_only_pixel_exact(self, config, model, mask, mixed_images):
        encoder = EaszEncoder(config, seed=0)
        packages = encoder.encode_batch(mixed_images, mask=mask)
        decoder = EaszDecoder(model=model, config=config)
        batched = decoder.decode_batch(packages, reconstruct=False)
        sequential = [decoder.decode(package, reconstruct=False) for package in packages]
        for got, want in zip(batched, sequential):
            assert np.array_equal(got, want)

    def test_reconstructed_decode_matches_sequential(self, config, model, mixed_images):
        # per-image masks (no shared mask): groups of one must also work
        codec = EaszCodec(config=config, model=model, seed=5)
        compressed = codec.compress_batch(mixed_images)
        batched = codec.decompress_batch(compressed)
        sequential = [codec.decompress(item) for item in compressed]
        for got, want in zip(batched, sequential):
            assert got.shape == want.shape
            assert np.abs(got - want).max() < _TOL

    def test_decode_batch_keeps_submission_order(self, config, model, mask, mixed_images):
        encoder = EaszEncoder(config, seed=0)
        packages = encoder.encode_batch(mixed_images, mask=mask)
        decoder = EaszDecoder(model=model, config=config)
        results = decoder.decode_batch(packages)
        for package, result in zip(packages, results):
            assert result.shape == package.original_shape


class TestReconstructBatch:
    def test_matches_per_image_calls_mixed_shapes(self, model, mask, mixed_images):
        batched = reconstruct_batch(model, mixed_images, mask)
        for image, got in zip(mixed_images, batched):
            want = reconstruct_image(model, image, mask)
            assert got.shape == want.shape
            assert np.abs(got - want).max() < _TOL

    def test_kept_pixels_bit_identical(self, config, model, mask, mixed_images):
        from repro.core import get_pixel_plan
        image = mixed_images[0]
        got = reconstruct_batch(model, [image], mask)[0]
        want = reconstruct_image(model, image, mask)
        flat_mask = np.asarray(mask, dtype=bool).reshape(-1)
        plan = get_pixel_plan(flat_mask, image.shape[:2],
                              config.patch_size, config.subpatch_size)
        kept_got = got[plan.kept_y, plan.kept_x]
        kept_want = want[plan.kept_y, plan.kept_x]
        assert np.array_equal(kept_got, kept_want)

    def test_keep_original_false(self, model, mask, mixed_images):
        image = mixed_images[1]
        got = reconstruct_batch(model, [image], mask, keep_original=False)[0]
        want = reconstruct_image(model, image, mask, keep_original=False)
        assert np.abs(got - want).max() < _TOL

    def test_all_kept_mask_is_exact(self, config, model, mixed_images):
        ones = np.ones((config.grid_size, config.grid_size), dtype=np.uint8)
        image = mixed_images[0]
        got = reconstruct_batch(model, [image], ones)[0]
        want = reconstruct_image(model, image, ones)
        assert np.array_equal(got, want)

    def test_rgb_token_model(self, mask):
        config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1, channels=3,
                            d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                            ffn_mult=2, loss_lambda=0.0)
        model = EaszReconstructor(config)
        model.eval()
        rng = np.random.default_rng(8)
        images = [rng.random((48, 64, 3)), rng.random((32, 32, 3))]
        batched = reconstruct_batch(model, images, mask)
        for image, got in zip(images, batched):
            want = reconstruct_image(model, image, mask)
            assert np.abs(got - want).max() < _TOL

    def test_rejects_gray_for_rgb_model(self, mask):
        config = EaszConfig(patch_size=16, subpatch_size=4, erase_per_row=1, channels=3,
                            d_model=32, num_heads=4, encoder_blocks=2, decoder_blocks=2,
                            ffn_mult=2, loss_lambda=0.0)
        model = EaszReconstructor(config)
        with pytest.raises(ValueError, match="RGB"):
            reconstruct_batch(model, [np.zeros((32, 32))], mask)

    def test_empty_batch(self, model, mask):
        assert reconstruct_batch(model, [], mask) == []

    def test_engine_invalidates_on_weight_change(self, config, mask):
        model = EaszReconstructor(config)
        model.eval()
        rng = np.random.default_rng(9)
        image = rng.random((32, 48, 3))
        first_engine = model.batch_engine()
        before = reconstruct_batch(model, [image], mask)[0]
        for parameter in model.parameters():
            parameter.data *= 0.5
        after = reconstruct_batch(model, [image], mask)[0]
        assert model.batch_engine() is not first_engine
        want = reconstruct_image(model, image, mask)
        assert np.abs(after - want).max() < _TOL
        assert not np.array_equal(before, after)


class TestVectorizedJpegDecode:
    """The two-pass entropy decode must be exact against a reference loop."""

    def _reference_decode(self, codec, compressed):
        """Symbol-at-a-time reference using the public LUT tables."""
        from repro.codecs import jpeg as jpeg_module
        from repro.entropy.bitio import BitReader

        payload = compressed.payload
        reader = BitReader(payload[11:])
        channels = []
        for meta in compressed.metadata["channels"]:
            is_luma = meta["is_luma"]
            dc_symbols, dc_lengths = (jpeg_module._DC_LUMA_DECODE if is_luma
                                      else jpeg_module._DC_CHROMA_DECODE)
            ac = (jpeg_module._AC_LUMA_DECODE if is_luma
                  else jpeg_module._AC_CHROMA_DECODE)
            ac_symbols, ac_lengths = ac[0], ac[1]
            num_blocks = meta["num_blocks"]
            blocks = np.zeros((num_blocks, 64), dtype=np.int32)
            previous_dc = 0
            for block_index in range(num_blocks):
                window = reader.peek_bits(16)
                length = dc_lengths[window]
                size = dc_symbols[window]
                reader.skip_bits(length)
                if size:
                    amp = reader.read_bits(size)
                    previous_dc += amp if amp >> (size - 1) else amp - (1 << size) + 1
                blocks[block_index, 0] = previous_dc
                index = 1
                while index < 64:
                    window = reader.peek_bits(16)
                    symbol = ac_symbols[window]
                    reader.skip_bits(ac_lengths[window])
                    if symbol == 0x00:
                        break
                    if symbol == 0xF0:
                        index += 16
                        continue
                    index += symbol >> 4
                    size = symbol & 0x0F
                    amp = reader.read_bits(size)
                    blocks[block_index, index] = (
                        amp if amp >> (size - 1) else amp - (1 << size) + 1)
                    index += 1
            out = np.zeros((num_blocks, 64), dtype=np.int32)
            out[:, jpeg_module.ZIGZAG_ORDER] = blocks
            channels.append(out.reshape(num_blocks, 8, 8))
        return channels

    @pytest.mark.parametrize("shape,quality", [((48, 64, 3), 75), ((40, 56), 30),
                                               ((33, 41, 3), 92)])
    def test_decode_channel_matches_reference(self, shape, quality):
        from repro.codecs.jpeg import (_AC_CHROMA_DECODE, _AC_LUMA_DECODE,
                                       _DC_CHROMA_DECODE, _DC_LUMA_DECODE)
        from repro.entropy.bitio import BitReader

        rng = np.random.default_rng(hash(shape) % (2 ** 31))
        image = rng.random(shape)
        for axis in (0, 1):
            image = 0.25 * np.roll(image, 1, axis) + 0.5 * image \
                + 0.25 * np.roll(image, -1, axis)
        image = np.clip(image, 0.0, 1.0)
        codec = JpegCodec(quality=quality)
        compressed = codec.compress(image)
        reference = self._reference_decode(codec, compressed)

        reader = BitReader(compressed.payload[11:])
        for meta, want in zip(compressed.metadata["channels"], reference):
            is_luma = meta["is_luma"]
            got = codec._decode_channel(
                reader, meta["num_blocks"],
                _DC_LUMA_DECODE if is_luma else _DC_CHROMA_DECODE,
                _AC_LUMA_DECODE if is_luma else _AC_CHROMA_DECODE)
            assert np.array_equal(got, want)

    def test_corrupt_stream_detected(self):
        rng = np.random.default_rng(0)
        codec = JpegCodec(quality=75)
        compressed = codec.compress(rng.random((24, 24)))
        corrupted = compressed.payload[:12] + bytes([0xFF] * 4)
        import dataclasses
        broken = dataclasses.replace(compressed, payload=corrupted)
        with pytest.raises(ValueError):
            codec.decompress(broken)
